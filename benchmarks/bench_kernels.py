"""Kernel micro-benchmarks: SpMV, orthogonalization, detection overhead, solvers.

These are conventional pytest-benchmark timings (many rounds) rather than
one-shot experiment regenerations.  They quantify two performance claims the
paper makes qualitatively:

* the bound check is "very little extra computation" — compare GMRES with and
  without the detector;
* the orthogonalization work grows linearly with the iteration index, so extra
  robustness early in the inner solve is cheap (Section VII-E-1).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.cg import cg
from repro.core.arnoldi import ArnoldiContext, arnoldi_process
from repro.core.detectors import HessenbergBoundDetector
from repro.core.ftgmres import ft_gmres
from repro.core.gmres import gmres
from repro.faults.injector import FaultInjector
from repro.faults.models import PAPER_FAULT_CLASSES
from repro.faults.schedule import InjectionSchedule
from repro.sparse.norms import frobenius_norm, two_norm_estimate


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2014)


def test_kernel_spmv(benchmark, poisson_bench_problem, rng):
    A = poisson_bench_problem.A
    x = rng.standard_normal(A.shape[1])
    y = benchmark(A.matvec, x)
    assert y.shape == (A.shape[0],)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["nnz"] = A.nnz


def test_kernel_spmv_vs_scipy(benchmark, poisson_bench_problem, rng):
    """Our CSR SpMV should stay within a small factor of SciPy's C implementation."""
    A = poisson_bench_problem.A
    sp = A.to_scipy()
    x = rng.standard_normal(A.shape[1])
    benchmark(lambda: sp @ x)
    ours = A.matvec(x)
    np.testing.assert_allclose(ours, sp @ x, rtol=1e-12)


def test_kernel_frobenius_norm(benchmark, circuit_bench_problem):
    value = benchmark(frobenius_norm, circuit_bench_problem.A)
    assert value > 0.0


def test_kernel_two_norm_estimate(benchmark, poisson_bench_problem):
    value = benchmark.pedantic(lambda: two_norm_estimate(poisson_bench_problem.A),
                               rounds=3, iterations=1)
    assert 0.0 < value <= 8.0 + 1e-6


def test_kernel_arnoldi_25_steps(benchmark, poisson_bench_problem, rng):
    A = poisson_bench_problem.A
    v0 = rng.standard_normal(A.shape[0])
    Q, H, _ = benchmark.pedantic(lambda: arnoldi_process(A, v0, 25), rounds=3, iterations=1)
    assert H.shape[1] == 25


def test_kernel_arnoldi_detection_overhead(benchmark, poisson_bench_problem, rng):
    """The paper's detector costs one comparison per Hessenberg entry."""
    A = poisson_bench_problem.A
    v0 = rng.standard_normal(A.shape[0])
    detector = HessenbergBoundDetector(frobenius_norm(A))

    def with_detector():
        ctx = ArnoldiContext(detector=detector, detector_response="zero")
        return arnoldi_process(A, v0, 25, ctx=ctx)

    benchmark.pedantic(with_detector, rounds=3, iterations=1)
    benchmark.extra_info["note"] = ("compare against test_kernel_arnoldi_25_steps for the "
                                    "detection overhead")


def test_kernel_gmres_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(lambda: gmres(p.A, p.b, tol=1e-8, maxiter=300),
                                rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_kernel_gmres_nohook_fast_path(benchmark, poisson_bench_problem):
    """The zero-overhead Arnoldi branch vs the hooked branch.

    The hooked reference runs the identical arithmetic through the
    injection/detection plumbing with a real (never-firing) injector — the
    per-coefficient cost every faulted campaign trial pays in all but one
    iteration.  The recorded ``speedup_vs_hooked`` is the failure-free
    dividend of the fast path.
    """
    p = poisson_bench_problem
    schedule = InjectionSchedule(site="hessenberg", aggregate_inner_iteration=-1,
                                 mgs_position="first")

    def hooked():
        return gmres(p.A, p.b, tol=1e-8, maxiter=300,
                     injector=FaultInjector(PAPER_FAULT_CLASSES["large"], schedule))

    hooked_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        hooked_result = hooked()
        hooked_seconds = min(hooked_seconds, time.perf_counter() - start)

    fast_result = benchmark.pedantic(lambda: gmres(p.A, p.b, tol=1e-8, maxiter=300),
                                     rounds=3, iterations=1)

    # The fast path must not change the solve at all.
    assert fast_result.iterations == hooked_result.iterations
    assert np.array_equal(fast_result.x, hooked_result.x)

    fast_seconds = benchmark.stats.stats.min
    speedup = hooked_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    benchmark.extra_info["iterations"] = fast_result.iterations
    benchmark.extra_info["hooked_seconds"] = round(hooked_seconds, 4)
    benchmark.extra_info["fast_seconds"] = round(fast_seconds, 4)
    benchmark.extra_info["speedup_vs_hooked"] = round(speedup, 3)
    print(f"\nno-hook fast path: {fast_seconds:.4f}s vs hooked {hooked_seconds:.4f}s "
          f"-> {speedup:.2f}x")


def test_kernel_cg_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(lambda: cg(p.A, p.b, tol=1e-8, maxiter=2000),
                                rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_kernel_ftgmres_nested_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(
        lambda: ft_gmres(p.A, p.b, inner_iterations=25, max_outer=100),
        rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["outer_iterations"] = result.outer_iterations
    benchmark.extra_info["total_inner_iterations"] = result.total_inner_iterations
