"""Kernel micro-benchmarks: SpMV, orthogonalization, detection overhead, solvers.

These are conventional pytest-benchmark timings (many rounds) rather than
one-shot experiment regenerations.  They quantify two performance claims the
paper makes qualitatively:

* the bound check is "very little extra computation" — compare GMRES with and
  without the detector;
* the orthogonalization work grows linearly with the iteration index, so extra
  robustness early in the inner solve is cheap (Section VII-E-1).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.cg import cg
from repro.core.arnoldi import ArnoldiContext, arnoldi_process
from repro.core.detectors import HessenbergBoundDetector
from repro.core.ftgmres import ft_gmres
from repro.core.gmres import gmres
from repro.faults.injector import FaultInjector
from repro.faults.models import PAPER_FAULT_CLASSES
from repro.faults.schedule import InjectionSchedule
from repro.sparse.kernels import available_kernels
from repro.sparse.norms import frobenius_norm, two_norm_estimate


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2014)


def test_kernel_spmv(benchmark, poisson_bench_problem, rng):
    A = poisson_bench_problem.A
    x = rng.standard_normal(A.shape[1])
    y = benchmark(A.matvec, x)
    assert y.shape == (A.shape[0],)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["nnz"] = A.nnz


def test_kernel_spmv_vs_scipy(benchmark, poisson_bench_problem, rng):
    """Our CSR SpMV should stay within a small factor of SciPy's C implementation."""
    A = poisson_bench_problem.A
    sp = A.to_scipy()
    x = rng.standard_normal(A.shape[1])
    benchmark(lambda: sp @ x)
    ours = A.matvec(x)
    np.testing.assert_allclose(ours, sp @ x, rtol=1e-12)


def test_kernel_frobenius_norm(benchmark, circuit_bench_problem):
    value = benchmark(frobenius_norm, circuit_bench_problem.A)
    assert value > 0.0


def test_kernel_two_norm_estimate(benchmark, poisson_bench_problem):
    value = benchmark.pedantic(lambda: two_norm_estimate(poisson_bench_problem.A),
                               rounds=3, iterations=1)
    assert 0.0 < value <= 8.0 + 1e-6


def test_kernel_arnoldi_25_steps(benchmark, poisson_bench_problem, rng):
    A = poisson_bench_problem.A
    v0 = rng.standard_normal(A.shape[0])
    Q, H, _ = benchmark.pedantic(lambda: arnoldi_process(A, v0, 25), rounds=3, iterations=1)
    assert H.shape[1] == 25


def test_kernel_arnoldi_detection_overhead(benchmark, poisson_bench_problem, rng):
    """The paper's detector costs one comparison per Hessenberg entry."""
    A = poisson_bench_problem.A
    v0 = rng.standard_normal(A.shape[0])
    detector = HessenbergBoundDetector(frobenius_norm(A))

    def with_detector():
        ctx = ArnoldiContext(detector=detector, detector_response="zero")
        return arnoldi_process(A, v0, 25, ctx=ctx)

    benchmark.pedantic(with_detector, rounds=3, iterations=1)
    benchmark.extra_info["note"] = ("compare against test_kernel_arnoldi_25_steps for the "
                                    "detection overhead")


def test_kernel_gmres_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(lambda: gmres(p.A, p.b, tol=1e-8, maxiter=300),
                                rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_kernel_gmres_nohook_fast_path(benchmark, poisson_bench_problem):
    """The zero-overhead Arnoldi branch vs the hooked branch.

    The hooked reference runs the identical arithmetic through the
    injection/detection plumbing with a real (never-firing) injector — the
    per-coefficient cost every faulted campaign trial pays in all but one
    iteration.  The recorded ``speedup_vs_hooked`` is the failure-free
    dividend of the fast path.
    """
    p = poisson_bench_problem
    schedule = InjectionSchedule(site="hessenberg", aggregate_inner_iteration=-1,
                                 mgs_position="first")

    def hooked():
        return gmres(p.A, p.b, tol=1e-8, maxiter=300,
                     injector=FaultInjector(PAPER_FAULT_CLASSES["large"], schedule))

    hooked_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        hooked_result = hooked()
        hooked_seconds = min(hooked_seconds, time.perf_counter() - start)

    fast_result = benchmark.pedantic(lambda: gmres(p.A, p.b, tol=1e-8, maxiter=300),
                                     rounds=3, iterations=1)

    # The fast path must not change the solve at all.
    assert fast_result.iterations == hooked_result.iterations
    assert np.array_equal(fast_result.x, hooked_result.x)

    fast_seconds = benchmark.stats.stats.min
    speedup = hooked_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    benchmark.extra_info["iterations"] = fast_result.iterations
    benchmark.extra_info["hooked_seconds"] = round(hooked_seconds, 4)
    benchmark.extra_info["fast_seconds"] = round(fast_seconds, 4)
    benchmark.extra_info["speedup_vs_hooked"] = round(speedup, 3)
    print(f"\nno-hook fast path: {fast_seconds:.4f}s vs hooked {hooked_seconds:.4f}s "
          f"-> {speedup:.2f}x")


def test_kernel_cg_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(lambda: cg(p.A, p.b, tol=1e-8, maxiter=2000),
                                rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_kernel_ftgmres_nested_solve(benchmark, poisson_bench_problem):
    p = poisson_bench_problem
    result = benchmark.pedantic(
        lambda: ft_gmres(p.A, p.b, inner_iterations=25, max_outer=100),
        rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["outer_iterations"] = result.outer_iterations
    benchmark.extra_info["total_inner_iterations"] = result.total_inner_iterations


# --------------------------------------------------------------------------
# kernel-tier comparisons (PR 6): the compiled scipy tier vs the numpy
# reference, per kernel and end to end.  Each benchmark times the compiled
# tier through pytest-benchmark, times the in-process numpy reference with
# the same best-of-N discipline, and asserts the speedup floor directly —
# BENCH_PR6_kernels.json therefore certifies the floors it records.
# --------------------------------------------------------------------------

#: Microbenchmark floors (ISSUE: scipy >= 1.5x on medium matvec+trisolve).
TIER_MICRO_FLOOR = 1.5
#: End-to-end campaign floor: the solve also contains orthogonalization and
#: least-squares work the kernel tier cannot touch, so the honest floor is
#: "measurably faster", not the microbenchmark multiple (measured ~1.15-1.2x
#: at medium scale).
TIER_CAMPAIGN_FLOOR = 1.05

needs_scipy_tier = pytest.mark.skipif("scipy" not in available_kernels(),
                                      reason="scipy kernel tier unavailable")


def _best_of(func, rounds=10):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _record_speedup(benchmark, ref_seconds, floor, *, assert_floor=True):
    tier_seconds = benchmark.stats.stats.min
    speedup = ref_seconds / tier_seconds if tier_seconds > 0 else float("inf")
    benchmark.extra_info["numpy_seconds"] = round(ref_seconds, 6)
    benchmark.extra_info["scipy_seconds"] = round(tier_seconds, 6)
    benchmark.extra_info["speedup_vs_numpy"] = round(speedup, 3)
    benchmark.extra_info["floor"] = floor
    if assert_floor:
        assert speedup >= floor, \
            f"scipy tier speedup {speedup:.2f}x below the {floor}x floor"
    return speedup


@needs_scipy_tier
def test_kernel_tier_matvec(benchmark, poisson_bench_problem, rng, scale):
    from repro.sparse.kernels import get_engine

    A = poisson_bench_problem.A
    x = rng.standard_normal(A.shape[1])
    numpy_eng, scipy_eng = get_engine("numpy"), get_engine("scipy")
    ref = numpy_eng.matvec(A, x)
    got = scipy_eng.matvec(A, x)  # warm the cached view before timing
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-14)

    ref_seconds = _best_of(lambda: numpy_eng.matvec(A, x), rounds=20)
    benchmark.pedantic(lambda: scipy_eng.matvec(A, x), rounds=20, iterations=5)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["nnz"] = A.nnz
    # The compiled win shrinks with the matrix (call overhead dominates tiny
    # problems); the stated floor applies from the default scale up.
    speedup = _record_speedup(benchmark, ref_seconds, TIER_MICRO_FLOOR,
                              assert_floor=(scale != "tiny"))
    print(f"\nscipy matvec: {speedup:.2f}x vs numpy (n={A.shape[0]})")


@needs_scipy_tier
def test_kernel_tier_matmat(benchmark, poisson_bench_problem, rng, scale):
    from repro.sparse.kernels import get_engine

    A = poisson_bench_problem.A
    X = np.asfortranarray(rng.standard_normal((A.shape[1], 8)))
    numpy_eng, scipy_eng = get_engine("numpy"), get_engine("scipy")
    np.testing.assert_allclose(scipy_eng.matmat(A, X), numpy_eng.matmat(A, X),
                               rtol=1e-12, atol=1e-14)

    ref_seconds = _best_of(lambda: numpy_eng.matmat(A, X), rounds=10)
    benchmark.pedantic(lambda: scipy_eng.matmat(A, X), rounds=10, iterations=5)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["block_width"] = 8
    speedup = _record_speedup(benchmark, ref_seconds, TIER_MICRO_FLOOR,
                              assert_floor=(scale != "tiny"))
    print(f"\nscipy matmat (B=8): {speedup:.2f}x vs numpy")


@needs_scipy_tier
def test_kernel_tier_trisolve(benchmark, poisson_bench_problem, rng, scale):
    """Level-scheduled reference vs SuperLU's prepared ``gstrs`` solve on a
    real ILU(0) lower factor."""
    from repro.precond.ilu import ILU0Preconditioner
    from repro.sparse.kernels import get_engine

    A = poisson_bench_problem.A
    L, _ = ILU0Preconditioner(A).factors
    b = rng.standard_normal(A.shape[0])
    numpy_eng, scipy_eng = get_engine("numpy"), get_engine("scipy")
    np.testing.assert_allclose(scipy_eng.trisolve(L, b),
                               numpy_eng.trisolve(L, b), rtol=1e-12)

    ref_seconds = _best_of(lambda: numpy_eng.trisolve(L, b), rounds=10)
    benchmark.pedantic(lambda: scipy_eng.trisolve(L, b), rounds=10, iterations=5)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["levels"] = L.num_levels
    speedup = _record_speedup(benchmark, ref_seconds, TIER_MICRO_FLOOR,
                              assert_floor=(scale != "tiny"))
    print(f"\nscipy trisolve: {speedup:.2f}x vs numpy "
          f"({L.num_levels} levels, n={A.shape[0]})")


@needs_scipy_tier
def test_kernel_tier_campaign_end_to_end(benchmark, poisson_bench_problem,
                                         stride, scale):
    """A whole injection campaign per tier, identical spec, default backend.

    The campaign also spends time in orthogonalization and least-squares
    updates that no kernel tier accelerates, so the asserted floor is the
    measured end-to-end dividend, not the microbenchmark multiple.  The
    trial-identity contract across tiers is asserted by
    ``tests/test_kernel_engines.py``; here both runs must agree on statuses.
    """
    from repro import api
    from repro.specs import CampaignSpec, ExecutionSpec

    p = poisson_bench_problem
    def spec(tier):
        return CampaignSpec(inner_iterations=25, max_outer=60,
                            stride=max(stride * 10, 60),
                            exec=ExecutionSpec(kernels=tier))

    numpy_result = api.run_campaign(p, spec("numpy"))
    ref_seconds = _best_of(lambda: api.run_campaign(p, spec("numpy")), rounds=2)
    scipy_result = benchmark.pedantic(
        lambda: api.run_campaign(p, spec("scipy")), rounds=3, iterations=1)

    statuses = [t.status for t in numpy_result.trials]
    assert [t.status for t in scipy_result.trials] == statuses
    benchmark.extra_info["trials"] = len(statuses)
    speedup = _record_speedup(benchmark, ref_seconds, TIER_CAMPAIGN_FLOOR,
                              assert_floor=(scale not in ("tiny",)))
    print(f"\nscipy-tier campaign: {speedup:.2f}x vs numpy "
          f"({len(statuses)} trials)")
