"""Benchmark ``fig3a``/``fig3b``: single-SDC sweeps on the Poisson problem (Figure 3).

Each benchmark reruns the nested FT-GMRES solve once per (fault class,
injection location) pair, injecting a single multiplicative SDC into the
chosen Modified Gram–Schmidt coefficient, and reports the number of outer
iterations to convergence.  This is the paper's Figure 3:

* panel (a): fault on the *first* MGS iteration,
* panel (b): fault on the *last* MGS iteration,

with the three fault classes h*1e+150, h*10^-0.5, h*1e-300.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure34 import run_fault_sweep


def _run_panel(problem, mgs_position, stride, max_outer=100, workers=1):
    return run_fault_sweep(
        problem,
        mgs_position=mgs_position,
        detector=None,
        inner_iterations=25,
        max_outer=max_outer,
        outer_tol=1e-8,
        stride=stride,
        workers=workers,
    )


def _report(campaign, label):
    print()
    print(f"{label}: failure-free outer iterations = {campaign.failure_free_outer}, "
          f"{len(campaign.trials)} faulted runs")
    for cls in campaign.fault_classes():
        print(f"  fault class {cls:18s}: worst outer = {campaign.max_outer(cls):3d} "
              f"(+{campaign.max_increase(cls)}, {campaign.percent_increase(cls):.1f}%), "
              f"no-penalty fraction = "
              f"{(campaign.series(cls)[1] <= campaign.failure_free_outer).mean():.2f}")


def _record(benchmark, campaign):
    benchmark.extra_info["failure_free_outer"] = campaign.failure_free_outer
    benchmark.extra_info["trials"] = len(campaign.trials)
    for cls in campaign.fault_classes():
        benchmark.extra_info[f"{cls}.max_outer"] = campaign.max_outer(cls)
        benchmark.extra_info[f"{cls}.max_increase"] = campaign.max_increase(cls)
        benchmark.extra_info[f"{cls}.percent_increase"] = round(
            campaign.percent_increase(cls), 2)


@pytest.mark.parametrize("mgs_position", ["first", "last"], ids=["fig3a", "fig3b"])
def test_figure3_poisson_sdc_sweep(benchmark, poisson_bench_problem, stride, scale,
                                   workers, mgs_position):
    campaign = benchmark.pedantic(
        lambda: _run_panel(poisson_bench_problem, mgs_position, stride, workers=workers),
        rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers
    _report(campaign, f"Figure 3{'a' if mgs_position == 'first' else 'b'} "
                      f"(Poisson, SDC on the {mgs_position} MGS iteration, scale={scale})")
    _record(benchmark, campaign)

    # Shape checks corresponding to the paper's findings.
    assert campaign.non_converged() == [], "every faulted solve must still converge"
    small_classes = [c for c in campaign.fault_classes() if c != "large"]
    for cls in small_classes:
        # Undetectable (small) faults are run through with a bounded penalty
        # (the paper reports at most 1-2 extra outer iterations for Poisson).
        assert campaign.max_increase(cls) <= max(4, campaign.failure_free_outer // 2)
    if mgs_position == "first":
        # Away from the very first inner solve, small faults mostly cost nothing.
        for cls in small_classes:
            locations, outers = campaign.series(cls)
            if outers.size:
                late = outers[locations >= 25]
                if late.size:
                    no_penalty = (late <= campaign.failure_free_outer).mean()
                    assert no_penalty >= 0.5
