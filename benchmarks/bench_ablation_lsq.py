"""Ablation ``ablation-lsq``: the three projected least-squares policies (§VI-D).

The paper recommends either the standard triangular solve (policy 1) or the
always-rank-revealing solve (policy 3) and warns that the hybrid policy 2
"conceals the natural error detection" of IEEE-754.  This ablation injects a
near-zeroing SDC into the subdiagonal entry (driving the triangular factor
toward singularity) and compares the three policies on both test problems.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule


POLICIES = ("standard", "hybrid", "rank_revealing")


def _subdiag_injector(location=3):
    return FaultInjector(
        ScalingFault(1e-300),
        InjectionSchedule(site="subdiag", aggregate_inner_iteration=location,
                          mgs_position=None),
    )


@pytest.mark.parametrize("problem_name", ["poisson", "circuit"])
def test_ablation_lsq_policies_under_subdiag_sdc(benchmark, poisson_bench_problem,
                                                 circuit_bench_problem, problem_name, scale):
    problem = poisson_bench_problem if problem_name == "poisson" else circuit_bench_problem

    def run():
        results = {}
        for policy in POLICIES:
            result = gmres(problem.A, problem.b, tol=0.0, maxiter=25, restart=25,
                           lsq_policy=policy, injector=_subdiag_injector())
            results[policy] = {
                "residual_norm": result.residual_norm,
                "solution_norm": float(np.linalg.norm(result.x)),
                "finite": bool(np.all(np.isfinite(result.x))),
                "fallback_events": result.events.count("lsq_fallback"),
                "nonfinite_events": result.events.count("lsq_nonfinite"),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"Least-squares policy ablation under a x1e-300 subdiagonal SDC "
          f"({problem_name}, scale={scale}):")
    norm_b = float(np.linalg.norm(problem.b))
    for policy, info in results.items():
        print(f"  {policy:15s}: relative residual={info['residual_norm'] / norm_b:.3e}, "
              f"||x||={info['solution_norm']:.3e}, finite={info['finite']}, "
              f"hybrid fallbacks={info['fallback_events']}")
        for key, value in info.items():
            benchmark.extra_info[f"{policy}.{key}"] = value

    # The rank-revealing policy always returns a bounded, finite update.
    assert results["rank_revealing"]["finite"]
    # Its iterate is never (much) worse than the standard policy's.
    assert (results["rank_revealing"]["residual_norm"]
            <= 10.0 * results["standard"]["residual_norm"]
            or not results["standard"]["finite"])


def test_ablation_lsq_policies_failure_free_cost(benchmark, poisson_bench_problem):
    """Without faults the three policies produce the same iterate; this measures
    the (small) extra cost of the rank-revealing SVD per restart cycle."""

    def run():
        iterates = {}
        for policy in POLICIES:
            result = gmres(poisson_bench_problem.A, poisson_bench_problem.b, tol=1e-8,
                           maxiter=200, restart=50, lsq_policy=policy)
            iterates[policy] = result
        return iterates

    iterates = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = iterates["standard"].x
    for policy, result in iterates.items():
        assert result.converged
        np.testing.assert_allclose(result.x, reference, rtol=1e-5, atol=1e-7)
        benchmark.extra_info[f"{policy}.iterations"] = result.iterations
