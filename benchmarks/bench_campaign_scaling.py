"""Benchmark ``scaling``: parallel campaign execution vs the serial baseline.

Runs the Figure-3(a) sweep (Poisson, SDC on the first MGS coefficient) once
serially and once per configured worker count through the process backend of
:class:`repro.exec.CampaignExecutor`, asserting that the parallel result is
trial-for-trial identical to the serial one and recording the wall-time
speedup in ``benchmark.extra_info`` so the BENCH_*.json trajectory captures
the scaling behaviour of the machine that ran it.

Note: speedups are bounded by the CPUs actually available (``cpu_count`` is
recorded alongside); on a single-core runner the parallel configurations
measure dispatch overhead, not speedup.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.figure34 import run_fault_sweep


def _sweep(problem, stride, *, backend="serial", workers=1):
    return run_fault_sweep(
        problem,
        mgs_position="first",
        detector=None,
        inner_iterations=25,
        max_outer=100,
        outer_tol=1e-8,
        stride=stride,
        backend=backend,
        workers=workers,
    )


@pytest.fixture(scope="module")
def serial_reference(poisson_bench_problem, stride):
    """The serial sweep, run once: (campaign result, wall seconds)."""
    start = time.perf_counter()
    campaign = _sweep(poisson_bench_problem, stride)
    elapsed = time.perf_counter() - start
    return campaign, elapsed


def test_campaign_scaling_serial(benchmark, serial_reference, poisson_bench_problem,
                                 scale, stride):
    """Record the serial baseline as its own benchmark entry."""
    reference, elapsed = serial_reference
    campaign = benchmark.pedantic(lambda: _sweep(poisson_bench_problem, stride),
                                  rounds=1, iterations=1)
    assert campaign.trials == reference.trials  # serial runs are deterministic
    benchmark.extra_info["serial_seconds"] = round(elapsed, 4)
    benchmark.extra_info["trials"] = len(campaign.trials)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["stride"] = stride
    print(f"\nserial sweep: {len(campaign.trials)} trials in {elapsed:.2f}s")


@pytest.mark.parametrize("workers", [2, 4])
def test_campaign_scaling_process_workers(benchmark, poisson_bench_problem, stride,
                                          scale, serial_reference, workers):
    serial_campaign, serial_seconds = serial_reference

    parallel_campaign = benchmark.pedantic(
        lambda: _sweep(poisson_bench_problem, stride, backend="process",
                       workers=workers),
        rounds=1, iterations=1)

    # The engine's core guarantee: byte-for-byte the same experiment output.
    assert parallel_campaign.trials == serial_campaign.trials
    assert parallel_campaign.failure_free_outer == serial_campaign.failure_free_outer

    parallel_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    cpus = os.cpu_count() or 1
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_count"] = cpus
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 4)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["trials"] = len(parallel_campaign.trials)
    print(f"\n{workers} process workers ({cpus} CPUs): {parallel_seconds:.2f}s "
          f"vs serial {serial_seconds:.2f}s -> speedup {speedup:.2f}x")

    # Wall-time scaling is only a hard requirement when explicitly requested
    # (REPRO_ENFORCE_SCALING=1) on a machine with enough dedicated cores:
    # shared CI runners and sub-second tiny-scale sweeps measure dispatch
    # overhead and noisy-neighbor load, not the engine.  The speedup is
    # always recorded above either way.
    if os.environ.get("REPRO_ENFORCE_SCALING") == "1" and cpus >= workers >= 4:
        assert speedup >= 2.5, (
            f"expected >= 2.5x with {workers} workers on {cpus} CPUs, got {speedup:.2f}x")
