"""Shared configuration for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation (see the
experiment index in DESIGN.md).  Because the paper's exhaustive sweeps take
minutes at full scale, the harness exposes two knobs through environment
variables:

* ``REPRO_BENCH_SCALE``  — ``tiny`` | ``small`` (default) | ``medium`` | ``paper``.
  Controls the matrix sizes (``paper`` uses the 10,000-row Poisson matrix and
  the 25,187-row circuit surrogate, exactly as in Table I).
* ``REPRO_BENCH_STRIDE`` — subsampling of the injection locations for the
  Figure 3/4 sweeps (default 5 at ``small`` scale, 1 reproduces the paper's
  exhaustive sweep).
* ``REPRO_WORKERS``      — parallel workers for the sweep campaigns
  (default 1 = serial; 0 = one per CPU).  The execution engine guarantees
  parallel output is trial-for-trial identical to serial output, so the
  recorded ``extra_info`` numbers are invariant under this knob.

Each benchmark stores its headline numbers in ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only --benchmark-json=out.json`` leaves a
machine-readable record, and prints a small report (visible with ``-s``).
"""

from __future__ import annotations

import os

import pytest

from repro.exec.executor import resolve_workers
from repro.gallery.problems import circuit_problem, poisson_problem

#: Matrix sizes per scale: (poisson grid side, circuit dimension).
SCALE_SIZES = {
    "tiny": (10, 200),
    "small": (30, 1500),
    "medium": (50, 5000),
    "paper": (100, 25187),
}

#: Default injection-location stride per scale (1 = the paper's exhaustive sweep).
DEFAULT_STRIDE = {"tiny": 2, "small": 5, "medium": 10, "paper": 25}

#: Outer-iteration budget per scale for the circuit problem (it needs more
#: room than the Poisson problem, especially at larger sizes).
CIRCUIT_MAX_OUTER = {"tiny": 80, "small": 80, "medium": 120, "paper": 200}


def bench_scale() -> str:
    """The configured benchmark scale."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in SCALE_SIZES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALE_SIZES)}, got {scale!r}")
    return scale


def bench_stride() -> int:
    """The configured injection-location stride."""
    value = os.environ.get("REPRO_BENCH_STRIDE")
    if value is None:
        return DEFAULT_STRIDE[bench_scale()]
    stride = int(value)
    if stride <= 0:
        raise ValueError("REPRO_BENCH_STRIDE must be positive")
    return stride


def bench_workers() -> int:
    """The configured sweep worker count (the ``REPRO_WORKERS`` knob)."""
    return resolve_workers(None)


@pytest.fixture(scope="session")
def scale() -> str:
    """Benchmark scale name."""
    return bench_scale()


@pytest.fixture(scope="session")
def workers() -> int:
    """Parallel workers for the sweep campaigns (1 = serial)."""
    return bench_workers()


@pytest.fixture(scope="session")
def stride() -> int:
    """Injection-location stride for the sweep benchmarks."""
    return bench_stride()


@pytest.fixture(scope="session")
def poisson_bench_problem(scale):
    """The paper's SPD problem at the configured scale."""
    grid_n, _ = SCALE_SIZES[scale]
    return poisson_problem(grid_n)


@pytest.fixture(scope="session")
def circuit_bench_problem(scale):
    """The paper's nonsymmetric problem (surrogate) at the configured scale."""
    _, n_nodes = SCALE_SIZES[scale]
    return circuit_problem(n_nodes)


@pytest.fixture(scope="session")
def circuit_max_outer(scale) -> int:
    """Outer-iteration budget for circuit-problem sweeps at this scale."""
    return CIRCUIT_MAX_OUTER[scale]
