"""Ablation ``ablation-detector``: detector thresholds and bit-flip coverage.

Two questions the paper raises but does not quantify:

1. How much tighter is the ``||A||_2`` bound than the ``||A||_F`` bound in
   practice, and does the tighter bound catch more corruption?  (Table I
   lists both as "potential fault detectors".)
2. The paper argues bit flips are subsumed by the numerical-error model: what
   fraction of single bit flips in a Hessenberg coefficient is detectable by
   the bound check, and what fraction is harmless?
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors import HessenbergBoundDetector
from repro.faults.bitflip import flip_bit
from repro.faults.campaign import FaultCampaign
from repro.faults.models import ScalingFault
from repro.sparse.norms import frobenius_norm, two_norm_estimate


def test_ablation_detector_threshold(benchmark, poisson_bench_problem, stride, scale):
    """Sweep a range of fault magnitudes and measure the detection rate of the
    Frobenius-norm bound versus the (tighter) 2-norm bound."""
    problem = poisson_bench_problem
    fro = frobenius_norm(problem.A)
    two = two_norm_estimate(problem.A)
    magnitudes = {"x1e+150": 1e150, "x1e+6": 1e6, "x1e+2": 1e2, "x10^-0.5": 10 ** -0.5,
                  "x1e-300": 1e-300}

    def run():
        rates = {}
        for bound_name, bound in (("frobenius", fro), ("two_norm", two)):
            detector = HessenbergBoundDetector(bound)
            for label, factor in magnitudes.items():
                campaign = FaultCampaign(
                    problem, inner_iterations=25, max_outer=100,
                    fault_classes={label: ScalingFault(factor)},
                    mgs_position="first", detector=detector, detector_response="zero")
                result = campaign.run(locations=range(0, 50, max(stride, 5)))
                rates[(bound_name, label)] = (result.detection_rate(label),
                                              result.max_increase(label))
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"Detector-threshold ablation (Poisson, scale={scale}): "
          f"||A||_F={fro:.3f}, ||A||_2~{two:.3f}")
    print(f"  {'fault':12s} {'detect (F)':>12s} {'detect (2)':>12s} "
          f"{'max extra outer (F)':>20s}")
    for label in magnitudes:
        f_rate, f_incr = rates[("frobenius", label)]
        t_rate, _ = rates[("two_norm", label)]
        print(f"  {label:12s} {f_rate:12.2f} {t_rate:12.2f} {f_incr:20d}")
        benchmark.extra_info[f"{label}.frobenius_detection_rate"] = f_rate
        benchmark.extra_info[f"{label}.two_norm_detection_rate"] = t_rate

    # The tighter bound can only detect at least as much as the looser one.
    for label in magnitudes:
        assert rates[("two_norm", label)][0] >= rates[("frobenius", label)][0] - 1e-12
    # The paper's class-1 fault is always caught, classes 2/3 never.
    assert rates[("frobenius", "x1e+150")][0] == 1.0
    assert rates[("frobenius", "x10^-0.5")][0] == 0.0


def test_ablation_bitflip_detectability(benchmark, poisson_bench_problem):
    """Empirically confirm the paper's claim that bit flips reduce to numerical
    errors: classify every one of the 64 possible single-bit flips of a typical
    Hessenberg coefficient as detectable / silent under the Frobenius bound."""
    problem = poisson_bench_problem
    bound = frobenius_norm(problem.A)
    detector = HessenbergBoundDetector(bound)
    # A typical orthogonalization coefficient for the Poisson problem is O(1).
    representative_values = [3.9987, -0.731, 0.0124]

    def run():
        detectable = 0
        silent = 0
        huge_but_silent = 0
        for value in representative_values:
            for bit in range(64):
                corrupted = flip_bit(value, bit)
                if detector.check_scalar(corrupted).flagged:
                    detectable += 1
                else:
                    silent += 1
                    if np.isfinite(corrupted) and abs(corrupted) > 100 * abs(value):
                        huge_but_silent += 1
        return detectable, silent, huge_but_silent

    detectable, silent, huge_but_silent = benchmark.pedantic(run, rounds=1, iterations=1)
    total = detectable + silent
    print()
    print(f"Bit-flip detectability under the ||A||_F bound ({bound:.1f}):")
    print(f"  detectable flips: {detectable}/{total} ({100 * detectable / total:.0f}%)")
    print(f"  silent flips:     {silent}/{total} "
          f"(of which {huge_but_silent} exceed 100x the original value but stay below the bound)")

    benchmark.extra_info["detectable"] = detectable
    benchmark.extra_info["silent"] = silent
    benchmark.extra_info["huge_but_silent"] = huge_but_silent
    # High exponent-bit flips must be caught; low mantissa-bit flips must not.
    assert detectable > 0
    assert silent > 0
