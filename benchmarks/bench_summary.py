"""Benchmark ``summary``: the Section VII-E with/without-detector comparison.

Runs the Figure-3-style sweep on the Poisson problem twice — once without any
detection and once with the Hessenberg-bound detector filtering impossible
values — and reports the worst-case increase in outer iterations for each.
The paper's headline numbers: with the detector the worst case is ~2 extra
outer iterations, without it ~5 (Poisson); faulting early in the first inner
solve is the universally bad region (33 % / 14 % worst-case increase in
time-to-solution for Poisson / circuit).
"""

from __future__ import annotations

from repro.experiments.summary import detector_comparison
from repro.faults.campaign import FaultCampaign
from repro.faults.models import PAPER_FAULT_CLASSES


def _sweep(problem, detector, stride, max_outer, workers=1):
    campaign = FaultCampaign(
        problem,
        inner_iterations=25,
        max_outer=max_outer,
        outer_tol=1e-8,
        fault_classes=PAPER_FAULT_CLASSES,
        mgs_position="first",
        detector=detector,
        detector_response="zero",
    )
    return campaign.run(stride=stride, workers=workers)


def test_summary_detector_effect_poisson(benchmark, poisson_bench_problem, stride, scale,
                                         workers):
    def run():
        without = _sweep(poisson_bench_problem, None, stride, max_outer=100,
                         workers=workers)
        with_det = _sweep(poisson_bench_problem, "bound", stride, max_outer=100,
                          workers=workers)
        return detector_comparison(without, with_det)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    without = comparison["without_detector"]
    with_det = comparison["with_detector"]
    print()
    print(f"Section VII-E summary (Poisson, scale={scale}, "
          f"failure-free outer = {without['failure_free_outer']}):")
    print(f"  worst-case extra outer iterations without detector: "
          f"{comparison['worst_case_without']} "
          f"({without['worst_case_percent']:.1f}% increase)")
    print(f"  worst-case extra outer iterations with detector:    "
          f"{comparison['worst_case_with']} "
          f"({with_det['worst_case_percent']:.1f}% increase)")
    print(f"  large-fault detection rate with detector: "
          f"{with_det['per_class']['large']['detection_rate'] * 100:.0f}%")

    benchmark.extra_info["worst_case_without_detector"] = comparison["worst_case_without"]
    benchmark.extra_info["worst_case_with_detector"] = comparison["worst_case_with"]
    benchmark.extra_info["percent_increase_without"] = round(
        without["worst_case_percent"], 1)
    benchmark.extra_info["percent_increase_with"] = round(with_det["worst_case_percent"], 1)
    benchmark.extra_info["detection_rate_large"] = with_det["per_class"]["large"][
        "detection_rate"]

    # Paper claims: the detector never makes things worse, and it catches
    # every class-1 (large) fault while classes 2/3 stay silent.
    assert comparison["worst_case_with"] <= comparison["worst_case_without"]
    assert with_det["per_class"]["large"]["detection_rate"] == 1.0
    assert with_det["per_class"]["slightly_smaller"]["detection_rate"] == 0.0
    assert with_det["per_class"]["near_zero"]["detection_rate"] == 0.0


def test_summary_early_fault_vulnerability(benchmark, poisson_bench_problem,
                                           circuit_bench_problem, stride, scale,
                                           circuit_max_outer):
    """The 'faulting early in the first inner solve is universally bad' finding."""

    def run():
        results = {}
        for label, problem, max_outer in (
            ("poisson", poisson_bench_problem, 100),
            ("circuit", circuit_bench_problem, circuit_max_outer),
        ):
            campaign = FaultCampaign(problem, inner_iterations=25, max_outer=max_outer,
                                     outer_tol=1e-8, mgs_position="first", detector=None)
            baseline = campaign.run_failure_free().outer_iterations
            early = campaign.run(locations=range(0, 25, max(stride // 2, 1)))
            late_start = max(baseline - 1, 1) * 25
            late = campaign.run(locations=range(late_start, late_start + 25,
                                                max(stride // 2, 1)))
            results[label] = (baseline, early, late)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (baseline, early, late) in results.items():
        worst_early = max(early.max_increase(c) for c in early.fault_classes())
        worst_late = max(late.max_increase(c) for c in late.fault_classes())
        pct = 100.0 * worst_early / baseline if baseline else 0.0
        print(f"  {label}: failure-free={baseline}, worst increase for faults in the first "
              f"inner solve=+{worst_early} ({pct:.0f}%), in the last inner solve=+{worst_late}")
        benchmark.extra_info[f"{label}.worst_increase_first_inner_solve"] = worst_early
        benchmark.extra_info[f"{label}.worst_increase_last_inner_solve"] = worst_late
        benchmark.extra_info[f"{label}.percent_increase_first_inner_solve"] = round(pct, 1)
        # Early faults are at least as damaging as late faults.
        assert worst_early >= worst_late
