"""Benchmark ``table1``: regenerate Table I (sample-matrix properties).

Prints the table in the paper's layout and records every computed property in
``benchmark.extra_info`` so it can be diffed against the values published in
the paper (stored in :data:`repro.experiments.table1.PAPER_TABLE1`).
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.table1 import PAPER_TABLE1, matrix_properties, table1_rows


def test_table1_matrix_properties(benchmark, poisson_bench_problem, circuit_bench_problem,
                                  scale):
    problems = {"poisson": poisson_bench_problem, "circuit": circuit_bench_problem}
    # Condition estimation at paper scale uses the sparse LU path; it is the
    # most expensive entry of the table but still tractable.
    compute_condition = scale in ("tiny", "small", "medium", "paper")

    def run():
        return {label: matrix_properties(problem, compute_condition=compute_condition,
                                         condition_method="auto")
                for label, problem in problems.items()}

    properties = benchmark.pedantic(run, rounds=1, iterations=1)

    headers, rows = table1_rows(problems, compute_condition=compute_condition)
    print()
    print(format_table(headers, rows, title=f"Table I (scale={scale})"))
    print("\nPaper reference values (full-size matrices):")
    paper_rows = [
        [key,
         PAPER_TABLE1["poisson"].get(key, ""),
         PAPER_TABLE1["circuit"].get(key, "")]
        for key in ("rows", "nnz", "condition_number", "two_norm", "frobenius_norm")
    ]
    print(format_table(["property", "poisson (paper)", "mult_dcop_03 (paper)"], paper_rows))

    for label, props in properties.items():
        for key, value in props.items():
            if key != "name":
                benchmark.extra_info[f"{label}.{key}"] = (
                    float(value) if isinstance(value, (int, float)) else str(value))
