"""Benchmark ``fig2``: Hessenberg vs tridiagonal structure of H (Figure 2).

Runs the Arnoldi process on the SPD Poisson matrix and on the nonsymmetric
circuit matrix and reports the observed bandwidth of the projected matrix.
The paper's claim: SPD input gives a tridiagonal H (so entries that should be
zero are prime targets for SDC), nonsymmetric input gives a full upper
Hessenberg H.
"""

from __future__ import annotations

from repro.experiments.figure2 import figure2_comparison, hessenberg_structure


def test_figure2_hessenberg_structure(benchmark, poisson_bench_problem,
                                      circuit_bench_problem, scale):
    steps = 10

    def run():
        return figure2_comparison(poisson_bench_problem.A, circuit_bench_problem.A,
                                  steps=steps)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    spd = result["spd"]
    nonsym = result["nonsymmetric"]
    print()
    print(f"Figure 2 (scale={scale}, {steps} Arnoldi steps)")
    print(f"  SPD (Poisson):        bandwidth={spd['bandwidth']}, "
          f"tridiagonal={spd['is_tridiagonal']}")
    print(f"  nonsymmetric (circuit): bandwidth={nonsym['bandwidth']}, "
          f"tridiagonal={nonsym['is_tridiagonal']}")
    print("  SPD pattern of H:")
    print("    " + spd["pattern"].replace("\n", "\n    "))
    print("  nonsymmetric pattern of H:")
    print("    " + nonsym["pattern"].replace("\n", "\n    "))

    assert result["consistent_with_paper"], (
        "the SPD Hessenberg matrix should be tridiagonal and the nonsymmetric one full")

    benchmark.extra_info["spd_bandwidth"] = spd["bandwidth"]
    benchmark.extra_info["nonsymmetric_bandwidth"] = nonsym["bandwidth"]
    benchmark.extra_info["consistent_with_paper"] = bool(result["consistent_with_paper"])


def test_figure2_orthogonality_quality(benchmark, poisson_bench_problem):
    """Companion check: the Arnoldi basis stays orthonormal to near machine precision."""

    def run():
        return hessenberg_structure(poisson_bench_problem.A, steps=20)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nArnoldi orthogonality error over 20 steps: {report['orthogonality_error']:.2e}")
    assert report["orthogonality_error"] < 1e-8
    benchmark.extra_info["orthogonality_error"] = report["orthogonality_error"]
