"""Benchmark ``fig4a``/``fig4b``: single-SDC sweeps on the circuit problem (Figure 4).

Same protocol as Figure 3, applied to the nonsymmetric, ill-conditioned
circuit matrix (the ``mult_dcop_03`` surrogate): a single multiplicative SDC
injected into the first or last MGS coefficient of every aggregate inner
iteration, for the paper's three fault classes.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure34 import run_fault_sweep


def _report(campaign, label):
    print()
    print(f"{label}: failure-free outer iterations = {campaign.failure_free_outer}, "
          f"{len(campaign.trials)} faulted runs")
    for cls in campaign.fault_classes():
        locations, outers = campaign.series(cls)
        no_penalty = (outers <= campaign.failure_free_outer).mean() if outers.size else 0.0
        print(f"  fault class {cls:18s}: worst outer = {campaign.max_outer(cls):3d} "
              f"(+{campaign.max_increase(cls)}, {campaign.percent_increase(cls):.1f}%), "
              f"no-penalty fraction = {no_penalty:.2f}")


def _record(benchmark, campaign):
    benchmark.extra_info["failure_free_outer"] = campaign.failure_free_outer
    benchmark.extra_info["trials"] = len(campaign.trials)
    benchmark.extra_info["non_converged"] = len(campaign.non_converged())
    for cls in campaign.fault_classes():
        benchmark.extra_info[f"{cls}.max_outer"] = campaign.max_outer(cls)
        benchmark.extra_info[f"{cls}.max_increase"] = campaign.max_increase(cls)
        benchmark.extra_info[f"{cls}.percent_increase"] = round(
            campaign.percent_increase(cls), 2)


@pytest.mark.parametrize("mgs_position", ["first", "last"], ids=["fig4a", "fig4b"])
def test_figure4_circuit_sdc_sweep(benchmark, circuit_bench_problem, stride, scale,
                                   circuit_max_outer, workers, mgs_position):
    campaign = benchmark.pedantic(
        lambda: run_fault_sweep(
            circuit_bench_problem,
            mgs_position=mgs_position,
            detector=None,
            inner_iterations=25,
            max_outer=circuit_max_outer,
            outer_tol=1e-8,
            stride=stride,
            workers=workers,
        ),
        rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers
    _report(campaign, f"Figure 4{'a' if mgs_position == 'first' else 'b'} "
                      f"(circuit, SDC on the {mgs_position} MGS iteration, scale={scale})")
    _record(benchmark, campaign)

    # Shape check: single SDC events never push the solver past its budget
    # (the paper reports at most a handful of extra outer iterations).
    assert len(campaign.non_converged()) == 0
