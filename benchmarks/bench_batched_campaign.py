"""Benchmark ``batched``: the trial-batched campaign engine vs serial.

Runs the Figure-3(a)-style sweep (Poisson, SDC on the first MGS coefficient,
the paper's Hessenberg-bound detector with the filtering response) once
through the serial backend and once through the trial-batched lockstep
backend of :class:`repro.exec.CampaignExecutor`, asserting that the batched
result is equivalent to the serial one (identical per-trial iteration counts
and classification, residual norms within 1e-10) and that the batched
backend actually delivers its speedup.

Single-CPU framing: unlike the process backend — whose recorded "speedups"
on a single-core host are pure dispatch overhead (see
``bench_campaign_scaling.py``) — batching amortizes interpreter and kernel
dispatch overhead *inside one process*, so its win must and does show up on
one CPU.  The speedup floor below is therefore asserted unconditionally, not
gated on ``cpu_count``.

Scale framing: the amortization is largest where per-trial Python/BLAS-1
dispatch dominates (the tiny/small matrices, where the floor is the
PR-acceptance 3x).  At the medium/paper matrix sizes both backends are
memory-bandwidth-bound in the same sparse kernels and the remaining win
comes from shared-prefix elimination (~2x measured); the floor reflects
that honestly rather than pretending dispatch overhead still dominates.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.figure34 import run_fault_sweep

#: Asserted lower bound on the batched-vs-serial wall-time ratio per scale.
#: tiny/small: interpreter-overhead domain -> the acceptance-criterion 3x.
#: medium/paper: memory-bound domain -> the prefix-sharing win (~2x measured
#: at medium); asserted with slack for noisy shared runners.
SPEEDUP_FLOORS = {"tiny": 3.0, "small": 3.0, "medium": 1.4, "paper": 1.1}

#: Batch width used by the benchmark (wider than the default 32: the sweep
#: has hundreds of trials and a single wide batch amortizes best).
BATCH_SIZE = 64


def _sweep(problem, stride, detector="bound", **kwargs):
    return run_fault_sweep(
        problem,
        mgs_position="first",
        detector=detector,
        detector_response="zero",
        inner_iterations=25,
        max_outer=100,
        outer_tol=1e-8,
        stride=stride,
        **kwargs,
    )


def _assert_equivalent(serial, batched):
    """The engine's contract, asserted trial for trial."""
    assert len(batched.trials) == len(serial.trials)
    assert batched.failure_free_outer == serial.failure_free_outer
    for s, b in zip(serial.trials, batched.trials):
        assert (s.fault_class, s.aggregate_inner_iteration) == \
            (b.fault_class, b.aggregate_inner_iteration)
        assert b.outer_iterations == s.outer_iterations
        assert b.total_inner_iterations == s.total_inner_iterations
        assert b.converged == s.converged
        assert b.status == s.status
        assert b.faults_injected == s.faults_injected
        assert b.faults_detected == s.faults_detected
        assert abs(b.residual_norm - s.residual_norm) <= \
            1e-10 * max(1.0, abs(s.residual_norm))


@pytest.fixture(scope="module")
def serial_reference(poisson_bench_problem, stride):
    """The serial sweep, run once: (campaign result, wall seconds)."""
    start = time.perf_counter()
    campaign = _sweep(poisson_bench_problem, stride, backend="serial")
    elapsed = time.perf_counter() - start
    return campaign, elapsed


def test_batched_campaign_speedup(benchmark, serial_reference,
                                  poisson_bench_problem, scale, stride):
    serial_campaign, serial_seconds = serial_reference

    batched_campaign = benchmark.pedantic(
        lambda: _sweep(poisson_bench_problem, stride, backend="batched",
                       batch_size=BATCH_SIZE),
        rounds=1, iterations=1)

    _assert_equivalent(serial_campaign, batched_campaign)

    batched_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["stride"] = stride
    benchmark.extra_info["trials"] = len(batched_campaign.trials)
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 4)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["speedup_floor"] = SPEEDUP_FLOORS[scale]
    print(f"\nbatched sweep ({scale}): {len(batched_campaign.trials)} trials, "
          f"{batched_seconds:.2f}s vs serial {serial_seconds:.2f}s "
          f"-> speedup {speedup:.2f}x (floor {SPEEDUP_FLOORS[scale]}x, 1 CPU valid)")

    floor = SPEEDUP_FLOORS[scale]
    assert speedup >= floor, (
        f"batched backend delivered {speedup:.2f}x at scale {scale!r}; "
        f"expected >= {floor}x even on a single CPU")


def test_batched_campaign_no_detector(benchmark, poisson_bench_problem, scale, stride):
    """The detector-off sweep: huge-fault trials are chaos-peeled to serial,
    so the batched win is smaller; recorded for the trajectory, asserted only
    not to be a slowdown beyond noise."""
    start = time.perf_counter()
    serial_campaign = _sweep(poisson_bench_problem, stride, detector=None,
                             backend="serial")
    serial_seconds = time.perf_counter() - start

    batched_campaign = benchmark.pedantic(
        lambda: _sweep(poisson_bench_problem, stride, detector=None,
                       backend="batched", batch_size=BATCH_SIZE),
        rounds=1, iterations=1)
    _assert_equivalent(serial_campaign, batched_campaign)

    batched_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["trials"] = len(batched_campaign.trials)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 4)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    print(f"\nbatched no-detector sweep ({scale}): speedup {speedup:.2f}x "
          "(1/3 of trials are chaos-peeled to the serial engine)")
    assert speedup >= 0.9
