"""Preconditioner setup/apply cost benchmarks (the PR 2 engine numbers).

Times the construction and per-application cost of every bundled
preconditioner on the Poisson and convection–diffusion problems at the
configured scale, records the level-schedule shape of the triangular-solve
engine in ``extra_info``, and — for the engine-backed preconditioners —
times a *seed-style reference sweep* (the row-by-row masked formulation the
level-scheduled engine replaced) in-process, so the recorded
``speedup_vs_seed_sweep`` stays an honest apples-to-apples number no matter
how the surrounding code evolves.

Recorded artifact: ``BENCH_PR2_precond.json`` (medium scale).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import SCALE_SIZES
from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.polynomial import NeumannPolynomialPreconditioner
from repro.precond.ssor import GaussSeidelPreconditioner, SSORPreconditioner

#: Scales at which the ISSUE-2 acceptance floor (>= 5x on ILU/SSOR apply) is
#: asserted.  Tiny/small problems have too few rows per level to guarantee a
#: stable factor in CI smoke runs; they still record their measurements.
SPEEDUP_ASSERT_SCALES = ("medium", "paper")
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def convdiff_bench_matrix(scale):
    """Convection–diffusion matrix on the same grid as the Poisson problem."""
    grid_n, _ = SCALE_SIZES[scale]
    return convection_diffusion_2d(grid_n)


# --------------------------------------------------------------------------- #
# seed-style reference sweeps (the formulation PR 2 replaced)
# --------------------------------------------------------------------------- #
def _seed_forward_sweep(A, r, diag, omega=None):
    """Row-by-row ``(D + L) z = r`` (or ``(D/w + L) y = r``), seed formulation."""
    z = np.zeros_like(r)
    for i in range(A.shape[0]):
        cols, vals = A.row(i)
        mask = cols < i
        acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
        z[i] = (r[i] - acc) / diag[i] if omega is None else (r[i] - acc) * omega / diag[i]
    return z


def _seed_backward_sweep(A, y, diag, omega):
    z = np.zeros_like(y)
    for i in range(A.shape[0] - 1, -1, -1):
        cols, vals = A.row(i)
        mask = cols > i
        acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
        z[i] = (y[i] - acc) * omega / diag[i]
    return z


def _seed_ssor_apply(A, r, diag, omega):
    y = _seed_forward_sweep(A, r, diag, omega=omega)
    y *= (2.0 - omega) / omega * diag
    return _seed_backward_sweep(A, y, diag, omega)


def _seed_ilu_apply(m, r):
    """Row-by-row L/U substitution over the factored CSR data (seed apply)."""
    n = m.shape[0]
    indptr, indices, data = m.indptr, m.indices, m.data
    y = np.zeros_like(r)
    for i in range(n):
        start, stop = indptr[i], indptr[i + 1]
        cols = indices[start:stop]
        vals = data[start:stop]
        mask = cols < i
        acc = float(np.dot(vals[mask], y[cols[mask]])) if mask.any() else 0.0
        y[i] = r[i] - acc
    z = np.zeros_like(r)
    for i in range(n - 1, -1, -1):
        start, stop = indptr[i], indptr[i + 1]
        cols = indices[start:stop]
        vals = data[start:stop]
        mask = cols > i
        acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
        dptr = m._diag_ptr[i]
        pivot = data[dptr] if dptr >= 0 and data[dptr] != 0.0 else 1.0
        z[i] = (y[i] - acc) / pivot
    return z


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record_engine_info(benchmark, factors):
    levels = {}
    for name, factor in factors.items():
        stats = factor.schedule_stats()
        levels[name] = {k: stats[k] for k in ("num_levels", "mean_rows_per_level", "mode")}
    benchmark.extra_info["factors"] = levels


def _run_engine_benchmark(benchmark, scale, A, build, seed_apply, problem_name):
    rng = np.random.default_rng(2014)
    r = rng.standard_normal(A.shape[0])

    setup_seconds = _best_of(lambda: build())
    m = build()
    z = benchmark(m.apply, r)

    seed_seconds = _best_of(lambda: seed_apply(m, r))
    # The engine's two paths must agree bit for bit, and the seed-style
    # reference must agree numerically (it sums rows in a different order).
    reference = seed_apply(m, r)
    np.testing.assert_allclose(z, reference, rtol=1e-9, atol=1e-12)

    apply_seconds = benchmark.stats.stats.min
    speedup = seed_seconds / apply_seconds if apply_seconds > 0 else float("inf")
    benchmark.extra_info.update({
        "problem": problem_name,
        "n": A.shape[0],
        "nnz": A.nnz,
        "scale": scale,
        "setup_seconds": round(setup_seconds, 6),
        "seed_sweep_seconds": round(seed_seconds, 6),
        "speedup_vs_seed_sweep": round(speedup, 2),
    })
    print(f"\n{problem_name}: apply {apply_seconds * 1e3:.3f} ms vs seed-style "
          f"{seed_seconds * 1e3:.3f} ms -> {speedup:.1f}x")
    if scale in SPEEDUP_ASSERT_SCALES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"level-scheduled apply is only {speedup:.2f}x the seed sweep "
            f"(floor {SPEEDUP_FLOOR}x)")
    return m


# --------------------------------------------------------------------------- #
# engine-backed preconditioners: ILU(0), SSOR, Gauss-Seidel
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("problem_name", ["poisson", "convdiff"])
def test_precond_ilu0_apply(benchmark, poisson_bench_problem, convdiff_bench_matrix,
                            scale, problem_name):
    A = poisson_bench_problem.A if problem_name == "poisson" else convdiff_bench_matrix
    m = _run_engine_benchmark(benchmark, scale, A, lambda: ILU0Preconditioner(A),
                              _seed_ilu_apply, f"ILU0/{problem_name}")
    _record_engine_info(benchmark, {"L": m.factors[0], "U": m.factors[1]})


@pytest.mark.parametrize("problem_name", ["poisson", "convdiff"])
def test_precond_ssor_apply(benchmark, poisson_bench_problem, convdiff_bench_matrix,
                            scale, problem_name):
    A = poisson_bench_problem.A if problem_name == "poisson" else convdiff_bench_matrix
    omega = 1.0

    def seed_apply(m, r):
        return _seed_ssor_apply(m.A, r, m._diag, m.omega)

    m = _run_engine_benchmark(benchmark, scale, A,
                              lambda: SSORPreconditioner(A, omega=omega),
                              seed_apply, f"SSOR/{problem_name}")
    _record_engine_info(benchmark, {"forward": m._forward, "backward": m._backward})


def test_precond_gauss_seidel_apply(benchmark, poisson_bench_problem, scale):
    A = poisson_bench_problem.A

    def seed_apply(m, r):
        return _seed_forward_sweep(m.A, r, m._diag)

    m = _run_engine_benchmark(benchmark, scale, A,
                              lambda: GaussSeidelPreconditioner(A),
                              seed_apply, "GaussSeidel/poisson")
    _record_engine_info(benchmark, {"forward": m._factor})


def test_precond_trisolve_paths_bit_identical(benchmark, poisson_bench_problem, scale):
    """The acceptance-criteria bit-identity check at benchmark scale (run as
    a one-round "benchmark" so ``--benchmark-only`` smoke passes execute it)."""
    A = poisson_bench_problem.A
    rng = np.random.default_rng(7)
    r = rng.standard_normal(A.shape[0])

    def check():
        for m_level, m_seq in (
            (ILU0Preconditioner(A, trisolve_mode="level"),
             ILU0Preconditioner(A, trisolve_mode="sequential")),
            (SSORPreconditioner(A, trisolve_mode="level"),
             SSORPreconditioner(A, trisolve_mode="sequential")),
            (GaussSeidelPreconditioner(A, trisolve_mode="level"),
             GaussSeidelPreconditioner(A, trisolve_mode="sequential")),
        ):
            np.testing.assert_array_equal(m_level.apply(r), m_seq.apply(r))
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["n"] = A.shape[0]
    benchmark.extra_info["scale"] = scale


# --------------------------------------------------------------------------- #
# diagonal/polynomial preconditioners (setup + apply context numbers)
# --------------------------------------------------------------------------- #
def test_precond_jacobi_apply(benchmark, poisson_bench_problem, scale):
    A = poisson_bench_problem.A
    r = np.random.default_rng(2014).standard_normal(A.shape[0])
    setup_seconds = _best_of(lambda: JacobiPreconditioner(A))
    m = JacobiPreconditioner(A)
    benchmark(m.apply, r)
    benchmark.extra_info.update({"n": A.shape[0], "scale": scale,
                                 "setup_seconds": round(setup_seconds, 6)})


def test_precond_neumann_apply(benchmark, poisson_bench_problem, scale):
    A = poisson_bench_problem.A
    r = np.random.default_rng(2014).standard_normal(A.shape[0])
    m = NeumannPolynomialPreconditioner(A, degree=3)
    z = benchmark(m.apply, r)
    assert np.all(np.isfinite(z))
    benchmark.extra_info.update({"n": A.shape[0], "scale": scale, "degree": 3})
