"""Section VII-E summary statistics: the detector's effect on worst cases.

The paper summarizes its sweeps with a handful of headline numbers:

* faulting early in the first inner solve's orthogonalization is universally
  bad (33 % worst-case increase in time-to-solution for Poisson, 14 % for the
  circuit problem);
* with the Hessenberg-bound detector the worst-case increase in outer
  iterations is about 2; without it, about 5 (Poisson, combining first/last
  positions);
* typically one extra outer iteration is the penalty for a single SDC event.

:func:`summarize_campaign` condenses one campaign into those statistics and
:func:`detector_comparison` builds the with/without-detector comparison.

The statistics are computed through the
:class:`~repro.results.query.TrialQuery` filter/group/aggregate API, so they
work identically on a live :class:`~repro.faults.campaign.CampaignResult`
and on one rebuilt from a :class:`~repro.results.store.RunStore` — any
summary regenerates from a stored run with zero new solves.
"""

from __future__ import annotations

from repro.faults.campaign import CampaignResult

__all__ = ["summarize_campaign", "detector_comparison", "worst_case_increase",
           "median_increase", "fraction_no_penalty"]


def worst_case_increase(campaign: CampaignResult, fault_classes=None) -> int:
    """Worst-case increase in outer iterations over the failure-free count."""
    query = campaign.query()
    if fault_classes is not None:
        query = query.filter(lambda t: t.fault_class in fault_classes)
    if not query:
        return 0
    return max(int(query.max("outer_iterations")) - campaign.failure_free_outer, 0)


def median_increase(campaign: CampaignResult, fault_class: str) -> float:
    """Median increase in outer iterations for one fault class."""
    query = campaign.query().filter(fault_class=fault_class)
    if not query:
        return 0.0
    return query.median("outer_iterations") - campaign.failure_free_outer


def fraction_no_penalty(campaign: CampaignResult, fault_class: str) -> float:
    """Fraction of trials that converged in the failure-free outer count."""
    baseline = campaign.failure_free_outer
    return (campaign.query().filter(fault_class=fault_class)
            .rate(lambda t: t.outer_iterations <= baseline))


def summarize_campaign(campaign: CampaignResult) -> dict:
    """Condense one campaign into the Section VII-E headline statistics.

    The shared worst/increase/percent/detection numbers come from
    :meth:`CampaignResult.summary` (the one implementation of those
    formulas); this adds the distribution statistics the Section VII-E text
    quotes on top.
    """
    baseline = campaign.failure_free_outer
    shared = campaign.summary()
    per_class = {}
    for cls, query in campaign.query().group_by("fault_class").items():
        stats = dict(shared[cls])
        del stats["trials"]
        per_class[cls] = {
            **stats,
            "median_increase": query.median("outer_iterations") - baseline,
            "fraction_no_penalty": query.rate(
                lambda t: t.outer_iterations <= baseline),
        }
    worst = worst_case_increase(campaign)
    return {
        "problem": campaign.problem_name,
        "mgs_position": campaign.mgs_position,
        "detector_enabled": campaign.detector_enabled,
        "failure_free_outer": campaign.failure_free_outer,
        "worst_case_increase": worst,
        "worst_case_percent": (100.0 * worst / campaign.failure_free_outer
                               if campaign.failure_free_outer else 0.0),
        "non_converged_trials": len(campaign.non_converged()),
        "per_class": per_class,
    }


def detector_comparison(without_detector: CampaignResult,
                        with_detector: CampaignResult) -> dict:
    """The paper's with/without-detector comparison for matching sweeps.

    Parameters
    ----------
    without_detector, with_detector : CampaignResult
        Two campaigns on the same problem and MGS position, differing only in
        whether the Hessenberg-bound detector (with a filtering response) was
        enabled for the inner solves.

    Returns
    -------
    dict
        Both summaries plus the headline claim check: the worst case with
        the detector should be no worse than without it.
    """
    summary_without = summarize_campaign(without_detector)
    summary_with = summarize_campaign(with_detector)
    return {
        "without_detector": summary_without,
        "with_detector": summary_with,
        "worst_case_without": summary_without["worst_case_increase"],
        "worst_case_with": summary_with["worst_case_increase"],
        "detector_helps": summary_with["worst_case_increase"]
        <= summary_without["worst_case_increase"],
    }
