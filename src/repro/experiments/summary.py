"""Section VII-E summary statistics: the detector's effect on worst cases.

The paper summarizes its sweeps with a handful of headline numbers:

* faulting early in the first inner solve's orthogonalization is universally
  bad (33 % worst-case increase in time-to-solution for Poisson, 14 % for the
  circuit problem);
* with the Hessenberg-bound detector the worst-case increase in outer
  iterations is about 2; without it, about 5 (Poisson, combining first/last
  positions);
* typically one extra outer iteration is the penalty for a single SDC event.

:func:`summarize_campaign` condenses one campaign into those statistics and
:func:`detector_comparison` builds the with/without-detector comparison.
"""

from __future__ import annotations

import numpy as np

from repro.faults.campaign import CampaignResult

__all__ = ["summarize_campaign", "detector_comparison", "worst_case_increase",
           "median_increase", "fraction_no_penalty"]


def worst_case_increase(campaign: CampaignResult, fault_classes=None) -> int:
    """Worst-case increase in outer iterations over the failure-free count."""
    classes = fault_classes if fault_classes is not None else campaign.fault_classes()
    if not classes:
        return 0
    return max(campaign.max_increase(cls) for cls in classes)


def median_increase(campaign: CampaignResult, fault_class: str) -> float:
    """Median increase in outer iterations for one fault class."""
    _, outers = campaign.series(fault_class)
    if outers.size == 0:
        return 0.0
    return float(np.median(outers - campaign.failure_free_outer))


def fraction_no_penalty(campaign: CampaignResult, fault_class: str) -> float:
    """Fraction of trials that converged in the failure-free outer count."""
    _, outers = campaign.series(fault_class)
    if outers.size == 0:
        return 0.0
    return float(np.mean(outers <= campaign.failure_free_outer))


def summarize_campaign(campaign: CampaignResult) -> dict:
    """Condense one campaign into the Section VII-E headline statistics."""
    per_class = {}
    for cls in campaign.fault_classes():
        per_class[cls] = {
            "max_outer": campaign.max_outer(cls),
            "max_increase": campaign.max_increase(cls),
            "percent_increase": campaign.percent_increase(cls),
            "median_increase": median_increase(campaign, cls),
            "fraction_no_penalty": fraction_no_penalty(campaign, cls),
            "detection_rate": campaign.detection_rate(cls),
        }
    return {
        "problem": campaign.problem_name,
        "mgs_position": campaign.mgs_position,
        "detector_enabled": campaign.detector_enabled,
        "failure_free_outer": campaign.failure_free_outer,
        "worst_case_increase": worst_case_increase(campaign),
        "worst_case_percent": (100.0 * worst_case_increase(campaign) /
                               campaign.failure_free_outer
                               if campaign.failure_free_outer else 0.0),
        "non_converged_trials": len(campaign.non_converged()),
        "per_class": per_class,
    }


def detector_comparison(without_detector: CampaignResult,
                        with_detector: CampaignResult) -> dict:
    """The paper's with/without-detector comparison for matching sweeps.

    Parameters
    ----------
    without_detector, with_detector : CampaignResult
        Two campaigns on the same problem and MGS position, differing only in
        whether the Hessenberg-bound detector (with a filtering response) was
        enabled for the inner solves.

    Returns
    -------
    dict
        Both summaries plus the headline claim check: the worst case with
        the detector should be no worse than without it.
    """
    summary_without = summarize_campaign(without_detector)
    summary_with = summarize_campaign(with_detector)
    return {
        "without_detector": summary_without,
        "with_detector": summary_with,
        "worst_case_without": summary_without["worst_case_increase"],
        "worst_case_with": summary_with["worst_case_increase"],
        "detector_helps": summary_with["worst_case_increase"]
        <= summary_without["worst_case_increase"],
    }
