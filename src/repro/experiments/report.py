"""Plain-text reporting helpers: aligned tables and ASCII series plots.

The paper's figures are line plots of "outer iterations to convergence"
versus "aggregate inner solve iteration that faults".  Since this library is
matplotlib-free by design (no plotting dependency is installed), the
experiment drivers render the same series as ASCII plots and aligned tables,
which is sufficient to compare shapes against the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_markdown_table", "ascii_series_plot",
           "campaign_class_table"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers : sequence of str
        Column headers.
    rows : sequence of sequences
        Table body; values are stringified with sensible float formatting.
    title : str, optional
        Title printed above the table.
    """
    headers = [str(h) for h in headers]
    str_rows = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = []
    if title:
        lines.append(title)
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers, rows, title: str | None = None) -> str:
    """Render a GitHub-flavoured Markdown table (used to fill EXPERIMENTS.md)."""
    headers = [str(h) for h in headers]
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)


def campaign_class_table(campaign) -> tuple[list, list]:
    """The per-fault-class summary table of a campaign (Figures 3/4 footer).

    A formatting of :meth:`CampaignResult.summary` — the single
    implementation of the per-class statistics — so it renders identically
    from a live :class:`~repro.faults.campaign.CampaignResult` and from one
    loaded back out of a :class:`~repro.results.store.RunStore`.
    """
    headers = ["fault class", "worst outer", "max increase", "% increase",
               "detected"]
    rows = [
        [cls, stats["max_outer"], stats["max_increase"],
         f"{stats['percent_increase']:.1f}%",
         f"{stats['detection_rate'] * 100:.0f}%"]
        for cls, stats in campaign.summary().items()
    ]
    return headers, rows


def ascii_series_plot(x, y, *, width: int = 72, height: int = 14, title: str = "",
                      xlabel: str = "", ylabel: str = "", marker: str = "*") -> str:
    """Render a scatter/line series as an ASCII plot.

    Parameters
    ----------
    x, y : array_like
        Series data (equal length).
    width, height : int
        Plot canvas size in characters.
    title, xlabel, ylabel : str
        Optional labels.
    marker : str
        Character used for data points.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"x and y must have the same length, got {x.shape} and {y.shape}")
    lines = []
    if title:
        lines.append(title)
    if x.size == 0:
        lines.append("(no data)")
        return "\n".join(lines)

    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    cols = np.clip(((x - x_min) / x_span * (width - 1)).round().astype(int), 0, width - 1)
    rows = np.clip(((y - y_min) / y_span * (height - 1)).round().astype(int), 0, height - 1)
    for c, r in zip(cols, rows):
        canvas[height - 1 - r][c] = marker

    y_label_width = max(len(f"{y_max:g}"), len(f"{y_min:g}"))
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_max:g}".rjust(y_label_width)
        elif i == height - 1:
            label = f"{y_min:g}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_axis = f"{x_min:g}".ljust(width // 2) + f"{x_max:g}".rjust(width - width // 2)
    lines.append(" " * (y_label_width + 2) + x_axis)
    if xlabel:
        lines.append(" " * (y_label_width + 2) + xlabel.center(width))
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)
