"""Table I — properties of the sample matrices.

The paper's Table I lists, for each of the two test matrices: dimensions,
nonzero count, structural full rank, nonzero-pattern symmetry, value type,
positive definiteness, condition number, and the two "potential fault
detectors" ``||A||_2`` and ``||A||_F``.  :func:`matrix_properties` computes
all of these for any :class:`~repro.gallery.problems.TestProblem`;
:func:`table1_rows` lays them out in the paper's row order; and
:data:`PAPER_TABLE1` records the paper's published values so EXPERIMENTS.md
can show them side by side.
"""

from __future__ import annotations

import numpy as np

from repro.gallery.problems import TestProblem
from repro.sparse.norms import frobenius_norm, two_norm_estimate
from repro.sparse.csr import CSRMatrix

__all__ = ["matrix_properties", "table1_rows", "condition_estimate", "PAPER_TABLE1"]


#: Values published in the paper's Table I (for comparison in EXPERIMENTS.md).
PAPER_TABLE1 = {
    "poisson": {
        "rows": 10000,
        "cols": 10000,
        "nnz": 49600,
        "structural_full_rank": True,
        "pattern_symmetric": True,
        "positive_definite": True,
        "condition_number": 6.0107e3,
        "two_norm": 8.0,
        "frobenius_norm": 446.0,
    },
    "circuit": {
        "rows": 25187,
        "cols": 25187,
        "nnz": 193216,
        "structural_full_rank": True,
        "pattern_symmetric": False,
        "positive_definite": False,
        "condition_number": 7.27261e13,
        "two_norm": 17.1762,
        "frobenius_norm": 42.4179,
    },
}


def condition_estimate(A: CSRMatrix, method: str = "auto") -> float:
    """Estimate the condition number of ``A``.

    Parameters
    ----------
    A : CSRMatrix
        Square matrix.
    method : {"auto", "dense", "sparse"}
        * ``"dense"`` — exact 2-norm condition number via dense SVD (only
          sensible below a few thousand rows).
        * ``"sparse"`` — 1-norm condition estimate using a sparse LU
          factorization and Hager/Higham norm estimation
          (``scipy.sparse.linalg.splu`` + ``onenormest``).
        * ``"auto"`` — dense below 2000 rows, sparse otherwise.

    Returns
    -------
    float
        The condition estimate; ``inf`` if the matrix is numerically
        singular or the factorization fails.
    """
    n = A.shape[0]
    if method not in ("auto", "dense", "sparse"):
        raise ValueError(f"unknown condition estimation method {method!r}")
    if method == "dense" or (method == "auto" and n <= 2000):
        dense = A.todense()
        s = np.linalg.svd(dense, compute_uv=False)
        if s[-1] == 0.0:
            return float("inf")
        return float(s[0] / s[-1])
    import scipy.sparse.linalg as spla

    sp = A.to_scipy().tocsc()
    try:
        lu = spla.splu(sp)
    except RuntimeError:
        return float("inf")
    norm_a = spla.onenormest(sp)

    n_rows = sp.shape[0]
    inv_op = spla.LinearOperator(
        (n_rows, n_rows),
        matvec=lambda v: lu.solve(v),
        rmatvec=lambda v: lu.solve(v, trans="T"),
    )
    norm_inv = spla.onenormest(inv_op)
    return float(norm_a * norm_inv)


def matrix_properties(problem: TestProblem, *, compute_condition: bool = True,
                      condition_method: str = "auto",
                      estimate_two_norm: bool = True) -> dict:
    """Compute the Table I property set for one test problem.

    Parameters
    ----------
    problem : TestProblem
        The problem whose matrix is analysed.
    compute_condition : bool
        Whether to estimate the condition number (the most expensive entry).
    condition_method : str
        Passed to :func:`condition_estimate`.
    estimate_two_norm : bool
        Whether to run the power-method estimate of ``||A||_2``.

    Returns
    -------
    dict
        Keys match :data:`PAPER_TABLE1` plus ``"name"``.
    """
    A = problem.A
    props = {
        "name": problem.name,
        "rows": A.shape[0],
        "cols": A.shape[1],
        "nnz": A.nnz,
        "structural_full_rank": A.has_full_structural_rank(),
        "pattern_symmetric": A.is_pattern_symmetric(),
        "numerically_symmetric": A.is_symmetric(),
        "positive_definite": problem.spd,
        "frobenius_norm": frobenius_norm(A),
    }
    props["two_norm"] = two_norm_estimate(A) if estimate_two_norm else float("nan")
    props["condition_number"] = (
        condition_estimate(A, method=condition_method) if compute_condition else float("nan")
    )
    return props


def table1_rows(problems: dict[str, TestProblem], **kwargs) -> tuple[list[str], list[list]]:
    """Assemble Table I in the paper's layout.

    Parameters
    ----------
    problems : dict
        Mapping of column label (e.g. ``"poisson"``, ``"circuit"``) to
        :class:`TestProblem`.
    **kwargs
        Forwarded to :func:`matrix_properties`.

    Returns
    -------
    (headers, rows)
        Headers are ``["Properties", <column labels...>]``; rows follow the
        paper's ordering and can be fed to
        :func:`repro.experiments.report.format_table`.
    """
    columns = {label: matrix_properties(problem, **kwargs)
               for label, problem in problems.items()}
    labels = list(columns)
    row_specs = [
        ("number of rows", "rows"),
        ("number of columns", "cols"),
        ("nonzeros", "nnz"),
        ("structural full rank?", "structural_full_rank"),
        ("nonzero pattern symmetry", "pattern_symmetric"),
        ("positive definite?", "positive_definite"),
        ("Condition Number", "condition_number"),
        ("||A||_2", "two_norm"),
        ("||A||_F", "frobenius_norm"),
    ]
    rows = []
    for label, key in row_specs:
        row = [label]
        for col in labels:
            value = columns[col][key]
            if key == "pattern_symmetric":
                value = "symmetric" if value else "nonsymmetric"
            elif isinstance(value, (bool, np.bool_)):
                value = "yes" if value else "no"
            row.append(value)
        rows.append(row)
    headers = ["Properties"] + labels
    return headers, rows
