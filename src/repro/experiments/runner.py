"""Command-line experiment runner (the ``repro`` console command).

Regenerates the paper's artifacts without going through pytest:

.. code-block:: bash

    repro table1 --scale small          # or: python -m repro ...
    repro fig2
    repro fig3 --scale small --stride 5
    repro fig4 --scale tiny --stride 5
    repro summary --scale small --stride 5
    repro all --scale tiny --stride 10

The sweep experiments are driven by a :class:`~repro.specs.CampaignSpec`,
which can come from a JSON file and be patched field-by-field:

.. code-block:: bash

    # declarative campaign configuration
    repro fig3 --config campaign.json

    # dotted-path overrides on top of flags/config
    repro fig3 --scale small \\
        --set exec.backend=batched --set exec.batch_size=16 \\
        --set solver.inner.maxiter=25 --set detector=bound

Precedence (last wins): CampaignSpec defaults < ``--config`` file < explicit
flags (``--stride``/``--detector``/``--inner-iterations``/``--workers``/
``--backend``/``--batch-size``) < ``--set`` overrides.  Each subcommand
prints the same report as the corresponding benchmark in ``benchmarks/``
(tables and ASCII series plots).  The ``--scale`` choices match
``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/``paper``).

Persistence (the results subsystem):

.. code-block:: bash

    # checkpoint every trial into a run store; SIGTERM-safe
    repro fig3 --scale small --store runs/ --sink console:25

    # continue an interrupted invocation (skips completed trials)
    repro fig3 --scale small --store runs/ --resume

    # regenerate the report purely from the store — zero new solves
    repro fig3 --scale small --store runs/ --from-store

Runs are keyed by a deterministic id (experiment, panel, and the campaign
spec's fingerprint), so the same configuration always finds its own store
entry and a changed configuration gets a fresh one.

The campaign service (:mod:`repro.service`) shares this console command:
``repro serve --store runs/`` starts the daemon, and ``repro
submit/jobs/watch/cancel/result/runs`` talk to it (see that module's docs).
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Sequence

from repro.experiments.figure2 import figure2_payload
from repro.experiments.figure34 import (FigureSweep, load_fault_sweep,
                                        run_fault_sweep, sweep_run_id)
from repro.experiments.report import format_table
from repro.experiments.summary import detector_comparison, summarize_campaign
from repro.experiments.table1 import table1_rows
from repro.gallery.problems import paper_problems
from repro.exec.executor import BackendKnobError
from repro.registry import RegistryError
from repro.registry import names as registry_names
from repro.registry import resolve_problem, resolve_sink
from repro.results.events import MultiSink
from repro.results.store import RunStore, RunStoreError
from repro.specs import CampaignSpec, SpecError, apply_overrides, parse_override_value

__all__ = ["main", "build_parser", "run_experiment", "build_campaign_spec"]

EXPERIMENTS = ("table1", "fig2", "fig3", "fig4", "summary")


def _service_commands() -> tuple[str, ...]:
    """The service subcommand names (import deferred: the runner must not
    pay for the service stack on every experiment invocation)."""
    from repro.service.client import SERVICE_COMMANDS

    return SERVICE_COMMANDS

#: Outer-iteration budgets per problem used by the sweep experiments (applied
#: only when neither ``--config`` nor ``--set`` chooses ``max_outer``).
MAX_OUTER = {"poisson": 100, "circuit": 200}

#: The runner's historical stride default (``--stride`` beats it, and a
#: config file that sets ``stride`` beats it too).
DEFAULT_STRIDE = 5

#: Declarative map from argparse dest -> dotted CampaignSpec path for every
#: flag that patches the spec.  :func:`build_campaign_spec` applies it, and
#: the static-analysis rule RPR003 cross-checks it both ways: each dest must
#: exist on :func:`build_parser`'s parser, and each dotted path must resolve
#: to a real spec field — so a new spec-backed flag cannot silently drift
#: from the spec schema.  (``stride`` has bespoke default handling and
#: ``max_outer`` a per-problem fallback; both are special-cased in
#: :func:`build_campaign_spec` but still validated through this table.)
SPEC_FLAG_DESTS = {
    "stride": "stride",
    "detector": "detector",
    "inner_iterations": "inner_iterations",
    "site": "site",
    "fault_rate": "fault_rate",
    "trial_timeout": "exec.trial_timeout",
    "backend": "exec.backend",
    "workers": "exec.workers",
    "batch_size": "exec.batch_size",
    "shards": "exec.shards",
    "max_retries": "exec.max_retries",
    "heartbeat_interval": "exec.heartbeat_interval",
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the runner CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures "
                    "(also invocable as `python -m repro`).",
    )
    parser.add_argument("experiments", nargs="+",
                        choices=list(EXPERIMENTS) + ["all"],
                        help="which artifacts to regenerate")
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "paper"],
                        help="problem sizes (paper = Table I sizes)")
    parser.add_argument("--config", default=None, metavar="SPEC.json",
                        help="campaign spec JSON file (CampaignSpec schema); "
                             "flags and --set override its fields")
    parser.add_argument("--set", action="append", default=[], dest="overrides",
                        metavar="PATH=VALUE",
                        help="dotted CampaignSpec override applied last, e.g. "
                             "--set exec.backend=batched --set "
                             "solver.inner.maxiter=25 (values parse as JSON, "
                             "falling back to plain strings); repeatable")
    parser.add_argument("--stride", type=int, default=None,
                        help=f"injection-location stride for the sweeps "
                             f"(1 = exhaustive; default {DEFAULT_STRIDE})")
    parser.add_argument("--detector", default=None,
                        help="detector spec for the inner solves, e.g. 'bound' "
                             "(the paper's Hessenberg-bound detector) or any "
                             f"registered detector {registry_names('detector')}; "
                             "omit to disable detection")
    parser.add_argument("--inner-iterations", type=int, default=None,
                        help="inner GMRES iterations per outer iteration "
                             "(default 25)")
    parser.add_argument("--site", default=None,
                        help="injection site(s) for the sweeps: one of "
                             "hessenberg/subdiag/spmv/precond/givens/orth/"
                             "basis, '*', or a comma-separated list like "
                             "'spmv,precond,givens' (default hessenberg)")
    parser.add_argument("--fault-rate", type=int, default=None, dest="fault_rate",
                        help="switch every trial from the paper's single "
                             "injection to a rate schedule firing N faults "
                             "per nested solve, anchored at the trial's "
                             "sweep location")
    parser.add_argument("--trial-timeout", type=float, default=None,
                        dest="trial_timeout", metavar="SECONDS",
                        help="per-trial time budget: hard-enforced (stuck "
                             "worker SIGKILL-ed, trial recorded as an error, "
                             "re-run by --resume) on the sharded and process "
                             "backends, checked after the fact on the others")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel workers for the sweeps (default: REPRO_WORKERS "
                             "or 1; 0 = one per CPU)")
    parser.add_argument("--backend", default=None,
                        choices=["serial", "thread", "process", "batched", "sharded"],
                        help="campaign execution backend (default: process when "
                             "workers > 1, else serial).  'process' wins when spare "
                             "CPU cores are available; 'batched' advances trials in "
                             "lockstep through shared block kernels and is the right "
                             "choice on single-CPU hosts, where process dispatch is "
                             "pure overhead; 'sharded' supervises crash-isolated "
                             "shard workers (heartbeats, hard timeouts, retries, "
                             "poison quarantine)")
    parser.add_argument("--batch-size", type=int, default=None, dest="batch_size",
                        help="trials advanced in lockstep per batch "
                             "(batched backend only; default 32)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard worker processes for the supervised "
                             "backend (implies --backend sharded)")
    parser.add_argument("--max-retries", type=int, default=None,
                        dest="max_retries",
                        help="worker crashes one trial may cause before it "
                             "is quarantined as a poison error record "
                             "(sharded backend; default 3)")
    parser.add_argument("--heartbeat-interval", type=float, default=None,
                        dest="heartbeat_interval", metavar="SECONDS",
                        help="supervisor liveness poll cadence (sharded "
                             "backend; default 0.1)")
    parser.add_argument("--kernels", default=None,
                        choices=["auto", "numpy", "scipy", "numba"],
                        help="sparse kernel tier for every solve (default: "
                             "REPRO_KERNELS or numpy; 'auto' picks the best "
                             "available compiled tier).  Strongest selector: "
                             "overrides the env var and spec.exec.kernels")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persist runs into a run store directory: each "
                             "completed trial is appended (and flushed) to "
                             "DIR/<run-id>/trials.jsonl under a manifest, so "
                             "an interrupted invocation can be continued with "
                             "--resume and reports can be regenerated with "
                             "--from-store")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: continue interrupted runs (only "
                             "missing trials are solved; a complete run is "
                             "just reloaded)")
    parser.add_argument("--from-store", action="store_true", dest="from_store",
                        help="with --store: regenerate the reports purely "
                             "from stored runs — zero new solves; errors if "
                             "a needed run is missing or incomplete")
    parser.add_argument("--sink", action="append", default=[], dest="sinks",
                        metavar="SPEC",
                        help="stream campaign events to a registered sink, "
                             f"e.g. 'console:25' or 'jsonl:events/' "
                             f"(registered sinks: {registry_names('sink')}); "
                             "repeatable")
    return parser


def build_campaign_spec(args, *, problem_key: str = "poisson") -> CampaignSpec:
    """The effective CampaignSpec: defaults < --config < flags < --set.

    ``problem_key`` selects the per-problem ``max_outer`` budget that the
    runner has always applied, used only when neither the config file nor a
    ``--set`` override chooses ``max_outer`` explicitly.
    """
    raw: dict = {}
    if args.config:
        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise SpecError("config", f"cannot read {args.config}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError("config", f"{args.config} is not valid JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise SpecError("config", f"{args.config} must hold a JSON object")
    spec = CampaignSpec.from_dict(raw) if raw else CampaignSpec()

    flag_overrides: dict = {}
    # The per-problem outer budget is a fallback, applied only when no other
    # layer (config, config's solver spec, or a --set override) chooses an
    # outer budget — it must never manufacture a budget conflict.
    set_paths = {item.partition("=")[0].strip() for item in args.overrides}
    config_solver = raw.get("solver") if isinstance(raw.get("solver"), dict) else {}
    if ("max_outer" not in raw and config_solver.get("max_outer") is None
            and not {"max_outer", "solver.max_outer"} & set_paths):
        flag_overrides["max_outer"] = MAX_OUTER[problem_key]
    if args.stride is None and "stride" not in raw:
        flag_overrides["stride"] = DEFAULT_STRIDE
    for dest, path in SPEC_FLAG_DESTS.items():
        value = getattr(args, dest)
        if value is not None:
            flag_overrides[path] = value
    spec = apply_overrides(spec, flag_overrides)

    for item in args.overrides:
        path, sep, value = item.partition("=")
        if not sep or not path:
            raise SpecError("--set", f"expected PATH=VALUE, got {item!r}")
        spec = apply_overrides(spec, {path.strip(): parse_override_value(value)})
    return spec


def _store_from(args) -> RunStore | None:
    """The run store named by ``--store`` (None without the flag)."""
    if args.store is None:
        if args.resume or args.from_store:
            raise SpecError("--store",
                            "--resume/--from-store require --store DIR")
        return None
    return RunStore(args.store)


def _sink_from(args):
    """The (possibly fanned-out) event sink built from ``--sink`` specs.

    Built once per CLI invocation (cached on ``args``) so every sweep of a
    multi-experiment run streams into the same sink, and :func:`main` can
    close it on the way out.
    """
    cached = getattr(args, "_sink", None)
    if cached is not None or not args.sinks:
        return cached
    sinks = [resolve_sink(spec) for spec in args.sinks]
    args._sink = sinks[0] if len(sinks) == 1 else MultiSink(sinks)
    return args._sink


def _run_or_load_sweep(problem, panel_spec: CampaignSpec, label: str, args):
    """One stored-aware sweep panel: run, resume, or reload from the store."""
    store = _store_from(args)
    if args.from_store:
        return load_fault_sweep(store, panel_spec, problem.name, label)
    run_id = (sweep_run_id(panel_spec, problem.name, label)
              if store is not None else None)
    return run_fault_sweep(problem, panel_spec, sink=_sink_from(args),
                           store=store, run_id=run_id, resume=args.resume)


def _print_table1(problems, scale: str, args) -> None:
    store = _store_from(args)
    artifact = f"table1-{scale}"
    if args.from_store:
        payload = store.load_artifact(artifact)
        headers, rows = payload["headers"], payload["rows"]
    else:
        headers, rows = table1_rows(problems, compute_condition=(scale != "paper"))
        if store is not None:
            store.save_artifact(artifact, {"headers": headers, "rows": rows})
    print(format_table(headers, rows, title=f"Table I (scale={scale})"))


def _print_fig2(problems, scale: str, args) -> None:
    store = _store_from(args)
    artifact = f"fig2-{scale}"
    if args.from_store:
        result = store.load_artifact(artifact)
    else:
        result = figure2_payload(problems["poisson"].A, problems["circuit"].A,
                                 steps=10)
        if store is not None:
            store.save_artifact(artifact, result)
    print("Figure 2 — structure of the projected matrix H")
    print(f"  SPD:          tridiagonal={result['spd']['is_tridiagonal']} "
          f"(bandwidth {result['spd']['bandwidth']})")
    print(f"  nonsymmetric: tridiagonal={result['nonsymmetric']['is_tridiagonal']} "
          f"(bandwidth {result['nonsymmetric']['bandwidth']})")
    print("  SPD pattern:")
    print("    " + result["spd"]["pattern"].replace("\n", "\n    "))
    print("  nonsymmetric pattern:")
    print("    " + result["nonsymmetric"]["pattern"].replace("\n", "\n    "))


def _sweep_problem(spec: CampaignSpec, problems, key: str):
    """The problem a sweep runs on: the spec's gallery spec, or the scale's."""
    if spec.problem is not None:
        return resolve_problem(spec.problem)
    return problems[key]


def _run_figure(problems, key: str, label: str, args) -> None:
    spec = build_campaign_spec(args, problem_key=key)
    problem = _sweep_problem(spec, problems, key)
    name = "fig3" if key == "poisson" else "fig4"
    panels = {}
    for position in ("first", "last"):
        panels[position] = _run_or_load_sweep(
            problem, spec.replace(problem=None, mgs_position=position),
            f"{name}-{position}", args)
    figure = FigureSweep(problem_name=problem.name, first=panels["first"],
                         last=panels["last"])
    print(f"{label} — single-SDC sweep on {problem.name}")
    print(figure.render())


def _print_summary(problems, args) -> None:
    spec = build_campaign_spec(args, problem_key="poisson")
    problem = _sweep_problem(spec, problems, "poisson")
    campaigns = {}
    for detector in (None, "bound"):
        campaign_spec = spec.replace(problem=None, mgs_position="first",
                                     detector=detector, detector_response="zero")
        campaigns[detector] = _run_or_load_sweep(
            problem, campaign_spec,
            "summary-bound" if detector == "bound" else "summary-nodetector",
            args)
    comparison = detector_comparison(campaigns[None], campaigns["bound"])
    print("Section VII-E summary (Poisson):")
    for key, campaign in (("without detector", campaigns[None]),
                          ("with detector", campaigns["bound"])):
        summary = summarize_campaign(campaign)
        print(f"  {key}: failure-free outer = {summary['failure_free_outer']}, "
              f"worst-case increase = +{summary['worst_case_increase']} "
              f"({summary['worst_case_percent']:.1f}%)")
    print(f"  detector helps or is neutral: {comparison['detector_helps']}")


def run_experiment(name: str, problems, args) -> None:
    """Run one named experiment and print its report."""
    if name == "table1":
        _print_table1(problems, args.scale, args)
    elif name == "fig2":
        _print_fig2(problems, args.scale, args)
    elif name == "fig3":
        _run_figure(problems, "poisson", "Figure 3", args)
    elif name == "fig4":
        _run_figure(problems, "circuit", "Figure 4", args)
    elif name == "summary":
        _print_summary(problems, args)
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    The campaign-service subcommands (``repro serve/submit/jobs/watch/
    cancel/result/runs``) are dispatched to :mod:`repro.service.client`
    and ``repro lint`` to :mod:`repro.analysis.cli` before the experiment
    parser sees the argv — one console command covers the artifact runner,
    the service, and the static-analysis gate.
    """
    import sys as _sys

    argv = list(_sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Project-native static analysis (import deferred like the service
        # stack: experiments must not pay for the analysis package).
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] in _service_commands():
        from repro.service.client import service_main

        return service_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.kernels is not None:
        # The flag is the strongest selector in the precedence
        # spec < REPRO_KERNELS < flag; publishing it as the env var applies
        # it to every campaign and worker this invocation creates.
        os.environ["REPRO_KERNELS"] = args.kernels
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    problems = paper_problems(args.scale)
    try:
        for i, name in enumerate(names):
            if i:
                print("\n" + "=" * 78 + "\n")
            run_experiment(name, problems, args)
        sink = getattr(args, "_sink", None)
        if sink is not None:
            sink.close()
    except (SpecError, RegistryError, BackendKnobError, RunStoreError) as exc:
        # Bad spec fields, unresolvable component names (e.g. a typo'd
        # --detector), execution-knob conflicts, and run-store problems
        # (missing/incomplete run under --from-store, fingerprint mismatch)
        # are configuration errors, not crashes: exit code 2 with the
        # offending field/component/run named.  Anything else (a genuine
        # ValueError from the numerics) propagates with its traceback.
        parser.error(str(exc))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
