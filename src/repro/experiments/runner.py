"""Command-line experiment runner.

Regenerates the paper's artifacts without going through pytest:

.. code-block:: bash

    python -m repro.experiments.runner table1 --scale small
    python -m repro.experiments.runner fig2
    python -m repro.experiments.runner fig3 --scale small --stride 5
    python -m repro.experiments.runner fig4 --scale tiny --stride 5
    python -m repro.experiments.runner summary --scale small --stride 5
    python -m repro.experiments.runner all --scale tiny --stride 10

The sweep experiments are driven by a :class:`~repro.specs.CampaignSpec`,
which can come from a JSON file and be patched field-by-field:

.. code-block:: bash

    # declarative campaign configuration
    python -m repro.experiments.runner fig3 --config campaign.json

    # dotted-path overrides on top of flags/config
    python -m repro.experiments.runner fig3 --scale small \\
        --set exec.backend=batched --set exec.batch_size=16 \\
        --set solver.inner.maxiter=25 --set detector=bound

Precedence (last wins): CampaignSpec defaults < ``--config`` file < explicit
flags (``--stride``/``--detector``/``--inner-iterations``/``--workers``/
``--backend``/``--batch-size``) < ``--set`` overrides.  Each subcommand
prints the same report as the corresponding benchmark in ``benchmarks/``
(tables and ASCII series plots).  The ``--scale`` choices match
``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/``paper``).
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from repro.experiments.figure2 import figure2_comparison
from repro.experiments.figure34 import FigureSweep, run_fault_sweep
from repro.experiments.report import format_table
from repro.experiments.summary import detector_comparison, summarize_campaign
from repro.experiments.table1 import table1_rows
from repro.gallery.problems import paper_problems
from repro.exec.executor import BackendKnobError
from repro.registry import RegistryError
from repro.registry import names as registry_names
from repro.registry import resolve_problem
from repro.specs import CampaignSpec, SpecError, apply_overrides, parse_override_value

__all__ = ["main", "build_parser", "run_experiment", "build_campaign_spec"]

EXPERIMENTS = ("table1", "fig2", "fig3", "fig4", "summary")

#: Outer-iteration budgets per problem used by the sweep experiments (applied
#: only when neither ``--config`` nor ``--set`` chooses ``max_outer``).
MAX_OUTER = {"poisson": 100, "circuit": 200}

#: The runner's historical stride default (``--stride`` beats it, and a
#: config file that sets ``stride`` beats it too).
DEFAULT_STRIDE = 5


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the runner CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+",
                        choices=list(EXPERIMENTS) + ["all"],
                        help="which artifacts to regenerate")
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "paper"],
                        help="problem sizes (paper = Table I sizes)")
    parser.add_argument("--config", default=None, metavar="SPEC.json",
                        help="campaign spec JSON file (CampaignSpec schema); "
                             "flags and --set override its fields")
    parser.add_argument("--set", action="append", default=[], dest="overrides",
                        metavar="PATH=VALUE",
                        help="dotted CampaignSpec override applied last, e.g. "
                             "--set exec.backend=batched --set "
                             "solver.inner.maxiter=25 (values parse as JSON, "
                             "falling back to plain strings); repeatable")
    parser.add_argument("--stride", type=int, default=None,
                        help=f"injection-location stride for the sweeps "
                             f"(1 = exhaustive; default {DEFAULT_STRIDE})")
    parser.add_argument("--detector", default=None,
                        help="detector spec for the inner solves, e.g. 'bound' "
                             "(the paper's Hessenberg-bound detector) or any "
                             f"registered detector {registry_names('detector')}; "
                             "omit to disable detection")
    parser.add_argument("--inner-iterations", type=int, default=None,
                        help="inner GMRES iterations per outer iteration "
                             "(default 25)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel workers for the sweeps (default: REPRO_WORKERS "
                             "or 1; 0 = one per CPU)")
    parser.add_argument("--backend", default=None,
                        choices=["serial", "thread", "process", "batched"],
                        help="campaign execution backend (default: process when "
                             "workers > 1, else serial).  'process' wins when spare "
                             "CPU cores are available; 'batched' advances trials in "
                             "lockstep through shared block kernels and is the right "
                             "choice on single-CPU hosts, where process dispatch is "
                             "pure overhead")
    parser.add_argument("--batch-size", type=int, default=None, dest="batch_size",
                        help="trials advanced in lockstep per batch "
                             "(batched backend only; default 32)")
    return parser


def build_campaign_spec(args, *, problem_key: str = "poisson") -> CampaignSpec:
    """The effective CampaignSpec: defaults < --config < flags < --set.

    ``problem_key`` selects the per-problem ``max_outer`` budget that the
    runner has always applied, used only when neither the config file nor a
    ``--set`` override chooses ``max_outer`` explicitly.
    """
    raw: dict = {}
    if args.config:
        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise SpecError("config", f"cannot read {args.config}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError("config", f"{args.config} is not valid JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise SpecError("config", f"{args.config} must hold a JSON object")
    spec = CampaignSpec.from_dict(raw) if raw else CampaignSpec()

    flag_overrides: dict = {}
    # The per-problem outer budget is a fallback, applied only when no other
    # layer (config, config's solver spec, or a --set override) chooses an
    # outer budget — it must never manufacture a budget conflict.
    set_paths = {item.partition("=")[0].strip() for item in args.overrides}
    config_solver = raw.get("solver") if isinstance(raw.get("solver"), dict) else {}
    if ("max_outer" not in raw and config_solver.get("max_outer") is None
            and not {"max_outer", "solver.max_outer"} & set_paths):
        flag_overrides["max_outer"] = MAX_OUTER[problem_key]
    if args.stride is not None:
        flag_overrides["stride"] = args.stride
    elif "stride" not in raw:
        flag_overrides["stride"] = DEFAULT_STRIDE
    if args.detector is not None:
        flag_overrides["detector"] = args.detector
    if args.inner_iterations is not None:
        flag_overrides["inner_iterations"] = args.inner_iterations
    if args.backend is not None:
        flag_overrides["exec.backend"] = args.backend
    if args.workers is not None:
        flag_overrides["exec.workers"] = args.workers
    if args.batch_size is not None:
        flag_overrides["exec.batch_size"] = args.batch_size
    spec = apply_overrides(spec, flag_overrides)

    for item in args.overrides:
        path, sep, value = item.partition("=")
        if not sep or not path:
            raise SpecError("--set", f"expected PATH=VALUE, got {item!r}")
        spec = apply_overrides(spec, {path.strip(): parse_override_value(value)})
    return spec


def _print_table1(problems, scale: str) -> None:
    headers, rows = table1_rows(problems, compute_condition=(scale != "paper"))
    print(format_table(headers, rows, title=f"Table I (scale={scale})"))


def _print_fig2(problems) -> None:
    result = figure2_comparison(problems["poisson"].A, problems["circuit"].A, steps=10)
    print("Figure 2 — structure of the projected matrix H")
    print(f"  SPD:          tridiagonal={result['spd']['is_tridiagonal']} "
          f"(bandwidth {result['spd']['bandwidth']})")
    print(f"  nonsymmetric: tridiagonal={result['nonsymmetric']['is_tridiagonal']} "
          f"(bandwidth {result['nonsymmetric']['bandwidth']})")
    print("  SPD pattern:")
    print("    " + result["spd"]["pattern"].replace("\n", "\n    "))
    print("  nonsymmetric pattern:")
    print("    " + result["nonsymmetric"]["pattern"].replace("\n", "\n    "))


def _sweep_problem(spec: CampaignSpec, problems, key: str):
    """The problem a sweep runs on: the spec's gallery spec, or the scale's."""
    if spec.problem is not None:
        return resolve_problem(spec.problem)
    return problems[key]


def _run_figure(problems, key: str, label: str, args) -> None:
    spec = build_campaign_spec(args, problem_key=key)
    problem = _sweep_problem(spec, problems, key)
    panels = {}
    for position in ("first", "last"):
        panels[position] = run_fault_sweep(
            problem, spec.replace(problem=None, mgs_position=position))
    figure = FigureSweep(problem_name=problem.name, first=panels["first"],
                         last=panels["last"])
    print(f"{label} — single-SDC sweep on {problem.name}")
    print(figure.render())


def _print_summary(problems, args) -> None:
    spec = build_campaign_spec(args, problem_key="poisson")
    problem = _sweep_problem(spec, problems, "poisson")
    campaigns = {}
    for detector in (None, "bound"):
        campaign_spec = spec.replace(problem=None, mgs_position="first",
                                     detector=detector, detector_response="zero")
        campaigns[detector] = run_fault_sweep(problem, campaign_spec)
    comparison = detector_comparison(campaigns[None], campaigns["bound"])
    print("Section VII-E summary (Poisson):")
    for key, campaign in (("without detector", campaigns[None]),
                          ("with detector", campaigns["bound"])):
        summary = summarize_campaign(campaign)
        print(f"  {key}: failure-free outer = {summary['failure_free_outer']}, "
              f"worst-case increase = +{summary['worst_case_increase']} "
              f"({summary['worst_case_percent']:.1f}%)")
    print(f"  detector helps or is neutral: {comparison['detector_helps']}")


def run_experiment(name: str, problems, args) -> None:
    """Run one named experiment and print its report."""
    if name == "table1":
        _print_table1(problems, args.scale)
    elif name == "fig2":
        _print_fig2(problems)
    elif name == "fig3":
        _run_figure(problems, "poisson", "Figure 3", args)
    elif name == "fig4":
        _run_figure(problems, "circuit", "Figure 4", args)
    elif name == "summary":
        _print_summary(problems, args)
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    problems = paper_problems(args.scale)
    try:
        for i, name in enumerate(names):
            if i:
                print("\n" + "=" * 78 + "\n")
            run_experiment(name, problems, args)
    except (SpecError, RegistryError, BackendKnobError) as exc:
        # Bad spec fields, unresolvable component names (e.g. a typo'd
        # --detector) and execution-knob conflicts are configuration errors,
        # not crashes: exit code 2 with the offending field/component named.
        # Anything else (a genuine ValueError from the numerics) propagates
        # with its traceback.
        parser.error(str(exc))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
