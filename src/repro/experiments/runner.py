"""Command-line experiment runner.

Regenerates the paper's artifacts without going through pytest:

.. code-block:: bash

    python -m repro.experiments.runner table1 --scale small
    python -m repro.experiments.runner fig2
    python -m repro.experiments.runner fig3 --scale small --stride 5
    python -m repro.experiments.runner fig4 --scale tiny --stride 5
    python -m repro.experiments.runner summary --scale small --stride 5
    python -m repro.experiments.runner all --scale tiny --stride 10

Each subcommand prints the same report as the corresponding benchmark in
``benchmarks/`` (tables and ASCII series plots).  The ``--scale`` choices
match ``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/``paper``).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.experiments.figure2 import figure2_comparison
from repro.experiments.figure34 import FigureSweep, run_fault_sweep
from repro.experiments.report import format_table
from repro.experiments.summary import detector_comparison, summarize_campaign
from repro.experiments.table1 import table1_rows
from repro.faults.campaign import FaultCampaign
from repro.gallery.problems import paper_problems

__all__ = ["main", "build_parser", "run_experiment"]

EXPERIMENTS = ("table1", "fig2", "fig3", "fig4", "summary")

#: Outer-iteration budgets per problem used by the sweep experiments.
MAX_OUTER = {"poisson": 100, "circuit": 200}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the runner CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+",
                        choices=list(EXPERIMENTS) + ["all"],
                        help="which artifacts to regenerate")
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "paper"],
                        help="problem sizes (paper = Table I sizes)")
    parser.add_argument("--stride", type=int, default=5,
                        help="injection-location stride for the sweeps (1 = exhaustive)")
    parser.add_argument("--detector", default=None, choices=("bound",),
                        help="enable the Hessenberg-bound detector in the inner solves "
                             "(omit the flag to disable detection)")
    parser.add_argument("--inner-iterations", type=int, default=25,
                        help="inner GMRES iterations per outer iteration")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel workers for the sweeps (default: REPRO_WORKERS "
                             "or 1; 0 = one per CPU)")
    parser.add_argument("--backend", default=None,
                        choices=["serial", "thread", "process", "batched"],
                        help="campaign execution backend (default: process when "
                             "workers > 1, else serial).  'process' wins when spare "
                             "CPU cores are available; 'batched' advances trials in "
                             "lockstep through shared block kernels and is the right "
                             "choice on single-CPU hosts, where process dispatch is "
                             "pure overhead")
    parser.add_argument("--batch-size", type=int, default=None, dest="batch_size",
                        help="trials advanced in lockstep per batch "
                             "(batched backend only; default 32)")
    return parser


def _print_table1(problems, scale: str) -> None:
    headers, rows = table1_rows(problems, compute_condition=(scale != "paper"))
    print(format_table(headers, rows, title=f"Table I (scale={scale})"))


def _print_fig2(problems) -> None:
    result = figure2_comparison(problems["poisson"].A, problems["circuit"].A, steps=10)
    print("Figure 2 — structure of the projected matrix H")
    print(f"  SPD:          tridiagonal={result['spd']['is_tridiagonal']} "
          f"(bandwidth {result['spd']['bandwidth']})")
    print(f"  nonsymmetric: tridiagonal={result['nonsymmetric']['is_tridiagonal']} "
          f"(bandwidth {result['nonsymmetric']['bandwidth']})")
    print("  SPD pattern:")
    print("    " + result["spd"]["pattern"].replace("\n", "\n    "))
    print("  nonsymmetric pattern:")
    print("    " + result["nonsymmetric"]["pattern"].replace("\n", "\n    "))


def _run_figure(problem, label: str, args) -> None:
    panels = {}
    for position in ("first", "last"):
        panels[position] = run_fault_sweep(
            problem,
            mgs_position=position,
            detector=args.detector,
            inner_iterations=args.inner_iterations,
            max_outer=MAX_OUTER["poisson" if problem.spd else "circuit"],
            stride=args.stride,
            workers=args.workers,
            backend=args.backend,
            batch_size=args.batch_size,
        )
    figure = FigureSweep(problem_name=problem.name, first=panels["first"],
                         last=panels["last"])
    print(f"{label} — single-SDC sweep on {problem.name}")
    print(figure.render())


def _print_summary(problems, args) -> None:
    problem = problems["poisson"]
    campaigns = {}
    for detector in (None, "bound"):
        campaign = FaultCampaign(
            problem, inner_iterations=args.inner_iterations,
            max_outer=MAX_OUTER["poisson"], mgs_position="first",
            detector=detector, detector_response="zero")
        campaigns[detector] = campaign.run(stride=args.stride, workers=args.workers,
                                           backend=args.backend,
                                           batch_size=args.batch_size)
    comparison = detector_comparison(campaigns[None], campaigns["bound"])
    print("Section VII-E summary (Poisson):")
    for key, campaign in (("without detector", campaigns[None]),
                          ("with detector", campaigns["bound"])):
        summary = summarize_campaign(campaign)
        print(f"  {key}: failure-free outer = {summary['failure_free_outer']}, "
              f"worst-case increase = +{summary['worst_case_increase']} "
              f"({summary['worst_case_percent']:.1f}%)")
    print(f"  detector helps or is neutral: {comparison['detector_helps']}")


def run_experiment(name: str, problems, args) -> None:
    """Run one named experiment and print its report."""
    if name == "table1":
        _print_table1(problems, args.scale)
    elif name == "fig2":
        _print_fig2(problems)
    elif name == "fig3":
        _run_figure(problems["poisson"], "Figure 3", args)
    elif name == "fig4":
        _run_figure(problems["circuit"], "Figure 4", args)
    elif name == "summary":
        _print_summary(problems, args)
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    problems = paper_problems(args.scale)
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 78 + "\n")
        run_experiment(name, problems, args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
