"""Figure 2 — structure of the projected matrix H.

The paper's Figure 2 contrasts the nonzero pattern of ``H`` for a
nonsymmetric input (full upper Hessenberg) with that for an SPD input
(tridiagonal).  :func:`hessenberg_structure` runs the Arnoldi process on a
matrix and reports the observed bandwidth and pattern, and
:func:`figure2_comparison` reproduces the side-by-side comparison for the
paper's two problem classes.
"""

from __future__ import annotations

import numpy as np

from repro.core.arnoldi import arnoldi_process
from repro.utils.rng import as_generator

__all__ = ["hessenberg_structure", "figure2_comparison", "figure2_payload",
           "pattern_string"]


def pattern_string(H: np.ndarray, tol_scale: float = 1e-10) -> str:
    """Render the nonzero pattern of a small matrix as the paper draws it.

    Entries with magnitude above ``tol_scale`` times the largest entry are
    drawn as ``x``; the rest as ``0``.
    """
    H = np.asarray(H, dtype=np.float64)
    if H.size == 0:
        return ""
    threshold = tol_scale * max(float(np.abs(H).max()), 1.0)
    lines = []
    for row in H:
        lines.append(" ".join("x" if abs(v) > threshold else "0" for v in row))
    return "\n".join(lines)


def hessenberg_structure(A, steps: int = 8, seed=3, tol_scale: float = 1e-10) -> dict:
    """Run ``steps`` Arnoldi iterations and characterize the structure of H.

    Parameters
    ----------
    A : matrix or operator
        Input matrix.
    steps : int
        Number of Arnoldi steps.
    seed : int or Generator
        Seed for the random start vector.
    tol_scale : float
        Relative threshold for deciding "numerically zero".

    Returns
    -------
    dict
        ``{"H", "bandwidth", "is_tridiagonal", "pattern", "steps"}`` where
        ``bandwidth`` counts nonzero superdiagonals above the main diagonal.
    """
    rng = as_generator(seed)
    n = A.shape[0]
    steps = min(int(steps), n)
    v0 = rng.standard_normal(n)
    Q, H, _ = arnoldi_process(A, v0, steps)
    k = H.shape[1]
    threshold = tol_scale * max(float(np.abs(H).max()), 1.0) if H.size else 0.0
    bandwidth = 0
    for j in range(k):
        nz = np.flatnonzero(np.abs(H[: j + 2, j]) > threshold)
        if nz.size:
            bandwidth = max(bandwidth, j - int(nz.min()))
    return {
        "H": H,
        "steps": k,
        "bandwidth": bandwidth,
        "is_tridiagonal": bandwidth <= 1,
        "pattern": pattern_string(H, tol_scale=tol_scale),
        "orthogonality_error": float(np.abs(Q.T @ Q - np.eye(Q.shape[1])).max()),
    }


def figure2_comparison(spd_matrix, nonsymmetric_matrix, steps: int = 8, seed=3) -> dict:
    """Reproduce the Figure 2 comparison for a pair of matrices.

    Returns a dict with one entry per class (``"spd"``, ``"nonsymmetric"``)
    containing the :func:`hessenberg_structure` report, plus a combined
    ``"consistent_with_paper"`` flag: True when the SPD Hessenberg matrix is
    tridiagonal and the nonsymmetric one is not.
    """
    spd = hessenberg_structure(spd_matrix, steps=steps, seed=seed)
    nonsym = hessenberg_structure(nonsymmetric_matrix, steps=steps, seed=seed)
    return {
        "spd": spd,
        "nonsymmetric": nonsym,
        "consistent_with_paper": bool(spd["is_tridiagonal"] and not nonsym["is_tridiagonal"]),
    }


def figure2_payload(spd_matrix, nonsymmetric_matrix, steps: int = 8, seed=3) -> dict:
    """The JSON-persistable subset of :func:`figure2_comparison`.

    What the runner stores as a :meth:`~repro.results.store.RunStore.save_artifact`
    payload and reprints under ``--from-store``: the reported fields only
    (the raw ``H`` matrices are not needed to regenerate the report).
    """
    full = figure2_comparison(spd_matrix, nonsymmetric_matrix, steps=steps,
                              seed=seed)
    return {cls: {key: full[cls][key]
                  for key in ("is_tridiagonal", "bandwidth", "pattern")}
            for cls in ("spd", "nonsymmetric")}
