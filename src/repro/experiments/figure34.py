"""Figures 3 and 4 — single-SDC injection sweeps over the nested solver.

Each figure of the paper is a set of three panels (one per fault class)
showing the number of outer iterations FT-GMRES needs to converge when a
single SDC event is injected at every possible aggregate inner iteration:

* Figure 3: the Poisson (SPD) problem; (a) fault on the first MGS iteration,
  (b) fault on the last MGS iteration.
* Figure 4: the circuit (nonsymmetric) problem; same two panels.

:func:`run_fault_sweep` produces one panel set (one
:class:`~repro.faults.campaign.CampaignResult`); :class:`FigureSweep` bundles
the "first" and "last" campaigns of a figure together with rendering helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import run_campaign
from repro.core.detectors import Detector
from repro.experiments.report import (ascii_series_plot, campaign_class_table,
                                      format_table)
from repro.faults.campaign import CampaignResult
from repro.faults.models import FaultModel
from repro.gallery.problems import TestProblem, circuit_problem, poisson_problem
from repro.specs import CampaignSpec

__all__ = ["run_fault_sweep", "load_fault_sweep", "sweep_run_id", "FigureSweep",
           "figure3", "figure4"]


def run_fault_sweep(
    problem: TestProblem,
    spec: CampaignSpec | dict | None = None,
    *,
    mgs_position: str | None = None,
    detector: Detector | str | dict | None = None,
    detector_response: str | None = None,
    fault_classes: dict[str, FaultModel] | str | None = None,
    inner_iterations: int | None = None,
    max_outer: int | None = None,
    outer_tol: float | None = None,
    stride: int | None = None,
    locations=None,
    progress=None,
    backend: str | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
    batch_size: int | None = None,
    sink=None,
    store=None,
    run_id: str | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Run one injection sweep (one sub-figure of Figure 3 or 4).

    The sweep is a :class:`~repro.specs.CampaignSpec` run through
    :func:`repro.api.run_campaign`; pass ``spec`` directly, or use the
    keyword arguments (which mirror :class:`~repro.faults.campaign.FaultCampaign`,
    defaults from the CampaignSpec field defaults; ``stride=1`` is the
    paper's exhaustive sweep).  Keywords override ``spec`` fields when both
    are given.  ``backend``/``workers``/``chunksize``/``batch_size``
    configure the execution engine (see :class:`repro.exec.CampaignExecutor`);
    results are equivalent to a serial run for any setting (identical for
    the parallel backends, identical counts/statuses with residuals to
    ~1e-10 for the trial-batched backend).

    ``sink``/``store``/``run_id``/``resume`` are forwarded to
    :func:`repro.api.run_campaign`: the sweep streams lifecycle events to the
    sink, checkpoints each trial into the store, and resumes an interrupted
    sweep from it; :func:`load_fault_sweep` rebuilds a completed sweep with
    zero new solves.
    """
    spec = CampaignSpec.coerce(spec)
    if spec.problem is not None:
        from repro.specs import SpecError

        raise SpecError("problem",
                        "run_fault_sweep received both a problem argument and "
                        "spec.problem; drop spec.problem (or use "
                        "repro.api.run_campaign, which takes either)")
    fields = {
        "mgs_position": mgs_position,
        "detector": detector,
        "detector_response": detector_response,
        "fault_classes": fault_classes,
        "inner_iterations": inner_iterations,
        "max_outer": max_outer,
        "outer_tol": outer_tol,
        "stride": stride,
        "locations": tuple(locations) if locations is not None else None,
    }
    overrides = {key: value for key, value in fields.items() if value is not None}
    exec_fields = {"backend": backend, "workers": workers,
                   "chunksize": chunksize, "batch_size": batch_size}
    exec_overrides = {key: value for key, value in exec_fields.items()
                      if value is not None}
    if exec_overrides:
        overrides["exec"] = spec.exec.replace(**exec_overrides)
    if overrides:
        spec = spec.replace(**overrides)
    return run_campaign(problem, spec, progress=progress, sink=sink,
                        store=store, run_id=run_id, resume=resume)


def sweep_run_id(spec: "CampaignSpec", problem_name: str, label: str) -> str:
    """The deterministic store id of one sweep: ``<label>-<fingerprint8>``.

    Deterministic in (spec, problem), so rerunning the same configuration
    resumes (or regenerates from) its own store entry, and a changed
    configuration lands in a fresh one instead of colliding.  Execution
    knobs are excluded from the fingerprint (see
    :func:`~repro.results.store.campaign_fingerprint`): a sweep run with
    ``--workers 4`` and its serial resume share one store entry.
    """
    from repro.results.store import campaign_fingerprint

    return f"{label}-{campaign_fingerprint(spec, problem_name)[:8]}"


def load_fault_sweep(store, spec: "CampaignSpec", problem_name: str,
                     label: str) -> CampaignResult:
    """Rebuild one stored sweep — zero new solves.

    The run is located by its deterministic :func:`sweep_run_id`; a missing
    or incomplete run raises :class:`~repro.results.store.RunStoreError`
    telling the user to run (or resume) with the store first.
    """
    from repro.results.store import RunStore

    return RunStore.coerce(store).load_result(
        sweep_run_id(spec, problem_name, label))


@dataclass
class FigureSweep:
    """A complete figure: sweeps for both MGS positions on one problem."""

    problem_name: str
    first: CampaignResult
    last: CampaignResult
    metadata: dict = field(default_factory=dict)

    def panels(self) -> dict[str, CampaignResult]:
        """The two sub-figures keyed by MGS position."""
        return {"first": self.first, "last": self.last}

    def render(self, width: int = 64, height: int = 10) -> str:
        """Render all panels as ASCII plots plus a summary table."""
        chunks = []
        for position, campaign in self.panels().items():
            chunks.append(
                f"=== {self.problem_name}: SDC on the {position} MGS iteration "
                f"(failure-free outer iterations = {campaign.failure_free_outer}) ==="
            )
            for fault_class in campaign.fault_classes():
                x, y = campaign.series(fault_class)
                description = next(
                    (t.fault_description for t in campaign.trials
                     if t.fault_class == fault_class), fault_class)
                chunks.append(ascii_series_plot(
                    x, y, width=width, height=height,
                    title=f"fault class: {fault_class} ({description})",
                    xlabel="aggregate inner solve iteration that faults",
                    ylabel="outer iterations",
                ))
            chunks.append(format_table(*campaign_class_table(campaign)))
        return "\n\n".join(chunks)


def _figure(problem: TestProblem, **kwargs) -> FigureSweep:
    first = run_fault_sweep(problem, mgs_position="first", **kwargs)
    last = run_fault_sweep(problem, mgs_position="last", **kwargs)
    return FigureSweep(problem_name=problem.name, first=first, last=last,
                       metadata={"options": dict(kwargs)})


def figure3(grid_n: int = 100, stride: int = 1, detector=None, **kwargs) -> FigureSweep:
    """Reproduce Figure 3 (Poisson / SPD problem).

    Parameters
    ----------
    grid_n : int
        Poisson grid size per side (100 reproduces the paper's 10,000-row
        matrix; smaller values give the fast configurations).
    stride : int
        Injection-location subsampling (1 = exhaustive, as in the paper).
    detector : {"bound", None} or Detector
        Detector configuration for the inner solves.
    **kwargs
        Forwarded to :func:`run_fault_sweep`.
    """
    problem = poisson_problem(grid_n)
    return _figure(problem, stride=stride, detector=detector, **kwargs)


def figure4(n_nodes: int = 25187, stride: int = 1, detector=None, **kwargs) -> FigureSweep:
    """Reproduce Figure 4 (circuit / nonsymmetric ill-conditioned problem).

    Parameters
    ----------
    n_nodes : int
        Circuit-surrogate dimension (25187 matches the real matrix's size).
    stride : int
        Injection-location subsampling.
    detector : {"bound", None} or Detector
        Detector configuration for the inner solves.
    **kwargs
        Forwarded to :func:`run_fault_sweep`.
    """
    problem = circuit_problem(n_nodes)
    return _figure(problem, stride=stride, detector=detector, **kwargs)
