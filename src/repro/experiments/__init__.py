"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to one artifact of the paper's evaluation section
(see DESIGN.md's experiment index):

* :mod:`repro.experiments.table1`   — Table I, sample-matrix properties;
* :mod:`repro.experiments.figure2`  — Figure 2, Hessenberg vs tridiagonal
  structure of the projected matrix;
* :mod:`repro.experiments.figure34` — Figures 3 and 4, the single-SDC
  injection sweeps;
* :mod:`repro.experiments.summary`  — the Section VII-E summary statistics
  (worst-case increase in time-to-solution with and without the detector);
* :mod:`repro.experiments.report`   — plain-text tables and ASCII series
  plots used by the examples and benchmark output.
"""

from repro.experiments.report import format_table, ascii_series_plot, format_markdown_table
from repro.experiments.table1 import matrix_properties, table1_rows, PAPER_TABLE1
from repro.experiments.figure2 import hessenberg_structure, figure2_comparison
from repro.experiments.figure34 import FigureSweep, run_fault_sweep, figure3, figure4
from repro.experiments.summary import detector_comparison, summarize_campaign

__all__ = [
    "format_table",
    "ascii_series_plot",
    "format_markdown_table",
    "matrix_properties",
    "table1_rows",
    "PAPER_TABLE1",
    "hessenberg_structure",
    "figure2_comparison",
    "FigureSweep",
    "run_fault_sweep",
    "figure3",
    "figure4",
    "detector_comparison",
    "summarize_campaign",
]
