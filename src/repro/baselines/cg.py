"""Conjugate Gradient (CG) for symmetric positive-definite systems.

The paper's Table I notes that the Poisson problem "could be solved using the
Conjugate Gradient method" while the circuit problem could not.  CG is
included as that baseline, with the same operator abstraction, optional
preconditioning, and event logging as the GMRES family, so the example
scripts can compare iteration counts directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.status import ConvergenceHistory, SolverResult, SolverStatus
from repro.sparse.linear_operator import aslinearoperator
from repro.utils.events import EventLog
from repro.utils.validation import as_dense_vector, check_square

__all__ = ["cg"]


def cg(
    A,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    maxiter: int | None = None,
    preconditioner=None,
    events: EventLog | None = None,
) -> SolverResult:
    """Solve ``A x = b`` with (preconditioned) Conjugate Gradient.

    Parameters
    ----------
    A : matrix or operator
        Symmetric positive-definite operator.  Symmetry is not verified (it
        would cost more than the solve); using CG on a nonsymmetric matrix
        typically stagnates or diverges, which the example scripts
        demonstrate deliberately.
    b : array_like
        Right-hand side.
    x0 : array_like, optional
        Initial guess.
    tol : float
        Relative tolerance on ``||b - A x|| / ||b||``.
    maxiter : int, optional
        Iteration budget (default ``n``).
    preconditioner : Preconditioner, callable, matrix, or None
        SPD preconditioner ``M^{-1}``.
    events : EventLog, optional
        Event sink.

    Returns
    -------
    SolverResult
    """
    op = aslinearoperator(A)
    n = check_square(op.shape, "A")
    b = as_dense_vector(b, n, "b")
    x = as_dense_vector(x0, n, "x0") if x0 is not None else np.zeros(n, dtype=np.float64)
    if maxiter is None:
        maxiter = n
    if maxiter <= 0:
        raise ValueError(f"maxiter must be positive, got {maxiter}")

    if preconditioner is None:
        apply_m = None
    elif callable(preconditioner) and not hasattr(preconditioner, "apply"):
        apply_m = preconditioner
    elif hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = aslinearoperator(preconditioner).matvec

    events = EventLog.ensure(events)
    history = ConvergenceHistory()

    norm_b = float(np.linalg.norm(b))
    target = tol * norm_b if norm_b > 0.0 else tol

    r = b - op.matvec(x)
    matvecs = 1
    residual_norm = float(np.linalg.norm(r))
    history.append(residual_norm)
    if residual_norm <= target:
        return SolverResult(x, SolverStatus.CONVERGED, 0, residual_norm, history, events, matvecs)

    z = apply_m(r) if apply_m is not None else r
    p = z.copy()
    rz = float(np.dot(r, z))
    status = SolverStatus.MAX_ITERATIONS
    iterations = 0

    for k in range(maxiter):
        Ap = op.matvec(p)
        matvecs += 1
        pAp = float(np.dot(p, Ap))
        if pAp == 0.0 or not np.isfinite(pAp):
            events.record("breakdown", where="cg", inner_iteration=k, value=pAp)
            status = SolverStatus.STAGNATED
            break
        alpha = rz / pAp
        x = x + alpha * p
        r = r - alpha * Ap
        iterations = k + 1
        residual_norm = float(np.linalg.norm(r))
        history.append(residual_norm)
        if residual_norm <= target:
            status = SolverStatus.CONVERGED
            break
        z = apply_m(r) if apply_m is not None else r
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz if rz != 0.0 else 0.0
        p = z + beta * p
        rz = rz_new

    return SolverResult(x, status, iterations, residual_norm, history, events, matvecs)
