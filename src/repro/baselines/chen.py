"""A checkpoint/rollback fault-tolerance baseline in the spirit of Online-ABFT.

Chen's Online-ABFT (reference [18] of the paper) detects soft errors in
Krylov solvers by periodically verifying solver invariants with extra
computation and communication, and rolls the solver back to the last
checkpoint when a violation is found.  The paper positions its own detector
against this style of scheme: the Hessenberg bound needs no extra reduction
and no checkpointed state.

:func:`gmres_with_rollback` implements the baseline for comparison:

* every ``check_interval`` iterations the solver reliably computes the true
  residual ``||b - A x_k||`` and compares it with the (cheap) Givens
  estimate;
* a relative mismatch larger than ``invariant_tol`` counts as a detected
  fault: the solver discards the current Krylov cycle and restarts from the
  last verified iterate (the rollback);
* the number of verifications, detections, rollbacks, and extra matrix-vector
  products is reported so the overhead can be compared with the in-band
  Hessenberg-bound check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gmres import gmres
from repro.core.status import SolverResult, SolverStatus
from repro.sparse.linear_operator import aslinearoperator
from repro.utils.events import EventLog
from repro.utils.validation import as_dense_vector, check_square

__all__ = ["RollbackResult", "gmres_with_rollback"]


@dataclass
class RollbackResult:
    """Outcome of a rollback-protected solve.

    Attributes
    ----------
    result : SolverResult
        The final solver state (solution, status, residual).
    verifications : int
        Number of reliable invariant checks performed.
    detections : int
        Number of checks that flagged a violation.
    rollbacks : int
        Number of times the solver rolled back to a checkpoint.
    extra_matvecs : int
        Operator applications spent purely on verification.
    """

    result: SolverResult
    verifications: int
    detections: int
    rollbacks: int
    extra_matvecs: int

    @property
    def x(self) -> np.ndarray:
        """The final iterate."""
        return self.result.x

    @property
    def converged(self) -> bool:
        """Whether the protected solve converged."""
        return self.result.converged


def gmres_with_rollback(
    A,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    maxiter: int = 1000,
    check_interval: int = 10,
    invariant_tol: float = 1e-6,
    max_rollbacks: int = 10,
    injector=None,
    events: EventLog | None = None,
    **gmres_options,
) -> RollbackResult:
    """GMRES protected by periodic residual verification and rollback.

    Parameters
    ----------
    A, b, x0 : as in :func:`repro.core.gmres.gmres`.
    tol : float
        Relative convergence tolerance.
    maxiter : int
        Total iteration budget across all segments and retries.
    check_interval : int
        Number of GMRES iterations between reliable verifications; each
        verified segment becomes a checkpoint.
    invariant_tol : float
        Maximum tolerated relative mismatch between the solver's internal
        residual estimate and the reliably recomputed residual.
    max_rollbacks : int
        Give up (status ``FAULT_DETECTED``) after this many rollbacks.
    injector : FaultInjector, optional
        Fault injector threaded through to the underlying GMRES segments.
    events : EventLog, optional
        Event sink.
    **gmres_options
        Forwarded to :func:`repro.core.gmres.gmres` (orthogonalization,
        least-squares policy, preconditioner, ...).

    Returns
    -------
    RollbackResult
    """
    if check_interval <= 0:
        raise ValueError(f"check_interval must be positive, got {check_interval}")
    op = aslinearoperator(A)
    n = check_square(op.shape, "A")
    b = as_dense_vector(b, n, "b")
    x_checkpoint = as_dense_vector(x0, n, "x0") if x0 is not None else np.zeros(n)

    events = EventLog.ensure(events)
    norm_b = float(np.linalg.norm(b))
    target = tol * norm_b if norm_b > 0.0 else tol

    verifications = 0
    detections = 0
    rollbacks = 0
    extra_matvecs = 0
    iterations_used = 0
    last_result: SolverResult | None = None

    while iterations_used < maxiter:
        budget = min(check_interval, maxiter - iterations_used)
        segment = gmres(
            A, b, x_checkpoint,
            tol=tol, maxiter=budget, restart=budget,
            injector=injector, events=events, **gmres_options,
        )
        iterations_used += max(segment.iterations, 1)
        last_result = segment

        # Reliable verification: recompute the true residual and compare it
        # with the solver's *internal* (Givens) residual estimate — the
        # quantity a fault in the projected problem corrupts.  The mismatch is
        # normalized by ||b|| so a converged segment (both values tiny) does
        # not trigger a spurious rollback.
        true_residual = float(np.linalg.norm(b - op.matvec(segment.x)))
        extra_matvecs += 1
        verifications += 1
        reported = float(segment.history.final)
        mismatch = abs(true_residual - reported) / max(norm_b, 1e-300)
        invariant_ok = np.isfinite(true_residual) and mismatch <= invariant_tol

        if not invariant_ok:
            detections += 1
            events.record("rollback_detection", where="chen_verify",
                          inner_iteration=iterations_used,
                          true_residual=true_residual, reported=reported, mismatch=mismatch)
            rollbacks += 1
            if rollbacks > max_rollbacks:
                final = SolverResult(
                    x=x_checkpoint,
                    status=SolverStatus.FAULT_DETECTED,
                    iterations=iterations_used,
                    residual_norm=float(np.linalg.norm(b - op.matvec(x_checkpoint))),
                    history=segment.history,
                    events=events,
                    matvecs=segment.matvecs,
                )
                return RollbackResult(final, verifications, detections, rollbacks, extra_matvecs)
            # Roll back: discard the segment, resume from the checkpoint.
            continue

        # Verified: promote the segment result to the new checkpoint.
        x_checkpoint = segment.x
        if true_residual <= target:
            final = SolverResult(
                x=x_checkpoint,
                status=SolverStatus.CONVERGED,
                iterations=iterations_used,
                residual_norm=true_residual,
                history=segment.history,
                events=events,
                matvecs=segment.matvecs,
            )
            return RollbackResult(final, verifications, detections, rollbacks, extra_matvecs)

    final_residual = float(np.linalg.norm(b - op.matvec(x_checkpoint)))
    final = SolverResult(
        x=x_checkpoint,
        status=SolverStatus.MAX_ITERATIONS if last_result is None else last_result.status,
        iterations=iterations_used,
        residual_norm=final_residual,
        history=last_result.history if last_result is not None else None,
        events=events,
        matvecs=last_result.matvecs if last_result is not None else 0,
    )
    if final.history is None:
        from repro.core.status import ConvergenceHistory

        final.history = ConvergenceHistory()
    if final_residual <= target:
        final.status = SolverStatus.CONVERGED
    return RollbackResult(final, verifications, detections, rollbacks, extra_matvecs)
