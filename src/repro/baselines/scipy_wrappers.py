"""Cross-validation wrappers around SciPy's Krylov solvers.

Used by the test suite (and available to users) to confirm that our GMRES
implementation produces solutions of the same quality as a mature reference
implementation on the same problems.
"""

from __future__ import annotations

import numpy as np

from repro.core.status import ConvergenceHistory, SolverResult, SolverStatus
from repro.sparse.csr import CSRMatrix
from repro.utils.events import EventLog

__all__ = ["scipy_gmres"]


def scipy_gmres(A, b, x0=None, *, tol: float = 1e-8, maxiter: int | None = None,
                restart: int | None = None) -> SolverResult:
    """Solve ``A x = b`` with ``scipy.sparse.linalg.gmres``.

    Parameters mirror :func:`repro.core.gmres.gmres` where applicable.  The
    result is converted into our :class:`SolverResult` (without a per-
    iteration history, which SciPy does not expose directly — the callback
    residuals are collected instead).
    """
    import scipy.sparse.linalg as spla

    mat = A.to_scipy() if isinstance(A, CSRMatrix) else A
    b = np.asarray(b, dtype=np.float64).ravel()
    history = ConvergenceHistory()

    def callback(res):
        history.append(float(res))

    x, info = spla.gmres(
        mat, b, x0=x0, rtol=tol, atol=0.0, maxiter=maxiter, restart=restart,
        callback=callback, callback_type="pr_norm",
    )
    residual = float(np.linalg.norm(b - mat @ x))
    status = SolverStatus.CONVERGED if info == 0 else SolverStatus.MAX_ITERATIONS
    iterations = len(history)
    return SolverResult(
        x=np.asarray(x, dtype=np.float64),
        status=status,
        iterations=iterations,
        residual_norm=residual,
        history=history,
        events=EventLog(),
        matvecs=iterations,
    )
