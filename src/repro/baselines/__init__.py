"""Baseline solvers and detection schemes the paper compares against.

* :func:`repro.baselines.cg.cg` — Conjugate Gradient, the solver the paper
  notes could be used for the SPD Poisson problem (and cannot be used for
  the nonsymmetric circuit problem).
* :func:`repro.baselines.chen.gmres_with_rollback` — a checkpoint/rollback
  scheme in the spirit of Chen's Online-ABFT (reference [18] of the paper):
  it periodically verifies the solver's residual invariant with an extra
  reliable residual computation and rolls back to the last verified state
  when the invariant is violated.  This is the "detect, then roll back"
  approach the paper contrasts with its "run through" philosophy.
* :func:`repro.baselines.scipy_wrappers.scipy_gmres` — a thin wrapper around
  ``scipy.sparse.linalg.gmres`` used by the test suite to cross-validate our
  GMRES implementation.
"""

from repro.baselines.cg import cg
from repro.baselines.chen import gmres_with_rollback, RollbackResult
from repro.baselines.scipy_wrappers import scipy_gmres

__all__ = ["cg", "gmres_with_rollback", "RollbackResult", "scipy_gmres"]
