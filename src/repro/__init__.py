"""repro — reproduction of "Evaluating the Impact of SDC on the GMRES Iterative Solver".

The library rebuilds, in pure Python/NumPy, the systems behind Elliott,
Hoemmen and Mueller's IPDPS 2014 study of silent data corruption (SDC) in
GMRES:

* a sparse-matrix substrate and matrix gallery (:mod:`repro.sparse`,
  :mod:`repro.gallery`);
* GMRES / Flexible GMRES / FT-GMRES with the Hessenberg-bound SDC detector
  and the robust projected least-squares policies (:mod:`repro.core`);
* a fault-injection framework implementing the paper's single-transient-SDC
  methodology and its generalizations (:mod:`repro.faults`);
* a parallel campaign execution engine with serial/thread/process backends
  and deterministic result ordering (:mod:`repro.exec`);
* experiment drivers that regenerate every table and figure of the paper's
  evaluation (:mod:`repro.experiments`);
* a config-first public API: typed JSON-round-trippable specs
  (:mod:`repro.specs`), component registries (:mod:`repro.registry`), and the
  ``solve``/``run_campaign``/``iter_trials`` facades (:mod:`repro.api`);
* a streaming results subsystem (:mod:`repro.results`): a unified structured
  event bus, a persistent run store with checkpoint/resume at trial
  granularity, and a filter/group/aggregate query API over stored runs.

Quickstart
----------
>>> from repro import poisson_problem, ft_gmres
>>> problem = poisson_problem(grid_n=10)          # 100-row Poisson system
>>> result = ft_gmres(problem.A, problem.b, inner_iterations=10, max_outer=30)
>>> bool(result.converged)
True
"""

from repro.core import (
    gmres,
    fgmres,
    ft_gmres,
    GMRESParameters,
    FGMRESParameters,
    FTGMRESParameters,
    SolverStatus,
    SolverResult,
    NestedSolverResult,
    HessenbergBoundDetector,
    NonFiniteDetector,
    CompositeDetector,
    LeastSquaresPolicy,
)
from repro.baselines import cg
from repro.gallery import (
    poisson1d,
    poisson2d,
    poisson3d,
    convection_diffusion_2d,
    mult_dcop_surrogate,
    poisson_problem,
    circuit_problem,
    paper_problems,
    TestProblem,
)
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    LinearOperator,
    aslinearoperator,
    frobenius_norm,
    two_norm_estimate,
    hessenberg_bound,
)
from repro.faults import (
    FaultInjector,
    InjectionSchedule,
    ScalingFault,
    BitFlipFault,
    PAPER_FAULT_CLASSES,
    Sandbox,
    FaultCampaign,
    sweep_injection_locations,
)
from repro.exec import CampaignExecutor, ProblemFactory, TrialSpec
from repro.precond import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    ILU0Preconditioner,
    SSORPreconditioner,
)
from repro import api, registry, results, specs
from repro.api import solve, run_campaign, iter_trials, serve
from repro.results import (
    Event,
    EventSink,
    RunStore,
    RunStoreError,
    TrialQuery,
)
from repro.specs import (SolveSpec, ExecutionSpec, CampaignSpec, ServiceSpec,
                         SpecError, spec_hash)

__version__ = "1.1.0"

__all__ = [
    # core solvers
    "gmres",
    "fgmres",
    "ft_gmres",
    "cg",
    "GMRESParameters",
    "FGMRESParameters",
    "FTGMRESParameters",
    "SolverStatus",
    "SolverResult",
    "NestedSolverResult",
    "LeastSquaresPolicy",
    # detection
    "HessenbergBoundDetector",
    "NonFiniteDetector",
    "CompositeDetector",
    # matrices and problems
    "COOMatrix",
    "CSRMatrix",
    "LinearOperator",
    "aslinearoperator",
    "frobenius_norm",
    "two_norm_estimate",
    "hessenberg_bound",
    "poisson1d",
    "poisson2d",
    "poisson3d",
    "convection_diffusion_2d",
    "mult_dcop_surrogate",
    "poisson_problem",
    "circuit_problem",
    "paper_problems",
    "TestProblem",
    # preconditioners
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "ILU0Preconditioner",
    "SSORPreconditioner",
    # fault injection
    "FaultInjector",
    "InjectionSchedule",
    "ScalingFault",
    "BitFlipFault",
    "PAPER_FAULT_CLASSES",
    "Sandbox",
    "FaultCampaign",
    "sweep_injection_locations",
    # parallel execution engine
    "CampaignExecutor",
    "ProblemFactory",
    "TrialSpec",
    # config-first public API
    "api",
    "registry",
    "specs",
    "solve",
    "run_campaign",
    "SolveSpec",
    "ExecutionSpec",
    "CampaignSpec",
    "ServiceSpec",
    "SpecError",
    "spec_hash",
    "serve",
    # streaming results subsystem
    "results",
    "iter_trials",
    "Event",
    "EventSink",
    "RunStore",
    "RunStoreError",
    "TrialQuery",
    "__version__",
]
