"""Jacobi (diagonal) and block-Jacobi preconditioners."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix

__all__ = ["JacobiPreconditioner", "BlockJacobiPreconditioner"]


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling: ``M^{-1} r = r / diag(A)``.

    Zero diagonal entries are replaced by 1 so the preconditioner is always
    well defined (the corresponding unknowns are simply left unscaled).
    """

    def __init__(self, A: CSRMatrix):
        self.shape = A.shape
        diag = A.diagonal().astype(np.float64)
        diag = np.where(diag == 0.0, 1.0, diag)
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        return self._inv_diag * r

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        R = self._coerce_block(R)
        return self._inv_diag[:, None] * R


class BlockJacobiPreconditioner(Preconditioner):
    """Block-diagonal preconditioner with contiguous blocks.

    The matrix is partitioned into ``ceil(n / block_size)`` contiguous
    diagonal blocks; each block is extracted densely, LU-factorized once at
    construction, and applied with dense triangular solves.  Singular blocks
    fall back to the pseudo-inverse so construction never fails.
    """

    def __init__(self, A: CSRMatrix, block_size: int = 32):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.shape = A.shape
        self.block_size = int(block_size)
        n = self.n
        self._slices: list[slice] = []
        self._factors: list[tuple] = []
        import scipy.linalg as sla

        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            blk = self._extract_block(A, start, stop)
            try:
                lu, piv = sla.lu_factor(blk)
                self._factors.append(("lu", (lu, piv)))
            except Exception:
                self._factors.append(("pinv", np.linalg.pinv(blk)))
            self._slices.append(slice(start, stop))

    @staticmethod
    def _extract_block(A: CSRMatrix, start: int, stop: int) -> np.ndarray:
        size = stop - start
        blk = np.zeros((size, size), dtype=np.float64)
        for i in range(start, stop):
            cols, vals = A.row(i)
            mask = (cols >= start) & (cols < stop)
            blk[i - start, cols[mask] - start] += vals[mask]
        # Guard against an all-zero diagonal block.
        zero_rows = ~np.any(blk != 0.0, axis=1)
        blk[zero_rows, zero_rows] = 1.0
        return blk

    def apply(self, r: np.ndarray) -> np.ndarray:
        import scipy.linalg as sla

        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        out = np.empty_like(r)
        for sl, (kind, payload) in zip(self._slices, self._factors):
            if kind == "lu":
                out[sl] = sla.lu_solve(payload, r[sl])
            else:
                out[sl] = payload @ r[sl]
        return out
