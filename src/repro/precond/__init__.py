"""Preconditioners.

In the paper the *inner GMRES solve itself* is the preconditioner of the
outer FGMRES iteration (an inner–outer scheme).  The classic stationary
preconditioners collected here serve two purposes in this reproduction:

1. they can precondition the inner GMRES solves (every class below exposes
   ``apply`` and can be passed to :func:`repro.core.gmres.gmres`), and
2. they are baselines for the ablation benchmarks (e.g. "how does a Jacobi
   preconditioned single-level GMRES behave under the same SDC?").
"""

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.jacobi import JacobiPreconditioner, BlockJacobiPreconditioner
from repro.precond.ssor import GaussSeidelPreconditioner, SSORPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.polynomial import NeumannPolynomialPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "GaussSeidelPreconditioner",
    "SSORPreconditioner",
    "ILU0Preconditioner",
    "NeumannPolynomialPreconditioner",
]
