"""Neumann-series polynomial preconditioner.

Approximates ``A^{-1}`` by the truncated Neumann series of the Jacobi-scaled
matrix:

    M^{-1} = (I + N + N^2 + ... + N^degree) D^{-1},   N = I - D^{-1} A.

Entirely made of SpMVs and vector updates, so it shares GMRES's performance
profile and is a natural "unreliable inner operator" for the sandbox
experiments (its application is pure floating-point data flow).
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix

__all__ = ["NeumannPolynomialPreconditioner"]


class NeumannPolynomialPreconditioner(Preconditioner):
    """Truncated Neumann-series preconditioner of a given degree.

    Parameters
    ----------
    A : CSRMatrix
        Matrix to precondition.
    degree : int
        Number of Neumann terms beyond the identity (``degree=0`` reduces to
        Jacobi).  The series only converges when the Jacobi iteration matrix
        has spectral radius below one (e.g. diagonally dominant matrices);
        for other matrices the preconditioner is still a valid linear
        operator, just a weaker one.
    """

    def __init__(self, A: CSRMatrix, degree: int = 2):
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        self.shape = A.shape
        self.A = A
        self.degree = int(degree)
        diag = A.diagonal()
        diag = np.where(diag == 0.0, 1.0, diag)
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        # z_0 = D^{-1} r;  z_{k+1} = z_k + N z_k with N = I - D^{-1} A
        z = self._inv_diag * r
        if self.degree == 0:
            return z
        term = z.copy()
        for _ in range(self.degree):
            # Allocation-free update: the SpMV result doubles as scratch, so
            # the loop performs no temporaries beyond it (same floating-point
            # operations as the expression form, asserted in the tests).
            Av = self.A.matvec(term)
            np.multiply(Av, self._inv_diag, out=Av)
            np.subtract(term, Av, out=term)
            np.add(z, term, out=z)
        return z

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Block Neumann application: the same recurrence on ``(n, B)`` slabs.

        Every step is the multi-RHS twin of the vector kernel (``matmat``
        instead of ``matvec``, broadcast diagonal scaling), so each column is
        bit-identical to ``apply`` on that column.
        """
        R = self._coerce_block(R)
        inv_diag = self._inv_diag[:, None]
        Z = inv_diag * R
        if self.degree == 0:
            return Z
        term = Z.copy()
        for _ in range(self.degree):
            AV = self.A.matmat(term)
            np.multiply(AV, inv_diag, out=AV)
            np.subtract(term, AV, out=term)
            np.add(Z, term, out=Z)
        return Z
