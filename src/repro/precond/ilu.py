"""ILU(0): incomplete LU factorization with zero fill-in.

The factorization keeps exactly the sparsity pattern of ``A`` (the classic
IKJ variant of Saad, *Iterative Methods for Sparse Linear Systems*, Alg.
10.4).  It is the strongest of the bundled preconditioners for the
convection–diffusion and circuit problems and is exercised by the ablation
benchmarks.

Performance architecture: the IKJ elimination keeps only the outer row loop
and the inherently sequential k-loop in Python — the row-k update is one
vectorized scatter through a precomputed column→position map — and the
factors are handed to :class:`~repro.sparse.trisolve.TriangularFactor`
(unit-lower L, upper U with pivots) so every ``apply`` is a pair of
level-scheduled substitutions instead of two row-by-row Python sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.trisolve import TriangularFactor, split_triangle

__all__ = ["ILU0Preconditioner"]


def _sum_duplicates(A: CSRMatrix) -> CSRMatrix:
    """Collapse duplicate ``(row, col)`` entries (summed) if any exist.

    Rows are sorted (validated CSR invariant), so duplicates are adjacent.
    """
    if A.nnz and bool(np.any((A.indices[1:] == A.indices[:-1])
                             & (A.row_ids[1:] == A.row_ids[:-1]))):
        return A.tocoo().tocsr()
    return A


class ILU0Preconditioner(Preconditioner):
    """Incomplete LU with zero fill on the pattern of ``A``.

    Parameters
    ----------
    A : CSRMatrix
        The matrix to factor.  Rows must contain their diagonal entry; a
        missing or zero pivot is replaced by a small multiple of the largest
        row magnitude so factorization always completes (standard shifted
        ILU practice).
    trisolve_mode : {"auto", "level", "sequential"}
        Solve path of the triangular engine (the paths are bit-identical;
        "auto" picks by level-schedule shape).
    """

    def __init__(self, A: CSRMatrix, trisolve_mode: str = "auto"):
        self.shape = A.shape
        n = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"ILU(0) requires a square matrix, got {A.shape}")
        # Duplicate (i, j) entries are legal CSR input (reductions sum them)
        # but the elimination below needs one stored slot per pattern entry,
        # so collapse duplicates into canonical summed form first.
        self._engine = getattr(A, "engine", None)
        A = _sum_duplicates(A)
        # Work on a copy of the CSR data; the pattern never changes.
        self.indptr = A.indptr.copy()
        self.indices = A.indices.copy()
        self.data = A.data.copy()
        self._diag_ptr = np.full(n, -1, dtype=np.int64)
        # The cached entry->row expansion of A is shared by the
        # factorization's structure passes and both triangle splits below.
        row_ids = A.row_ids
        self._factorize(n, row_ids)
        self._build_factors(n, trisolve_mode, row_ids)

    def _factorize(self, n: int, row_ids: np.ndarray) -> None:
        indptr, indices = self.indptr, self.indices
        nnz = int(indptr[-1])
        # Per-row structure, precomputed in single vectorized passes instead
        # of per-row searches inside the elimination loop:
        #   * diagonal positions (first stored hit per row, matching the
        #     row-scan order of the scalar formulation),
        #   * strictly-lower entry counts (the k-loop extent of each row),
        #   * first strictly-upper position of each row (the row-k update
        #     source range),
        #   * row magnitude maxima for the surrogate-pivot shift (row i's
        #     values are untouched until its own elimination step, so the
        #     maxima may be taken from the original data up front).
        on_diag = np.flatnonzero(indices == row_ids)
        self._diag_ptr[row_ids[on_diag][::-1]] = on_diag[::-1]
        lower_counts = np.bincount(row_ids[indices < row_ids], minlength=n)
        upper_starts = indptr[:-1] + np.bincount(row_ids[indices <= row_ids], minlength=n)
        row_max = np.ones(n, dtype=np.float64)
        nonempty = np.diff(indptr) > 0
        if nnz:
            row_max[nonempty] = np.maximum.reduceat(np.abs(self.data),
                                                    indptr[:-1][nonempty])
        # The factor data lives in a buffer with one trailing scratch slot:
        # the column->position map sends columns absent from the current row
        # there, so the row-k update scatters unconditionally (no per-k
        # membership masks) and pattern misses land harmlessly in the slot.
        data = np.empty(nnz + 1, dtype=np.float64)
        data[:nnz] = self.data
        data[nnz] = 0.0  # the slot is read by the gather before being written
        colpos = np.full(n, nnz, dtype=np.int64)
        diag_ptr = self._diag_ptr
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            row_cols = indices[start:stop]
            colpos[row_cols] = np.arange(start, stop)
            rmax = row_max[i]
            for kpos in range(start, start + lower_counts[i]):
                k = indices[kpos]
                dk_ptr = diag_ptr[k]
                pivot = data[dk_ptr] if dk_ptr >= 0 else 0.0
                if pivot == 0.0:
                    pivot = 1e-12 * max(rmax, 1.0)
                factor = data[kpos] / pivot
                data[kpos] = factor
                # Row update restricted to the existing pattern of row i:
                # subtract factor * (upper part of row k) wherever row i has
                # a matching column.  One vectorized gather/scatter replaces
                # the former per-entry Python loop; the real targets are
                # distinct positions of row i, so the fancy-indexed
                # subtraction performs the same independent updates.
                u0, u1 = upper_starts[k], indptr[k + 1]
                if u1 > u0:
                    data[colpos[indices[u0:u1]]] -= factor * data[u0:u1]
            dptr = diag_ptr[i]
            if dptr >= 0 and data[dptr] == 0.0:
                # Zero pivot: shift.  (A missing diagonal cannot be added to
                # the pattern; such a row gets a unit pivot in the solve.)
                data[dptr] = 1e-12 * max(rmax, 1.0)
            colpos[row_cols] = nnz
        self.data = data[:nnz]

    def _build_factors(self, n: int, mode: str, row_ids: np.ndarray) -> None:
        """Split the factored data into the L and U triangular engines."""
        l_ptr, l_ind, l_dat = split_triangle(self.indptr, self.indices, self.data, n, "lower",
                                             row_ids=row_ids)
        u_ptr, u_ind, u_dat = split_triangle(self.indptr, self.indices, self.data, n, "upper",
                                             row_ids=row_ids)
        pivots = np.ones(n, dtype=np.float64)
        present = self._diag_ptr >= 0
        stored = self.data[self._diag_ptr[present]]
        pivots[present] = np.where(stored != 0.0, stored, 1.0)
        # The factors solve on the same kernel tier as the matrix they were
        # built from, so campaigns that rebind the problem's engine get
        # compiled substitutions too.
        self._L = TriangularFactor(n, l_ptr, l_ind, l_dat, diag=None, lower=True, mode=mode,
                                   check=False, engine=self._engine)
        self._U = TriangularFactor(n, u_ptr, u_ind, u_dat, diag=pivots, lower=False,
                                   mode=mode, check=False, engine=self._engine)

    @property
    def factors(self) -> tuple[TriangularFactor, TriangularFactor]:
        """The ``(L, U)`` triangular engines (unit-lower, pivoted upper)."""
        return self._L, self._U

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Solve ``L U z = r`` with the incomplete factors."""
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        return self._U.solve(self._L.solve(r))

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Solve ``L U Z = R`` for a whole ``(n, B)`` block in two sweeps.

        The triangular engines handle multi-RHS blocks natively (one
        gather/segment-sum/scatter per level over ``(rows_in_level, B)``
        slabs), so the sparse index traffic is paid once per level instead of
        once per level per trial.
        """
        R = self._coerce_block(R)
        return self._U.solve(self._L.solve(R))
