"""ILU(0): incomplete LU factorization with zero fill-in.

The factorization keeps exactly the sparsity pattern of ``A`` (the classic
IKJ variant of Saad, *Iterative Methods for Sparse Linear Systems*, Alg.
10.4).  It is the strongest of the bundled preconditioners for the
convection–diffusion and circuit problems and is exercised by the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix

__all__ = ["ILU0Preconditioner"]


class ILU0Preconditioner(Preconditioner):
    """Incomplete LU with zero fill on the pattern of ``A``.

    Parameters
    ----------
    A : CSRMatrix
        The matrix to factor.  Rows must contain their diagonal entry; a
        missing or zero pivot is replaced by a small multiple of the largest
        row magnitude so factorization always completes (standard shifted
        ILU practice).
    """

    def __init__(self, A: CSRMatrix):
        self.shape = A.shape
        n = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"ILU(0) requires a square matrix, got {A.shape}")
        # Work on a copy of the CSR data; the pattern never changes.
        self.indptr = A.indptr.copy()
        self.indices = A.indices.copy()
        self.data = A.data.copy()
        self._diag_ptr = np.full(n, -1, dtype=np.int64)
        self._factorize(n)

    def _factorize(self, n: int) -> None:
        indptr, indices, data = self.indptr, self.indices, self.data
        # Locate diagonal entries; insert surrogate pivots where missing.
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            row_cols = indices[start:stop]
            hits = np.flatnonzero(row_cols == i)
            if hits.size:
                self._diag_ptr[i] = start + hits[0]
        # column -> position lookup reused per row
        colpos = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            row_cols = indices[start:stop]
            colpos[row_cols] = np.arange(start, stop)
            row_max = np.abs(data[start:stop]).max() if stop > start else 1.0
            for kpos in range(start, stop):
                k = indices[kpos]
                if k >= i:
                    break
                dk_ptr = self._diag_ptr[k]
                pivot = data[dk_ptr] if dk_ptr >= 0 else 0.0
                if pivot == 0.0:
                    pivot = 1e-12 * max(row_max, 1.0)
                factor = data[kpos] / pivot
                data[kpos] = factor
                # Row update restricted to the existing pattern of row i.
                kstart, kstop = indptr[k], indptr[k + 1]
                for jpos in range(kstart, kstop):
                    j = indices[jpos]
                    if j <= k:
                        continue
                    target = colpos[j]
                    if target >= 0:
                        data[target] -= factor * data[jpos]
            dptr = self._diag_ptr[i]
            if dptr < 0 or data[dptr] == 0.0:
                # Missing/zero pivot: shift.  We cannot add a new entry to the
                # pattern, so if the diagonal is absent the row is treated as
                # having unit pivot in the solve below.
                if dptr >= 0:
                    data[dptr] = 1e-12 * max(row_max, 1.0)
            colpos[row_cols] = -1

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Solve ``L U z = r`` with the incomplete factors."""
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        n = self.n
        indptr, indices, data = self.indptr, self.indices, self.data

        # Forward solve with unit lower triangle.
        y = np.zeros_like(r)
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            cols = indices[start:stop]
            vals = data[start:stop]
            mask = cols < i
            acc = float(np.dot(vals[mask], y[cols[mask]])) if mask.any() else 0.0
            y[i] = r[i] - acc

        # Backward solve with the upper triangle (including the pivot).
        z = np.zeros_like(r)
        for i in range(n - 1, -1, -1):
            start, stop = indptr[i], indptr[i + 1]
            cols = indices[start:stop]
            vals = data[start:stop]
            mask = cols > i
            acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
            dptr = self._diag_ptr[i]
            pivot = data[dptr] if dptr >= 0 and data[dptr] != 0.0 else 1.0
            z[i] = (y[i] - acc) / pivot
        return z
