"""The identity (no-op) preconditioner."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner

__all__ = ["IdentityPreconditioner"]


class IdentityPreconditioner(Preconditioner):
    """``M^{-1} = I``: returns a copy of its input.

    Useful as the default for unpreconditioned solves and as the degenerate
    case in preconditioner tests.
    """

    def __init__(self, n: int):
        self.shape = (int(n), int(n))

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        return r.copy()

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        R = self._coerce_block(R)
        return R.copy()
