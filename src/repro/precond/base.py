"""Preconditioner interface.

A preconditioner approximates the action of ``A^{-1}``: ``apply(r)`` returns
``M^{-1} r``.  The Krylov solvers treat preconditioners as opaque operators —
exactly how FGMRES treats its (possibly changing, possibly faulty) inner
solves — so anything implementing :class:`Preconditioner` can also be used
directly as the "inner solver" of FT-GMRES.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Preconditioner"]


class Preconditioner:
    """Base class for preconditioners.

    Subclasses must implement :meth:`apply`; ``shape`` is the shape of the
    operator being preconditioned.
    """

    shape: tuple[int, int]

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return an approximation to ``A^{-1} r``."""
        raise NotImplementedError

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    @property
    def n(self) -> int:
        """Dimension of the vectors the preconditioner acts on."""
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={getattr(self, 'shape', None)})"
