"""Preconditioner interface.

A preconditioner approximates the action of ``A^{-1}``: ``apply(r)`` returns
``M^{-1} r``.  The Krylov solvers treat preconditioners as opaque operators —
exactly how FGMRES treats its (possibly changing, possibly faulty) inner
solves — so anything implementing :class:`Preconditioner` can also be used
directly as the "inner solver" of FT-GMRES.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Preconditioner"]


class Preconditioner:
    """Base class for preconditioners.

    Subclasses must implement :meth:`apply`; ``shape`` is the shape of the
    operator being preconditioned.
    """

    shape: tuple[int, int]

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return an approximation to ``A^{-1} r``."""
        raise NotImplementedError

    def _coerce_block(self, R: np.ndarray) -> np.ndarray:
        """Validate and coerce a ``(n, B)`` residual block (shared by every
        ``apply_block`` implementation)."""
        R = np.asarray(R, dtype=np.float64)
        if R.ndim != 2 or R.shape[0] != self.n:
            raise ValueError(f"expected a ({self.n}, B) block, got shape {R.shape}")
        return R

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Return ``M^{-1} R`` for a dense ``(n, B)`` block of residuals.

        The default applies :meth:`apply` column by column, so every
        preconditioner accepts block operands; the stationary preconditioners
        override this with single-pass kernels built on the block sparse
        layer (``CSRMatrix.matmat`` / multi-RHS ``TriangularFactor.solve``)
        whose columns are bit-identical to the column-at-a-time result.
        """
        R = self._coerce_block(R)
        Z = np.empty((self.n, R.shape[1]), dtype=np.float64, order="F")
        for j in range(R.shape[1]):
            Z[:, j] = self.apply(R[:, j])
        return Z

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    @property
    def n(self) -> int:
        """Dimension of the vectors the preconditioner acts on."""
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={getattr(self, 'shape', None)})"
