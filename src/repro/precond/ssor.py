"""Gauss–Seidel and SSOR preconditioners.

Both are stationary sweeps over the CSR matrix.  The triangular sweeps run
through the level-scheduled engine of :mod:`repro.sparse.trisolve`: the
``(D + L)`` / ``(D/ω + L)`` / ``(D/ω + U)`` factors are split from ``A``
once at construction (instead of re-slicing ``A.row(i)`` on every apply)
and each application is one vectorized substitution per dependency level,
with a bit-identical row-sequential fallback for factors whose level
structure is too sequential to pay off.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.trisolve import TriangularFactor

__all__ = ["GaussSeidelPreconditioner", "SSORPreconditioner"]


class GaussSeidelPreconditioner(Preconditioner):
    """One forward Gauss–Seidel sweep: solve ``(D + L) z = r``.

    ``D`` is the diagonal and ``L`` the strictly lower triangle of ``A``.
    Zero diagonal entries are replaced by 1.

    Parameters
    ----------
    A : CSRMatrix
        The matrix to sweep over.
    trisolve_mode : {"auto", "level", "sequential"}
        Solve path of the triangular engine (the paths are bit-identical).
    """

    def __init__(self, A: CSRMatrix, trisolve_mode: str = "auto"):
        self.shape = A.shape
        self.A = A
        diag = A.diagonal()
        self._diag = np.where(diag == 0.0, 1.0, diag)
        self._factor = TriangularFactor.from_csr(A, "lower", diag=self._diag,
                                                 mode=trisolve_mode)

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        return self._factor.solve(r)

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """One forward sweep over a whole ``(n, B)`` block of residuals."""
        R = self._coerce_block(R)
        return self._factor.solve(R)


class SSORPreconditioner(Preconditioner):
    """Symmetric successive over-relaxation preconditioner.

    Applies the standard SSOR operator

        M = (D/ω + L) [ (2-ω)/ω · D ]^{-1} (D/ω + U)

    through one forward and one backward sweep.  With ``omega = 1`` this is
    symmetric Gauss–Seidel.

    Parameters
    ----------
    A : CSRMatrix
        The matrix to sweep over.
    omega : float
        Relaxation parameter in ``(0, 2)``.
    trisolve_mode : {"auto", "level", "sequential"}
        Solve path of the triangular engine (the paths are bit-identical).
    """

    def __init__(self, A: CSRMatrix, omega: float = 1.0, trisolve_mode: str = "auto"):
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        self.shape = A.shape
        self.A = A
        self.omega = float(omega)
        diag = A.diagonal()
        self._diag = np.where(diag == 0.0, 1.0, diag)
        scaled = self._diag / self.omega
        self._forward = TriangularFactor.from_csr(A, "lower", diag=scaled,
                                                  mode=trisolve_mode)
        self._backward = TriangularFactor.from_csr(A, "upper", diag=scaled,
                                                   mode=trisolve_mode)
        self._mid_scale = (2.0 - self.omega) / self.omega * self._diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        # Forward sweep: (D/w + L) y = r
        y = self._forward.solve(r)
        # Diagonal scaling: y <- [(2-w)/w * D] y   (solve returned a fresh
        # array, so the in-place scale is safe)
        y *= self._mid_scale
        # Backward sweep: (D/w + U) z = y
        return self._backward.solve(y)

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Both SSOR sweeps on a whole ``(n, B)`` block of residuals."""
        R = self._coerce_block(R)
        Y = self._forward.solve(R)
        Y *= self._mid_scale[:, None]
        return self._backward.solve(Y)
