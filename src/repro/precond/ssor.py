"""Gauss–Seidel and SSOR preconditioners.

Both are stationary sweeps over the CSR matrix.  The forward/backward
triangular sweeps are implemented row-by-row — a deliberate exception to the
"vectorize everything" rule because a triangular solve is inherently
sequential in the row index; the per-row work itself is vectorized slices of
the CSR arrays.  These preconditioners are used by the extended test suite
and the ablation benchmarks on small/medium problems.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix

__all__ = ["GaussSeidelPreconditioner", "SSORPreconditioner"]


class GaussSeidelPreconditioner(Preconditioner):
    """One forward Gauss–Seidel sweep: solve ``(D + L) z = r``.

    ``D`` is the diagonal and ``L`` the strictly lower triangle of ``A``.
    Zero diagonal entries are replaced by 1.
    """

    def __init__(self, A: CSRMatrix):
        self.shape = A.shape
        self.A = A
        diag = A.diagonal()
        self._diag = np.where(diag == 0.0, 1.0, diag)

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        z = np.zeros_like(r)
        A = self.A
        for i in range(self.n):
            cols, vals = A.row(i)
            mask = cols < i
            acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
            z[i] = (r[i] - acc) / self._diag[i]
        return z


class SSORPreconditioner(Preconditioner):
    """Symmetric successive over-relaxation preconditioner.

    Applies the standard SSOR operator

        M = (D/ω + L) [ (2-ω)/ω · D ]^{-1} (D/ω + U)

    through one forward and one backward sweep.  With ``omega = 1`` this is
    symmetric Gauss–Seidel.
    """

    def __init__(self, A: CSRMatrix, omega: float = 1.0):
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        self.shape = A.shape
        self.A = A
        self.omega = float(omega)
        diag = A.diagonal()
        self._diag = np.where(diag == 0.0, 1.0, diag)

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64).ravel()
        if r.shape[0] != self.n:
            raise ValueError(f"vector length {r.shape[0]} does not match {self.n}")
        A, w, d = self.A, self.omega, self._diag
        n = self.n

        # Forward sweep: (D/w + L) y = r
        y = np.zeros_like(r)
        for i in range(n):
            cols, vals = A.row(i)
            mask = cols < i
            acc = float(np.dot(vals[mask], y[cols[mask]])) if mask.any() else 0.0
            y[i] = (r[i] - acc) * w / d[i]

        # Diagonal scaling: z = [(2-w)/w * D] y
        y *= (2.0 - w) / w * d

        # Backward sweep: (D/w + U) z = y
        z = np.zeros_like(r)
        for i in range(n - 1, -1, -1):
            cols, vals = A.row(i)
            mask = cols > i
            acc = float(np.dot(vals[mask], z[cols[mask]])) if mask.any() else 0.0
            z[i] = (y[i] - acc) * w / d[i]
        return z
