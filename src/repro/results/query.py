"""Filter / group / aggregate helpers over campaign trial records.

A :class:`TrialQuery` wraps a sequence of
:class:`~repro.faults.campaign.TrialRecord` values (from a live
:class:`~repro.faults.campaign.CampaignResult` or loaded from a
:class:`~repro.results.store.RunStore`) and answers the questions the
paper's figures and tables ask — "the (location, outer iterations) series of
one fault class", "the detection rate per class", "the worst-case increase"
— without re-running a single solve.

Queries are immutable: every operation returns a new query (or plain data),
so intermediate results can be reused freely.

>>> q = TrialQuery(result.trials)
>>> x, y = q.filter(fault_class="large").series()
>>> q.group_by("fault_class")["large"].rate(lambda t: t.faults_detected > 0)
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["TrialQuery"]


class TrialQuery:
    """An immutable, chainable view over trial records.

    Records may be any objects exposing the :class:`TrialRecord` attributes
    (``fault_class``, ``aggregate_inner_iteration``, ``outer_iterations``,
    ...); the query never mutates them.
    """

    def __init__(self, records: Iterable) -> None:
        self._records = tuple(records)

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    def records(self) -> list:
        """The underlying records, in order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrialQuery({len(self._records)} records)"

    # ------------------------------------------------------------------ #
    # filtering and grouping
    # ------------------------------------------------------------------ #
    def filter(self, pred: Callable | None = None, **field_equals) -> "TrialQuery":
        """Records matching a predicate and/or exact field values.

        ``q.filter(fault_class="large")`` keeps records whose attribute
        equals the given value; ``q.filter(lambda t: not t.converged)`` uses
        an arbitrary predicate; both can be combined (all must hold).
        """
        records = self._records
        if field_equals:
            records = [r for r in records
                       if all(getattr(r, name) == value
                              for name, value in field_equals.items())]
        if pred is not None:
            records = [r for r in records if pred(r)]
        return TrialQuery(records)

    def exclude(self, pred: Callable | None = None, **field_equals) -> "TrialQuery":
        """The complement of :meth:`filter` (records NOT matching)."""
        kept = set(map(id, self.filter(pred, **field_equals)._records))
        return TrialQuery(r for r in self._records if id(r) not in kept)

    def group_by(self, field: str, *, sort: bool = False) -> dict:
        """Partition into ``{field value: TrialQuery}``.

        Groups appear in first-seen order (the campaign's canonical order)
        unless ``sort=True`` sorts the keys.
        """
        groups: dict = {}
        for record in self._records:
            groups.setdefault(getattr(record, field), []).append(record)
        keys = sorted(groups) if sort else list(groups)
        return {key: TrialQuery(groups[key]) for key in keys}

    def sort_by(self, field: str, reverse: bool = False) -> "TrialQuery":
        """Records sorted by one attribute (stable)."""
        return TrialQuery(sorted(self._records, key=lambda r: getattr(r, field),
                                 reverse=reverse))

    # ------------------------------------------------------------------ #
    # reliability
    # ------------------------------------------------------------------ #
    def errors(self) -> "TrialQuery":
        """Records of crashed, timed-out, or quarantined trials.

        ``status="error"`` covers trials whose solve raised or blew its
        soft budget (PR 7) and, under the sharded supervisor, trials that
        hard-timed-out or were quarantined as poison after repeatedly
        killing their worker (``error`` starts with ``"poison"``).
        """
        return self.filter(status="error")

    def retry_count(self) -> int:
        """Total worker-crash retries recorded across these trials.

        Each record's ``retries`` field counts how many times the trial
        took its sharded worker down before this record was produced;
        records from non-supervised backends contribute 0.
        """
        return int(sum(getattr(r, "retries", 0) or 0 for r in self._records))

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def values(self, field: str) -> list:
        """One attribute of every record, in order."""
        return [getattr(r, field) for r in self._records]

    def distinct(self, field: str) -> list:
        """Distinct attribute values, in first-seen order."""
        seen: list = []
        for value in self.values(field):
            if value not in seen:
                seen.append(value)
        return seen

    def series(self, x: str = "aggregate_inner_iteration",
               y: str = "outer_iterations") -> tuple[np.ndarray, np.ndarray]:
        """Two attributes as ``(x, y)`` int64 arrays sorted by ``x``.

        With the defaults this is exactly the plotted series of one panel of
        the paper's Figures 3/4 (filter by fault class first).
        """
        pts = sorted(zip(self.values(x), self.values(y)))
        if not pts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        xs, ys = zip(*pts)
        return np.asarray(xs, dtype=np.int64), np.asarray(ys, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def count(self, pred: Callable | None = None) -> int:
        """Number of records (matching ``pred`` when given)."""
        if pred is None:
            return len(self._records)
        return sum(1 for r in self._records if pred(r))

    def rate(self, pred: Callable) -> float:
        """Fraction of records matching ``pred`` (0.0 on an empty query)."""
        if not self._records:
            return 0.0
        return self.count(pred) / len(self._records)

    def max(self, field: str, default=0):
        """Maximum of one attribute (``default`` on an empty query)."""
        values = self.values(field)
        return max(values) if values else default

    def min(self, field: str, default=0):
        """Minimum of one attribute (``default`` on an empty query)."""
        values = self.values(field)
        return min(values) if values else default

    def mean(self, field: str, default=0.0) -> float:
        """Mean of one attribute (``default`` on an empty query)."""
        values = self.values(field)
        return float(np.mean(values)) if values else default

    def median(self, field: str, default=0.0) -> float:
        """Median of one attribute (``default`` on an empty query)."""
        values = self.values(field)
        return float(np.median(values)) if values else default

    def sum(self, field: str):
        """Sum of one attribute (0 on an empty query)."""
        return sum(self.values(field))

    def aggregate(self, **aggregators) -> dict:
        """Evaluate several named aggregations in one pass.

        Each aggregator is a callable receiving this query; the result maps
        the given names to the values.

        >>> q.aggregate(trials=len, worst=lambda q: q.max("outer_iterations"))
        """
        return {name: fn(self) for name, fn in aggregators.items()}
