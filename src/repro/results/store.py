"""The persistent run store: append-only JSONL runs with manifests.

Layout (one directory per run under the store root)::

    <root>/
      <run_id>/
        manifest.json     # full CampaignSpec, spec hash, seed, repro version,
                          # baseline numbers, resolved locations, status
        trials.jsonl      # one TrialRecord per line, appended + flushed as
                          # each trial completes, in COMPLETION order
        shard-<k>/        # sharded-supervisor runs: one store shard per
          trials.jsonl    # worker process, merged on read (and compacted
          heartbeat.json  # into the flat layout by merge_shards)
      artifacts/
        <name>.json       # non-campaign artifacts (Table I rows, Figure 2)

Durability contract
-------------------
``trials.jsonl`` is append-only and flushed per record, so a crash (or
SIGTERM, or a SIGKILL-ed shard worker) at any point loses at most the record
being written.  A torn final line is expected after a crash:
:meth:`RunStore.read_trials` detects it, reports it, and
:meth:`RunStore.recover` truncates the file (each shard file independently)
back to its last complete record so appending can resume.  A corrupt line
*before* the final one is real corruption and raises :class:`RunStoreError`.

Shard layout
------------
The sharded supervisor (:mod:`repro.exec.supervisor`) gives every worker
process its own ``shard-<k>/trials.jsonl`` so crash recovery never has two
writers on one file.  All read paths (:meth:`RunStore.read_trials`,
:meth:`~RunStore.load_result`, :meth:`~RunStore.query`,
:meth:`~RunStore.completed_indices`) merge the flat file and every shard
file transparently, deduping through the error-supersede rules; a resumed
run may re-partition casualties across *different* shards, so a stale error
record and its superseding measurement can appear in either file order.
Once a run is complete, :meth:`RunStore.merge_shards` compacts the shards
into the flat layout (idempotent, fingerprint-verified).

Resume contract
---------------
The manifest freezes everything a resumed run needs to be trial-identical to
an uninterrupted one: the spec (and its hash, verified on resume), the
failure-free baseline numbers, and the resolved injection locations.  Trials
are keyed by their canonical index, so a resume runs exactly the missing
indices and the merged result is in canonical order.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any

from repro.results.query import TrialQuery
from repro.utils.io import atomic_write_json

__all__ = ["RunStoreError", "RunManifest", "RunWriter", "RunStore", "StoreLock",
           "campaign_fingerprint", "read_trial_file", "shard_dir_name",
           "FINGERPRINT_EXCLUDED_FIELDS"]

_MANIFEST = "manifest.json"
_TRIALS = "trials.jsonl"
_ARTIFACTS = "artifacts"
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


class RunStoreError(RuntimeError):
    """A run-store consistency problem (missing run, spec mismatch, ...)."""


def shard_dir_name(shard: int) -> str:
    """The directory name of one store shard (``shard-<k>``)."""
    return f"shard-{int(shard)}"


def read_trial_file(path: str) -> tuple[list[tuple[int, Any]], int, bool]:
    """Parse one trials JSONL file (flat or shard).

    Returns ``(pairs, valid_bytes, torn)``: the parsed ``(index,
    TrialRecord)`` pairs in file order, the byte offset just past the last
    complete parseable line (``os.truncate`` at this offset is the recovery
    operation), and whether a torn tail — an unterminated or corrupt *final*
    line, the expected signature of a crash mid-append — follows it.
    Corruption before the final line raises :class:`RunStoreError`; a
    missing file reads as empty.
    """
    from repro.faults.campaign import TrialRecord

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, False
    pairs: list[tuple[int, Any]] = []
    pos = 0
    lineno = 0
    torn = False
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline < 0:
            torn = True  # unterminated tail: crash mid-append
            break
        lineno += 1
        try:
            row = json.loads(data[pos:newline].decode("utf-8"))
            index = int(row.pop("index"))
            record = TrialRecord.from_dict(row)
        except (ValueError, TypeError, KeyError, UnicodeDecodeError) as exc:
            if newline + 1 < len(data):
                raise RunStoreError(
                    f"corrupt trial record at {path}:{lineno}: {exc}") from None
            torn = True  # corrupt final line: same crash signature
            break
        pairs.append((index, record))
        pos = newline + 1
    return pairs, pos, torn


#: CampaignSpec fields deliberately excluded from :func:`campaign_fingerprint`.
#: Every other spec field MUST change the fingerprint (the static-analysis
#: rule RPR003 probes each field and fails the lint gate otherwise):
#:
#: * ``problem`` — the problem *name* is mixed into the hash separately, so a
#:   spec with ``problem=None`` run on an explicit problem object and the
#:   equivalent named spec resolve to the same stored run;
#: * ``exec`` — execution knobs (backend, workers, batch size, kernels, ...)
#:   are documented not to change results, so reruns under any backend find
#:   and resume the same run.
FINGERPRINT_EXCLUDED_FIELDS = ("problem", "exec")


def campaign_fingerprint(spec, problem_name: str) -> str:
    """The identity hash of (campaign spec, problem) — what resume verifies.

    The spec alone is not enough: a spec with ``problem=None`` runs on
    whatever problem the caller passes in code, so the problem name is mixed
    into the hash.  Two normalizations keep the identity about the *physics*
    of the campaign:

    * ``problem`` is dropped from the spec (the problem name stands for it);
    * ``exec`` is dropped — execution knobs (backend, workers, batch size)
      are documented not to change results, so ``--workers 4`` and a plain
      serial rerun must find (and resume) the same stored run.
    """
    from repro.specs import ExecutionSpec, spec_hash

    # Normalizes away exactly FINGERPRINT_EXCLUDED_FIELDS (RPR003 probes
    # every spec field against the fingerprint to keep the two in sync).
    spec = spec.replace(problem=None, exec=ExecutionSpec())
    return spec_hash({"problem_name": str(problem_name), "spec": spec.to_dict()})


@dataclass
class RunManifest:
    """Everything needed to identify, resume, and rebuild a stored run."""

    run_id: str
    spec: dict
    spec_hash: str
    problem_name: str
    repro_version: str
    seed: int | None
    mgs_position: str
    inner_iterations: int
    detector_enabled: bool
    failure_free_outer: int
    failure_free_residual: float
    locations: list[int]
    fault_classes: list[str]
    total_trials: int
    status: str = "running"
    created_at: str = ""
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "run_id": self.run_id,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "problem_name": self.problem_name,
            "repro_version": self.repro_version,
            "seed": self.seed,
            "mgs_position": self.mgs_position,
            "inner_iterations": self.inner_iterations,
            "detector_enabled": self.detector_enabled,
            "failure_free_outer": self.failure_free_outer,
            "failure_free_residual": self.failure_free_residual,
            "locations": [int(loc) for loc in self.locations],
            "fault_classes": list(self.fault_classes),
            "total_trials": self.total_trials,
            "status": self.status,
            "created_at": self.created_at,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        data = dict(data)
        data.setdefault("extra", {})
        return cls(**data)


class RunWriter:
    """Appends trial records to one run, flushed per record.

    The write happens *before* any observer sees the record (the campaign
    layer emits its ``trial_completed`` event after appending), so an
    interrupt during observation never loses a persisted trial.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, index: int, record) -> None:
        """Persist one completed trial (``record`` is a TrialRecord)."""
        row = {"index": int(index), **record.to_dict()}
        self._handle.write(json.dumps(row) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class StoreLock:
    """A cross-process advisory lock on a store directory (``flock``-based).

    Guards read-modify-write cycles that span processes — the campaign
    service's job submissions and state transitions all happen under one of
    these, so two clients racing to submit the same spec serialize onto a
    single durable job record.  Locks are *advisory*: nothing stops a writer
    that does not take the lock (the store's append-only trial files never
    need it).

    Use as a context manager, or ``acquire(blocking=False)`` /
    ``acquire(timeout=...)`` for try-lock semantics.  ``release`` explicitly
    unlocks before closing the file so a child process that inherited the
    open description across ``fork`` cannot keep the lock alive.  On
    platforms without ``fcntl`` the lock degrades to a no-op (single-host
    POSIX is the supported service deployment).
    """

    def __init__(self, directory, *, name: str = ".lock"):
        self.path = os.path.join(str(directory), name)
        self._handle = None

    def acquire(self, *, blocking: bool = True, timeout: float | None = None) -> bool:
        """Take the lock; returns False only for a failed non-blocking try."""
        if self._handle is not None:
            raise RunStoreError(f"lock {self.path} is already held by this object")
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        handle = open(self.path, "a+")
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            self._handle = handle
            return True
        try:
            if blocking and timeout is None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            else:
                import time as _time

                deadline = _time.monotonic() + (timeout or 0.0)
                while True:
                    try:
                        fcntl.flock(handle.fileno(),
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if _time.monotonic() >= deadline:
                            handle.close()
                            return False
                        _time.sleep(0.01)
        except Exception:
            handle.close()
            raise
        self._handle = handle
        return True

    def release(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        try:
            import fcntl

            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except (ImportError, OSError):  # pragma: no cover
            pass
        handle.close()

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class RunStore:
    """A directory of persisted campaign runs (see the module docstring)."""

    def __init__(self, root) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    @classmethod
    def coerce(cls, store) -> "RunStore":
        """A RunStore from an instance or a path."""
        if isinstance(store, cls):
            return store
        return cls(store)

    # ------------------------------------------------------------------ #
    # run directory plumbing
    # ------------------------------------------------------------------ #
    def run_path(self, run_id: str) -> str:
        """The directory of one run (validated; need not exist yet)."""
        if not _RUN_ID_RE.match(run_id):
            raise RunStoreError(
                f"invalid run id {run_id!r}: use letters, digits, '.', '_', '-'")
        if run_id == _ARTIFACTS:
            raise RunStoreError(
                f"run id {_ARTIFACTS!r} is reserved for the store's "
                f"artifact directory")
        return os.path.join(self.root, run_id)

    def exists(self, run_id: str) -> bool:
        """True if the run has a manifest on disk."""
        return os.path.isfile(os.path.join(self.run_path(run_id), _MANIFEST))

    def run_ids(self) -> list[str]:
        """All stored run ids, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name for name in os.listdir(self.root)
                      if os.path.isfile(os.path.join(self.root, name, _MANIFEST)))

    def list_runs(self) -> list[dict]:
        """One summary row per stored run, sorted by run id.

        Each row carries the manifest identity plus live trial progress::

            {"run_id", "status", "spec_hash", "problem_name", "created_at",
             "trials_done", "total_trials", "shards"}

        ``trials_done`` counts indices whose latest record is successful
        (error records — crashes, timeouts — read as still missing, matching
        :meth:`completed_indices`); a run whose trial files are unreadable
        reports ``status="corrupt"`` instead of raising, so one damaged run
        cannot hide the rest of the store from ``repro runs`` or the
        service's job listing.
        """
        rows = []
        for run_id in self.run_ids():
            try:
                manifest = self.manifest(run_id)
            except RunStoreError:
                rows.append({"run_id": run_id, "status": "corrupt",
                             "spec_hash": None, "problem_name": None,
                             "created_at": None, "trials_done": None,
                             "total_trials": None, "shards": 0})
                continue
            try:
                done = len(self.completed_indices(run_id))
            except RunStoreError:
                done = None
            rows.append({
                "run_id": run_id,
                "status": manifest.status if done is not None else "corrupt",
                "spec_hash": manifest.spec_hash,
                "problem_name": manifest.problem_name,
                "created_at": manifest.created_at,
                "trials_done": done,
                "total_trials": manifest.total_trials,
                "shards": len(self.shard_ids(run_id)),
            })
        return rows

    # ------------------------------------------------------------------ #
    # manifests
    # ------------------------------------------------------------------ #
    def create_run(self, manifest: RunManifest, *, resume: bool = False) -> RunWriter:
        """Create (or on ``resume=True`` reopen) a run; return its writer.

        A fresh create refuses to overwrite an existing run — stored trials
        are evidence, not cache.  Reopening verifies nothing (the caller
        checks the fingerprint first via :meth:`manifest`).
        """
        self.write_manifest(manifest, resume=resume)
        return RunWriter(os.path.join(self.run_path(manifest.run_id), _TRIALS))

    def write_manifest(self, manifest: RunManifest, *, resume: bool = False) -> None:
        """Persist a run's manifest without opening a flat trial writer.

        The sharded supervisor appends trial records to per-shard files, so
        it needs the manifest (identity, baseline, resume contract) on disk
        without the flat ``trials.jsonl`` handle :meth:`create_run` returns.
        Overwrite rules match :meth:`create_run`: a fresh write refuses an
        existing run, and ``resume=True`` keeps the stored manifest.
        """
        path = self.run_path(manifest.run_id)
        if self.exists(manifest.run_id) and not resume:
            raise RunStoreError(
                f"run {manifest.run_id!r} already exists in {self.root}; "
                f"pass resume=True to continue it or choose another run_id")
        os.makedirs(path, exist_ok=True)
        if not self.exists(manifest.run_id):
            self._write_manifest(manifest)

    def _manifest_lock(self, run_id: str) -> StoreLock:
        """The lock serializing manifest read-modify-write cycles of a run.

        The supervisor's retry accounting and the service's finalize can
        race on one manifest from different processes; every RMW
        (:meth:`update_manifest_extra`, :meth:`finalize`) must run under
        this lock so concurrent merges never lose keys.
        """
        return StoreLock(self.run_path(run_id), name=".manifest.lock")

    def update_manifest_extra(self, run_id: str, **extra) -> RunManifest:
        """Merge keys into a stored manifest's ``extra`` dict (atomic rewrite).

        The supervisor's retry/quarantine accounting persists here, so a
        resumed campaign (and post-mortem analysis) can see how flaky the
        infrastructure was without scanning shard files.
        """
        with self._manifest_lock(run_id):
            manifest = self.manifest(run_id)
            manifest.extra.update(extra)
            self._write_manifest(manifest)
        return manifest

    def manifest(self, run_id: str) -> RunManifest:
        """The manifest of a stored run."""
        path = os.path.join(self.run_path(run_id), _MANIFEST)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return RunManifest.from_dict(json.load(handle))
        except FileNotFoundError:
            raise RunStoreError(
                f"no run {run_id!r} in {self.root} "
                f"(stored runs: {self.run_ids() or 'none'})") from None
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise RunStoreError(f"corrupt manifest for run {run_id!r}: {exc}") from None

    def _write_manifest(self, manifest: RunManifest) -> None:
        path = os.path.join(self.run_path(manifest.run_id), _MANIFEST)
        # Atomic replace: a crash never leaves a torn manifest.
        atomic_write_json(path, manifest.to_dict(), indent=2)

    def finalize(self, run_id: str) -> None:
        """Mark a run complete (all trials written)."""
        with self._manifest_lock(run_id):
            manifest = self.manifest(run_id)
            manifest.status = "complete"
            self._write_manifest(manifest)

    # ------------------------------------------------------------------ #
    # trial records (flat file + shard files, merged on read)
    # ------------------------------------------------------------------ #
    def shard_ids(self, run_id: str) -> list[int]:
        """The shard numbers present in a run's directory, sorted."""
        run_dir = self.run_path(run_id)
        if not os.path.isdir(run_dir):
            return []
        return sorted(int(match.group(1)) for name in os.listdir(run_dir)
                      if (match := _SHARD_DIR_RE.match(name))
                      and os.path.isdir(os.path.join(run_dir, name)))

    def shard_path(self, run_id: str, shard: int) -> str:
        """The directory of one store shard (need not exist yet)."""
        return os.path.join(self.run_path(run_id), shard_dir_name(shard))

    def _trial_paths(self, run_id: str) -> list[str]:
        """Every trials file of a run: the flat file, then shards in order."""
        paths = []
        flat = os.path.join(self.run_path(run_id), _TRIALS)
        if os.path.isfile(flat):
            paths.append(flat)
        for shard in self.shard_ids(run_id):
            shard_file = os.path.join(self.shard_path(run_id, shard), _TRIALS)
            if os.path.isfile(shard_file):
                paths.append(shard_file)
        return paths

    def read_trials(self, run_id: str) -> tuple[list[tuple[int, Any]], bool]:
        """All persisted ``(index, TrialRecord)`` pairs, in file order.

        Pairs come from the flat ``trials.jsonl`` followed by every
        ``shard-<k>/trials.jsonl`` in shard order.  Returns ``(pairs,
        torn_tail)`` where ``torn_tail`` reports a truncated/corrupt *final*
        line in any of the files (the expected signature of a crash
        mid-append) — such lines are skipped.  Corruption anywhere else
        raises :class:`RunStoreError`.
        """
        paths = self._trial_paths(run_id)
        if not paths:
            self.manifest(run_id)  # raises if the whole run is missing
            return [], False
        pairs: list[tuple[int, Any]] = []
        torn_any = False
        for path in paths:
            file_pairs, _, torn = read_trial_file(path)
            pairs.extend(file_pairs)
            torn_any = torn_any or torn
        return pairs, torn_any

    def recover(self, run_id: str) -> list[tuple[int, Any]]:
        """Read trials and truncate torn tails so appends can resume.

        Shard-aware: each trials file (flat and per-shard) is truncated
        *independently* back to its last complete record — a SIGKILL-ed
        shard worker tears only its own file.  Returns the surviving
        ``(index, TrialRecord)`` pairs across all files.
        """
        paths = self._trial_paths(run_id)
        if not paths:
            self.manifest(run_id)
            return []
        pairs: list[tuple[int, Any]] = []
        for path in paths:
            file_pairs, valid_bytes, torn = read_trial_file(path)
            if torn:
                with open(path, "rb+") as handle:
                    handle.truncate(valid_bytes)
            pairs.extend(file_pairs)
        return pairs

    def _latest_records(self, run_id: str,
                        pairs: list[tuple[int, Any]]) -> list[tuple[int, Any]]:
        """Dedupe records per index with error-supersede semantics, in index order.

        A resumed or sharded run legitimately holds several records for one
        index: an attempt that crashed or timed out left an ``"error"``
        record and a later attempt superseded it.  Because a resume may
        re-partition the remaining indices across *different* shards, the
        error record and the superseding measurement can appear in either
        read order — the successful record wins regardless.  Two
        *successful* records for one index still raise: that signature means
        two writers raced on the same run, which the store must not paper
        over.
        """
        latest: dict[int, Any] = {}
        for index, record in pairs:
            prev = latest.get(index)
            if prev is None:
                latest[index] = record
                continue
            prev_error = getattr(prev, "status", None) == "error"
            this_error = getattr(record, "status", None) == "error"
            if not prev_error and not this_error:
                raise RunStoreError(
                    f"run {run_id!r} has duplicate trial index {index} "
                    f"(the earlier record is not an error record)")
            if prev_error:
                latest[index] = record  # measurement (or newer error) wins
            # else: keep the measurement; the error record is stale
        return sorted(latest.items())

    def merge_shards(self, run_id: str) -> int:
        """Compact shard directories into the flat ``trials.jsonl`` layout.

        Recovers per-shard torn tails, dedupes every record through the
        error-supersede rules, verifies each provenance-stamped record
        against the manifest's spec hash, rewrites the flat file atomically
        in canonical index order, and removes the shard directories.
        Idempotent: a run with no shard directories returns unchanged.

        Returns the number of shard directories merged away.
        """
        import shutil

        # The whole read-shards -> rewrite-flat-file -> delete-shards cycle
        # runs under the store lock: a second merge (or a straggler shard
        # writer on a resumed run) racing this window could resurrect
        # deleted shards or clobber the compacted file.
        with self._manifest_lock(run_id):
            shard_ks = self.shard_ids(run_id)
            if not shard_ks:
                return 0
            manifest = self.manifest(run_id)
            latest = self._latest_records(run_id, self.recover(run_id))
            for index, record in latest:
                stamped = getattr(record, "spec_hash", None)
                if (stamped is not None and manifest.spec_hash
                        and stamped != manifest.spec_hash):
                    raise RunStoreError(
                        f"run {run_id!r}: shard record for trial {index} was "
                        f"produced by a different campaign (record spec hash "
                        f"{stamped}, manifest {manifest.spec_hash}); refusing "
                        f"to merge")
            path = os.path.join(self.run_path(run_id), _TRIALS)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for index, record in latest:
                    handle.write(json.dumps({"index": index,
                                             **record.to_dict()}) + "\n")
            os.replace(tmp, path)
            for shard in shard_ks:
                shutil.rmtree(self.shard_path(run_id, shard),
                              ignore_errors=True)
            return len(shard_ks)

    def completed_indices(self, run_id: str) -> set[int]:
        """Indices of the trials already persisted *successfully* for a run.

        An index whose latest record is an ``"error"`` record (worker crash,
        soft timeout) is treated as missing, so resume re-runs exactly the
        casualties without re-solving completed trials.
        """
        pairs = self._latest_records(run_id, self.read_trials(run_id)[0])
        return {index for index, record in pairs
                if getattr(record, "status", None) != "error"}

    # ------------------------------------------------------------------ #
    # reading whole results back
    # ------------------------------------------------------------------ #
    def load_result(self, run_id: str, *, allow_partial: bool = False):
        """Rebuild the :class:`CampaignResult` of a stored run — zero solves.

        The returned result is trial-identical to the one the original
        ``run_campaign`` call returned (asserted in the test suite).  By
        default an incomplete run raises; ``allow_partial=True`` returns
        whatever is persisted (trials sorted into canonical order).
        """
        from repro.faults.campaign import CampaignResult

        manifest = self.manifest(run_id)
        raw, torn = self.read_trials(run_id)
        pairs = self._latest_records(run_id, raw)
        if not allow_partial and (torn or len(pairs) < manifest.total_trials):
            raise RunStoreError(
                f"run {run_id!r} is incomplete ({len(pairs)}/{manifest.total_trials} "
                f"trials{' + torn tail' if torn else ''}); resume it first or "
                f"pass allow_partial=True")
        return CampaignResult(
            problem_name=manifest.problem_name,
            mgs_position=manifest.mgs_position,
            inner_iterations=manifest.inner_iterations,
            detector_enabled=manifest.detector_enabled,
            failure_free_outer=manifest.failure_free_outer,
            failure_free_residual=manifest.failure_free_residual,
            trials=[record for _, record in pairs],
            repro_version=manifest.repro_version,
            seed=manifest.seed,
            spec_hash=manifest.spec_hash,
        )

    def query(self, run_id: str, *, allow_partial: bool = True) -> TrialQuery:
        """A :class:`TrialQuery` over a stored run's trial records."""
        pairs = self._latest_records(run_id, self.read_trials(run_id)[0])
        if not allow_partial:
            manifest = self.manifest(run_id)
            if len(pairs) < manifest.total_trials:
                raise RunStoreError(
                    f"run {run_id!r} is incomplete "
                    f"({len(pairs)}/{manifest.total_trials} trials)")
        return TrialQuery(record for _, record in pairs)

    # ------------------------------------------------------------------ #
    # non-campaign artifacts (Table I, Figure 2)
    # ------------------------------------------------------------------ #
    def _artifact_path(self, name: str) -> str:
        if not _RUN_ID_RE.match(name):
            raise RunStoreError(f"invalid artifact name {name!r}")
        return os.path.join(self.root, _ARTIFACTS, name + ".json")

    def save_artifact(self, name: str, payload: dict) -> None:
        """Persist a provenance-stamped JSON artifact under the store."""
        from repro import __version__

        path = self._artifact_path(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        from repro.results.events import _jsonable

        atomic_write_json(path, {"name": name, "repro_version": __version__,
                                 "payload": payload},
                          indent=2, default=_jsonable)

    def has_artifact(self, name: str) -> bool:
        """True if an artifact with this name is stored."""
        return os.path.isfile(self._artifact_path(name))

    def load_artifact(self, name: str) -> dict:
        """The payload saved by :meth:`save_artifact`."""
        try:
            with open(self._artifact_path(name), "r", encoding="utf-8") as handle:
                return json.load(handle)["payload"]
        except FileNotFoundError:
            raise RunStoreError(f"no artifact {name!r} in {self.root}") from None
        except (json.JSONDecodeError, KeyError) as exc:
            raise RunStoreError(f"corrupt artifact {name!r}: {exc}") from None
