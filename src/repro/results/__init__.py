"""repro.results — the streaming results subsystem.

Three pieces make campaign output first-class:

* a **unified event bus** (:mod:`repro.results.events`): one typed
  :class:`Event` schema and an :class:`EventSink` protocol carrying both
  solver-level events (fault injected/detected, breakdowns) and
  campaign-lifecycle events (trial completed, baseline, ...);
* a **persistent run store** (:mod:`repro.results.store`): append-only
  JSONL-per-run with a manifest (full spec, spec hash, seed, repro version),
  written incrementally by every execution backend, supporting
  checkpoint/resume at trial granularity and crash recovery;
* a **query API** (:mod:`repro.results.query`): filter/group/aggregate
  helpers over trial records, so figures regenerate from stored runs with
  zero new solves.
"""

from repro.results.events import (
    CallbackSink,
    CollectingSink,
    ConsoleSink,
    Event,
    EventSink,
    JsonlEventSink,
    MultiSink,
    NullSink,
    ProgressSink,
    ensure_sink,
)
from repro.results.query import TrialQuery
from repro.results.store import (
    RunManifest,
    RunStore,
    RunStoreError,
    RunWriter,
    StoreLock,
    campaign_fingerprint,
)

__all__ = [
    "Event",
    "EventSink",
    "CallbackSink",
    "CollectingSink",
    "ConsoleSink",
    "JsonlEventSink",
    "MultiSink",
    "NullSink",
    "ProgressSink",
    "ensure_sink",
    "TrialQuery",
    "RunManifest",
    "RunStore",
    "RunStoreError",
    "RunWriter",
    "StoreLock",
    "campaign_fingerprint",
]
