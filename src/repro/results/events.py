"""The unified structured event bus.

One typed :class:`Event` schema covers everything the library reports while
it runs — solver-level events (``fault_injected``, ``fault_detected``,
``happy_breakdown``, ...) and campaign-level lifecycle events
(``campaign_started``, ``baseline_completed``, ``trial_completed``,
``campaign_completed``).  Producers push events into an :class:`EventSink`;
consumers choose the sink: collect in memory, stream to a JSONL file, drive a
progress bar, or fan out to several sinks at once.

This replaces the previously divergent conventions — per-solver
``EventLog``-only recording, ``progress(done, total)`` callbacks, and the
``inner_callback`` hook — with one schema and one delivery protocol.  The
legacy surfaces remain as thin adapters: :class:`repro.utils.events.EventLog`
is itself a sink (and can forward to others), and ``progress`` callbacks are
wrapped by :class:`ProgressSink`.

Event kinds
-----------
Solver level (``trial_index`` is -1):

=======================  =====================================================
kind                     meaning / payload
=======================  =====================================================
``fault_injected``       injector corrupted a value (original, corrupted, ...)
``fault_detected``       detector flagged a value (value, bound, response, ...)
``happy_breakdown``      subdiagonal collapsed to zero
``spurious_breakdown``   breakdown claim contradicted by the true residual
``rank_deficient``       outer trichotomy reported rank deficiency
``inner_solve_complete`` one inner solve of FT-GMRES finished
``inner_result_nonfinite``  inner solve returned NaN/Inf (screened)
``lsq_fallback`` / ``lsq_nonfinite``  projected least-squares anomalies
``kernel_profile``       per-phase kernel timings of a profiled solve
                         (data: ``profile`` — spmv/precond/orth/lsq seconds
                         and call counts, see :mod:`repro.utils.profile`)
=======================  =====================================================

Campaign level (``trial_index`` set where applicable):

=======================  =====================================================
``campaign_started``     data: total_trials, problem, backend
``baseline_completed``   data: failure_free_outer, failure_free_residual
``trial_completed``      data: done, total, record (the trial's ``to_dict()``)
``campaign_completed``   data: total_trials
=======================  =====================================================
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Event",
    "EventSink",
    "CallbackSink",
    "CollectingSink",
    "MultiSink",
    "NullSink",
    "JsonlEventSink",
    "ConsoleSink",
    "ProgressSink",
    "ensure_sink",
    "EVENT_KINDS",
    "SOLVER_EVENT_KINDS",
    "CAMPAIGN_EVENT_KINDS",
    "SERVICE_EVENT_KINDS",
]

#: The declared event vocabulary, by layer.  Every ``kind`` emitted anywhere
#: in the library must appear here — sinks, the README's event table, and
#: stream consumers all rely on this being exhaustive, and the
#: static-analysis rule RPR004 fails the lint gate on any emission whose
#: literal kind is missing (or any declared kind nothing emits).
SOLVER_EVENT_KINDS = frozenset({
    "breakdown",
    "failure_reported",
    "fault_detected",
    "fault_injected",
    "happy_breakdown",
    "inner_result_nonfinite",
    "inner_solve_complete",
    "kernel_profile",
    "lsq_fallback",
    "lsq_nonfinite",
    "rank_deficient",
    "rollback_detection",
    "spurious_breakdown",
})
CAMPAIGN_EVENT_KINDS = frozenset({
    "campaign_started",
    "baseline_completed",
    "trial_completed",
    "campaign_completed",
})
SERVICE_EVENT_KINDS = frozenset({
    "job_update",
    "stream_closed",
})
EVENT_KINDS = SOLVER_EVENT_KINDS | CAMPAIGN_EVENT_KINDS | SERVICE_EVENT_KINDS


@dataclass(frozen=True)
class Event:
    """A single structured event.

    Attributes
    ----------
    kind : str
        Event category (see the module docstring for the vocabulary).
    where : str
        The code site that emitted the event (e.g. ``"hessenberg"``).
    outer_iteration : int
        Outer (FGMRES) iteration index, or -1 when not applicable.
    inner_iteration : int
        Inner (GMRES/Arnoldi) iteration index, or -1 when not applicable.
    trial_index : int
        Campaign trial index (canonical order), or -1 for solver-level
        events emitted outside a campaign.
    data : dict
        Free-form payload (original value, corrupted value, bound, ...).
    """

    kind: str
    where: str = ""
    outer_iteration: int = -1
    inner_iteration: int = -1
    trial_index: int = -1
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready dict (defaults omitted; ``kind`` always present)."""
        out: dict[str, Any] = {"kind": self.kind}
        if self.where:
            out["where"] = self.where
        if self.outer_iteration != -1:
            out["outer_iteration"] = self.outer_iteration
        if self.inner_iteration != -1:
            out["inner_iteration"] = self.inner_iteration
        if self.trial_index != -1:
            out["trial_index"] = self.trial_index
        if self.data:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            kind=data["kind"],
            where=data.get("where", ""),
            outer_iteration=int(data.get("outer_iteration", -1)),
            inner_iteration=int(data.get("inner_iteration", -1)),
            trial_index=int(data.get("trial_index", -1)),
            data=dict(data.get("data", {})),
        )


class EventSink:
    """Receives :class:`Event` instances; the consumer side of the bus.

    Sinks must tolerate any event kind (ignore what they do not understand)
    and must not mutate events — several sinks may observe the same instance
    through a :class:`MultiSink`.
    """

    def emit(self, event: Event) -> None:
        """Deliver one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (flush files, ...).  Default: no-op."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullSink(EventSink):
    """Discards every event."""

    def emit(self, event: Event) -> None:
        pass


class CallbackSink(EventSink):
    """Adapts a plain ``fn(event)`` callable to the sink protocol."""

    def __init__(self, fn: Callable[[Event], None]):
        if not callable(fn):
            raise TypeError(f"CallbackSink needs a callable, got {type(fn).__name__}")
        self.fn = fn

    def emit(self, event: Event) -> None:
        self.fn(event)


class CollectingSink(EventSink):
    """Collects events in memory (``sink.events`` is the list)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        """All collected events whose ``kind`` matches exactly."""
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


class MultiSink(EventSink):
    """Fans every event out to several sinks, in order."""

    def __init__(self, sinks) -> None:
        self.sinks = [ensure_sink(s) for s in sinks]

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlEventSink(EventSink):
    """Appends one JSON line per event to a file, flushed per event.

    ``path`` is treated as a directory — events land in
    ``<path>/events.jsonl`` — unless its last component has a file extension
    (``events.jsonl``, ``log.json``), so ``jsonl:runs`` and ``jsonl:runs/``
    mean the same thing and never shadow a run-store directory with a plain
    file.  The default flush-per-event discipline means a killed process
    loses at most the event being written — the same crash contract as the
    run store — and live readers (``tail -f``, the campaign service's
    ``GET /jobs/<id>/events`` stream) see each event as it happens.  Pass
    ``flush=False`` to trade that liveness for buffered writes when the
    firehose of solver-level events is the bottleneck; events then become
    durable and visible only on buffer fill and :meth:`close`.
    """

    def __init__(self, path, *, flush: bool = True) -> None:
        import os

        path = str(path)
        # A trailing separator always means "directory", even when the name
        # contains a dot (e.g. "runs.v2/"); otherwise the extension decides.
        if path.endswith(os.sep) or "." not in os.path.basename(path):
            os.makedirs(path, exist_ok=True)
            path = os.path.join(path, "events.jsonl")
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        self.path = path
        self.flush = bool(flush)
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, event: Event) -> None:
        json.dump(event.to_dict(), self._handle, default=_jsonable)
        self._handle.write("\n")
        if self.flush:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ConsoleSink(EventSink):
    """Prints campaign progress lines to a stream (default: stderr).

    Only lifecycle kinds are printed; the firehose of solver-level events is
    ignored so the console stays readable.
    """

    _LIFECYCLE = ("campaign_started", "baseline_completed", "trial_completed",
                  "campaign_completed")

    def __init__(self, stream=None, every: int = 1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.every = max(int(every), 1)

    def emit(self, event: Event) -> None:
        if event.kind not in self._LIFECYCLE:
            return
        if event.kind == "trial_completed":
            done = event.data.get("done", -1)
            total = event.data.get("total", -1)
            if done % self.every and done != total:
                return
            print(f"[repro] trial {done}/{total}", file=self.stream)
        else:
            detail = " ".join(f"{k}={v}" for k, v in sorted(event.data.items())
                              if not isinstance(v, dict))
            print(f"[repro] {event.kind} {detail}".rstrip(), file=self.stream)


class ProgressSink(EventSink):
    """Adapts the legacy ``progress(done, total)`` callback to the bus."""

    def __init__(self, progress: Callable[[int, int], None]):
        if not callable(progress):
            raise TypeError(
                f"ProgressSink needs a callable, got {type(progress).__name__}")
        self.progress = progress

    def emit(self, event: Event) -> None:
        if event.kind == "trial_completed":
            self.progress(event.data["done"], event.data["total"])


def ensure_sink(obj) -> EventSink | None:
    """Coerce ``obj`` to an :class:`EventSink`.

    ``None`` passes through (meaning "no sink"); sinks pass through; lists
    and tuples become a :class:`MultiSink`; bare callables are wrapped in a
    :class:`CallbackSink`.
    """
    if obj is None or isinstance(obj, EventSink):
        return obj
    if isinstance(obj, (list, tuple)):
        return MultiSink(obj)
    if callable(obj):
        return CallbackSink(obj)
    raise TypeError(
        f"expected an EventSink, a callable, a list of them, or None; "
        f"got {type(obj).__name__}")


def _jsonable(value):
    """JSON fallback for event payloads (numpy scalars, exotic objects)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return repr(value)
