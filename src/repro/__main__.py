"""``python -m repro`` — dispatches to the experiment runner CLI.

Equivalent to the ``repro`` console script installed by the package; see
:mod:`repro.experiments.runner` for the commands and options.
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
