"""Matrix norms and the Hessenberg-entry bound.

The paper's detector (Section V) relies on the chain of inequalities

    |h_ij|  <=  ||A q_j||_2  <=  ||A||_2  <=  ||A||_F

so the library provides both the Frobenius norm (cheap, one pass over the
stored entries) and a power-method estimate of the 2-norm (the largest
singular value), plus the induced 1- and infinity-norms for completeness.
:func:`hessenberg_bound` packages the paper's recommended choice.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.linear_operator import LinearOperator, aslinearoperator
from repro.utils.rng import as_generator

__all__ = [
    "frobenius_norm",
    "one_norm",
    "inf_norm",
    "two_norm_estimate",
    "hessenberg_bound",
]


def frobenius_norm(A) -> float:
    """Frobenius norm ``||A||_F = sqrt(sum a_ij^2)``.

    Accepts a :class:`CSRMatrix`, a dense array, or a ``scipy.sparse`` matrix.
    For sparse input this is a single vectorized pass over the stored values.
    """
    if isinstance(A, CSRMatrix):
        return float(np.sqrt(np.sum(A.data * A.data)))
    if isinstance(A, np.ndarray):
        return float(np.linalg.norm(A, "fro"))
    if hasattr(A, "data"):
        data = np.asarray(A.data, dtype=np.float64).ravel()
        return float(np.sqrt(np.sum(data * data)))
    raise TypeError(f"cannot compute the Frobenius norm of a {type(A).__name__}")


def one_norm(A) -> float:
    """Induced 1-norm: the maximum absolute column sum."""
    if isinstance(A, CSRMatrix):
        colsums = np.zeros(A.shape[1], dtype=np.float64)
        np.add.at(colsums, A.indices, np.abs(A.data))
        return float(colsums.max()) if colsums.size else 0.0
    dense = np.asarray(A.todense() if hasattr(A, "todense") else A, dtype=np.float64)
    dense = np.atleast_2d(dense)
    return float(np.abs(dense).sum(axis=0).max()) if dense.size else 0.0


def inf_norm(A) -> float:
    """Induced infinity-norm: the maximum absolute row sum."""
    if isinstance(A, CSRMatrix):
        if A.nnz == 0:
            return 0.0
        absdata = np.abs(A.data)
        rowsums = np.zeros(A.shape[0], dtype=np.float64)
        lengths = np.diff(A.indptr)
        nonempty = lengths > 0
        rowsums[nonempty] = np.add.reduceat(absdata, A.indptr[:-1][nonempty])
        return float(rowsums.max()) if rowsums.size else 0.0
    dense = np.asarray(A.todense() if hasattr(A, "todense") else A, dtype=np.float64)
    dense = np.atleast_2d(dense)
    return float(np.abs(dense).sum(axis=1).max()) if dense.size else 0.0


def two_norm_estimate(A, tol: float = 1e-8, maxiter: int = 200, seed=0) -> float:
    """Estimate ``||A||_2`` (the largest singular value) by power iteration.

    The iteration is run on ``A.T A`` through repeated ``matvec``/``rmatvec``
    calls, so it works for any :class:`LinearOperator` that provides both.
    The estimate converges from below, which makes it a slightly optimistic
    detector threshold; the paper notes the Frobenius norm as the safe,
    cheaper alternative (:func:`hessenberg_bound` defaults to Frobenius).

    Parameters
    ----------
    A : matrix or operator
        Anything accepted by :func:`repro.sparse.aslinearoperator`.
    tol : float
        Relative change in the estimate at which to stop.
    maxiter : int
        Maximum number of power iterations.
    seed : int or numpy.random.Generator
        Seed for the random start vector.
    """
    op: LinearOperator = aslinearoperator(A)
    rng = as_generator(seed)
    n = op.shape[1]
    if n == 0:
        return 0.0
    v = rng.standard_normal(n)
    v_norm = np.linalg.norm(v)
    if v_norm == 0.0:  # pragma: no cover - probability zero
        v = np.ones(n)
        v_norm = np.sqrt(n)
    v /= v_norm
    sigma = 0.0
    for _ in range(maxiter):
        w = op.matvec(v)
        z = op.rmatvec(w)
        z_norm = np.linalg.norm(z)
        if z_norm == 0.0:
            return 0.0
        new_sigma = float(np.sqrt(np.dot(v, z))) if np.dot(v, z) > 0 else float(np.sqrt(z_norm))
        v = z / z_norm
        if sigma > 0 and abs(new_sigma - sigma) <= tol * new_sigma:
            sigma = new_sigma
            break
        sigma = new_sigma
    return float(sigma)


def hessenberg_bound(A, method: str = "frobenius", **kwargs) -> float:
    """The paper's upper bound on any Hessenberg entry produced by Arnoldi.

    Parameters
    ----------
    A : matrix or operator
        The system matrix (or preconditioned operator) given to GMRES.
    method : {"frobenius", "two_norm", "exact"}
        * ``"frobenius"`` — ``||A||_F`` (default; cheapest and an upper
          bound on ``||A||_2``, Eq. (3) of the paper).
        * ``"two_norm"`` — power-method estimate of ``||A||_2`` (tighter).
        * ``"exact"`` — dense SVD; only sensible for small matrices and used
          in tests to validate the estimates.
    **kwargs
        Forwarded to :func:`two_norm_estimate` when applicable.

    Returns
    -------
    float
        A value ``B`` such that, in exact arithmetic, every ``|h_ij| <= B``.
    """
    if method == "frobenius":
        if isinstance(A, (CSRMatrix, np.ndarray)) or hasattr(A, "data"):
            return frobenius_norm(A)
        raise TypeError(
            "frobenius bound requires a materialized matrix; "
            "use method='two_norm' for matrix-free operators"
        )
    if method == "two_norm":
        return two_norm_estimate(A, **kwargs)
    if method == "exact":
        dense = A.todense() if hasattr(A, "todense") else np.asarray(A, dtype=np.float64)
        dense = np.asarray(dense, dtype=np.float64)
        if dense.size == 0:
            return 0.0
        return float(np.linalg.svd(dense, compute_uv=False)[0])
    raise ValueError(f"unknown bound method {method!r}")
