"""Pluggable sparse kernel engines: numpy / scipy / numba tiers.

Every sparse hot kernel of the library — CSR ``matvec``/``rmatvec``/
``matmat``/``rmatmat`` and the level-scheduled triangular solves behind the
stationary preconditioners — dispatches through a :class:`KernelEngine`.
Three tiers are provided:

``numpy``
    The original pure-NumPy kernels, moved here verbatim from
    :class:`~repro.sparse.csr.CSRMatrix` and
    :class:`~repro.sparse.trisolve.TriangularFactor`.  This tier is the
    **bit-exact reference** and the default: results are identical, bit for
    bit, to every release before the engine existed.

``scipy``
    Dispatch to :mod:`scipy.sparse`'s compiled C kernels through *zero-copy*
    ``csr_array`` views over the existing ``indptr``/``indices``/``data``
    arrays (no data is duplicated; the view is built once per matrix and
    cached).  Triangular solves go through SuperLU's compiled ``gstrs``
    routine with all of :func:`scipy.sparse.linalg.spsolve_triangular`'s
    per-call preparation (triangle assembly, transposition, diagonal
    scaling, index casting) hoisted to a once-per-factor setup.

``numba``
    JIT-compiled fused kernels, auto-detected: the tier registers only when
    :mod:`numba` is importable (install with the ``[accel]`` extra) and is
    cleanly absent otherwise.

Equivalence contract (mirrors the PR 2/3 batched-engine contract): kernels
whose floating-point accumulation order matches the reference — ``rmatvec``/
``rmatmat`` (scatter-add), and the numba loops — are *bit-identical* to the
``numpy`` tier; kernels backed by independently-ordered compiled reductions
(``scipy`` matvec/matmat/trisolve) agree to a stated ``<= 1e-14`` relative
tolerance.  The cross-tier suite in ``tests/test_kernel_engines.py`` asserts
both halves of the contract on the gallery and on hypothesis-generated
matrices.

Selection
---------
``resolve_engine`` accepts a tier name, ``"auto"`` (numba → scipy → numpy),
``None`` (the ambient default: the ``REPRO_KERNELS`` environment variable,
else ``"numpy"``), or a built engine.  The campaign stack threads a spec
value through :func:`effective_kernels` with precedence
``spec < REPRO_KERNELS < explicit flag``.  The same tiers are exposed under
the registry's ``"kernels"`` namespace for spec-driven resolution.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KernelEngine",
    "NumpyEngine",
    "ScipyEngine",
    "NumbaEngine",
    "KERNEL_TIERS",
    "KERNEL_CHOICES",
    "KERNELS_ENV_VAR",
    "available_kernels",
    "default_kernels",
    "effective_kernels",
    "get_engine",
    "resolve_engine",
    "have_scipy",
    "have_numba",
    "as_kernel_vector",
    "as_kernel_block",
]

#: Environment variable naming the ambient default kernel tier.
KERNELS_ENV_VAR = "REPRO_KERNELS"

#: The kernel tiers, in reference-first order.
KERNEL_TIERS = ("numpy", "scipy", "numba")

#: Valid values for ``ExecutionSpec.kernels`` / ``--kernels`` / the env var.
KERNEL_CHOICES = ("auto",) + KERNEL_TIERS

#: ``"auto"`` preference order: best available compiled tier first.
_AUTO_ORDER = ("numba", "scipy", "numpy")


# ---------------------------------------------------------------------- #
# tier availability probes (cached; import errors are the only signal)
# ---------------------------------------------------------------------- #
_AVAILABILITY: dict[str, bool] = {}


def have_scipy() -> bool:
    """True when :mod:`scipy.sparse` is importable (cached probe)."""
    if "scipy" not in _AVAILABILITY:
        try:
            import scipy.sparse  # noqa: F401

            _AVAILABILITY["scipy"] = True
        except ImportError:  # pragma: no cover - scipy present in CI/dev envs
            _AVAILABILITY["scipy"] = False
    return _AVAILABILITY["scipy"]


def have_numba() -> bool:
    """True when :mod:`numba` is importable (cached probe)."""
    if "numba" not in _AVAILABILITY:
        try:
            import numba  # noqa: F401

            _AVAILABILITY["numba"] = True
        except ImportError:
            _AVAILABILITY["numba"] = False
    return _AVAILABILITY["numba"]


def available_kernels() -> tuple[str, ...]:
    """The kernel tiers usable in this environment, reference first."""
    tiers = ["numpy"]
    if have_scipy():
        tiers.append("scipy")
    if have_numba():
        tiers.append("numba")
    return tuple(tiers)


# ---------------------------------------------------------------------- #
# input normalization at the engine boundary
# ---------------------------------------------------------------------- #
def _convert_vector(x) -> np.ndarray:
    """The slow path: densify/retype/flatten an operand (one copy).

    Kept as a separate function so the no-copy regression test can count
    how often the hot loop falls off the fast path (it must be zero).
    """
    return np.asarray(x, dtype=np.float64).ravel()


def as_kernel_vector(x) -> np.ndarray:
    """Normalize a vector operand once, at the engine boundary.

    Conforming inputs — 1-D, float64, C-contiguous ndarrays, which is what
    every solver hot loop produces — pass through untouched (no copy, no
    ``asarray`` dispatch).  Anything else (lists, wrong dtypes, strided
    views, ``(n, 1)`` columns) is converted exactly as the kernels always
    converted it, but in one clearly-identified place.
    """
    if (type(x) is np.ndarray and x.ndim == 1 and x.dtype == np.float64
            and x.flags.c_contiguous):
        return x
    return _convert_vector(x)


def _convert_block(X) -> np.ndarray:
    """Slow-path counterpart of :func:`_convert_vector` for 2-D blocks."""
    return np.asarray(X, dtype=np.float64)


def as_kernel_block(X) -> np.ndarray:
    """Normalize a 2-D block operand at the engine boundary.

    Fortran-ordered float64 blocks (the batched engine's layout) pass
    through untouched — contiguity is *not* forced, matching the original
    ``matmat`` behavior.  Dimensionality/shape checks stay with the caller,
    which owns the error message.
    """
    if type(X) is np.ndarray and X.dtype == np.float64:
        return X
    return _convert_block(X)


# ---------------------------------------------------------------------- #
# the engine protocol
# ---------------------------------------------------------------------- #
class KernelEngine:
    """Protocol for a sparse kernel tier.

    Engines are stateless singletons: any per-matrix preparation (cached
    views, prepared factorizations, workspaces) lives on the matrix/factor
    object in its ``_kernel_cache`` dict, keyed by engine name, so matrices
    stay picklable and engines shareable.

    All methods receive operands already normalized by the caller
    (:func:`as_kernel_vector` / :func:`as_kernel_block`, shape-checked), so
    implementations contain kernels only.
    """

    #: Registry/tier name.
    name: str = "abstract"
    #: True for tiers backed by compiled (C / JIT) kernels.
    compiled: bool = False

    # -- CSR products ------------------------------------------------- #
    def matvec(self, A, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` for a CSRMatrix ``A`` and a normalized vector."""
        raise NotImplementedError

    def rmatvec(self, A, x: np.ndarray) -> np.ndarray:
        """``y = A.T @ x``."""
        raise NotImplementedError

    def matmat(self, A, X: np.ndarray) -> np.ndarray:
        """``Y = A @ X`` for a dense ``(n, B)`` block."""
        raise NotImplementedError

    def rmatmat(self, A, X: np.ndarray) -> np.ndarray:
        """``Y = A.T @ X`` for a dense block."""
        raise NotImplementedError

    # -- triangular solves -------------------------------------------- #
    def trisolve(self, F, b: np.ndarray) -> np.ndarray:
        """Solve ``T x = b`` for a TriangularFactor ``F`` (vector or block)."""
        raise NotImplementedError

    def level_segsum(self, coeff: np.ndarray, gathered: np.ndarray,
                     seg_starts: np.ndarray) -> np.ndarray:
        """The fused per-level gather/segment-sum primitive.

        Given one level's permuted coefficients, the gathered ``x`` values
        they multiply, and the segment start offsets (one per row in the
        level), return the per-row accumulations.  The default is the
        reference formulation every tier's level path must reproduce.
        """
        return np.add.reduceat(coeff * gathered, seg_starts, axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- #
# numpy tier: the bit-exact reference (original kernels, moved verbatim)
# ---------------------------------------------------------------------- #
class NumpyEngine(KernelEngine):
    """The original pure-NumPy kernels — the bit-exact reference tier."""

    name = "numpy"
    compiled = False

    def matvec(self, A, x: np.ndarray) -> np.ndarray:
        if A.nnz == 0:
            return np.zeros(A.shape[0], dtype=np.float64)
        products = A.data * x[A.indices]
        starts, nonempty, all_nonempty = A._structure()
        if all_nonempty:
            return np.add.reduceat(products, starts)
        y = np.zeros(A.shape[0], dtype=np.float64)
        y[nonempty] = np.add.reduceat(products, starts)
        return y

    def rmatvec(self, A, x: np.ndarray) -> np.ndarray:
        y = np.zeros(A.shape[1], dtype=np.float64)
        if A.nnz == 0:
            return y
        np.add.at(y, A.indices, A.data * x[A.row_ids])
        return y

    def matmat(self, A, X: np.ndarray) -> np.ndarray:
        nrows, ncols = A.shape[0], X.shape[1]
        if A.nnz == 0:
            return np.zeros((nrows, ncols), dtype=np.float64)
        if A.nnz * ncols > A._MATMAT_BLOCK_LIMIT:
            Y = np.empty((nrows, ncols), dtype=np.float64)
            for j in range(ncols):
                Y[:, j] = self.matvec(A, np.ascontiguousarray(X[:, j]))
            return Y
        products = A.data[:, None] * X[A.indices, :]
        starts, nonempty, all_nonempty = A._structure()
        if all_nonempty:
            return np.add.reduceat(products, starts, axis=0)
        Y = np.zeros((nrows, ncols), dtype=np.float64)
        Y[nonempty, :] = np.add.reduceat(products, starts, axis=0)
        return Y

    def rmatmat(self, A, X: np.ndarray) -> np.ndarray:
        Y = np.zeros((A.shape[1], X.shape[1]), dtype=np.float64)
        if A.nnz == 0:
            return Y
        np.add.at(Y, A.indices, A.data[:, None] * X[A.row_ids, :])
        return Y

    # -- triangular solves -------------------------------------------- #
    def trisolve(self, F, b: np.ndarray) -> np.ndarray:
        if F.mode == "sequential":
            return self.trisolve_sequential(F, b)
        return self.trisolve_levels(F, b)

    def trisolve_levels(self, F, b: np.ndarray) -> np.ndarray:
        """One vectorized gather + segment sum + scatter per dependency level.

        Vector solves run through per-factor workspaces (see
        ``TriangularFactor._level_workspace``): every level's gather,
        product, segment-sum, subtraction and division lands in preallocated
        buffers, with the identical operations in the identical order as the
        allocating formulation — bit-identical results, no per-level
        temporaries.  Block solves keep the allocating formulation (the
        block axis varies per call and already amortizes allocation).
        """
        x = b.copy()
        block = x.ndim == 2
        rows_all, level_ptr = F._rows, F._level_ptr
        perm_indptr, perm_indices, perm_data = \
            F._perm_indptr, F._perm_indices, F._perm_data
        diag, unit = F.diag, F.unit_diagonal
        if block:
            coeff = perm_data[:, None]
            for lev in range(F.num_levels):
                r0, r1 = level_ptr[lev], level_ptr[lev + 1]
                rows = rows_all[r0:r1]
                e0, e1 = perm_indptr[r0], perm_indptr[r1]
                if e1 > e0:
                    # Every row past level 0 owns >= 1 entry, so the segment
                    # starts are strictly valid reduceat offsets.
                    prods = coeff[e0:e1] * x[perm_indices[e0:e1]]
                    acc = np.add.reduceat(prods, perm_indptr[r0:r1] - e0, axis=0)
                    vals = x[rows] - acc
                else:
                    vals = x[rows]
                if not unit:
                    vals = vals / diag[rows][:, None]
                x[rows] = vals
            return x
        ws_gather, ws_prods, ws_rowbuf, ws_diag = F._level_workspace()
        for lev in range(F.num_levels):
            r0, r1 = level_ptr[lev], level_ptr[lev + 1]
            rows = rows_all[r0:r1]
            e0, e1 = perm_indptr[r0], perm_indptr[r1]
            m = r1 - r0
            vals = np.take(x, rows, out=ws_rowbuf[:m])
            if e1 > e0:
                k = e1 - e0
                gathered = np.take(x, perm_indices[e0:e1], out=ws_gather[:k])
                prods = np.multiply(perm_data[e0:e1], gathered, out=ws_prods[:k])
                acc = np.add.reduceat(prods, perm_indptr[r0:r1] - e0)
                np.subtract(vals, acc, out=vals)
            if not unit:
                d = np.take(diag, rows, out=ws_diag[:m])
                np.divide(vals, d, out=vals)
            x[rows] = vals
        return x

    def trisolve_sequential(self, F, b: np.ndarray) -> np.ndarray:
        """Row-by-row substitution, bit-identical to the level path."""
        x = b.copy()
        block = x.ndim == 2
        indptr, indices, data = F.indptr, F.indices, F.data
        coeff = data[:, None] if block else data
        diag, unit = F.diag, F.unit_diagonal
        order = range(F.n) if F.lower else range(F.n - 1, -1, -1)
        for i in order:
            start, stop = indptr[i], indptr[i + 1]
            if stop > start:
                prods = coeff[start:stop] * x[indices[start:stop]]
                val = x[i] - np.add.reduceat(prods, _SEG0, axis=0)[0]
            else:
                val = x[i]
            x[i] = val if unit else val / diag[i]
        return x


#: Shared zero-offset index for single-segment ``np.add.reduceat`` calls in
#: the sequential path (keeps it allocation-free and — crucially — performs
#: the *same ufunc reduction* as the level-scheduled path, so the two paths
#: agree bit for bit).
_SEG0 = np.zeros(1, dtype=np.int64)


# ---------------------------------------------------------------------- #
# scipy tier: compiled C kernels over zero-copy views
# ---------------------------------------------------------------------- #
class ScipyEngine(KernelEngine):
    """Dispatch to :mod:`scipy.sparse`'s compiled kernels.

    The ``csr_array`` view shares this matrix's ``indptr``/``indices``/
    ``data`` buffers (``copy=False``; verified by the test suite with
    ``np.shares_memory``) and is cached per matrix, so the per-call cost is
    one compiled kernel invocation.  Triangular solves run SuperLU's
    ``gstrs`` with :func:`~scipy.sparse.linalg.spsolve_triangular`'s entire
    per-call preparation hoisted into a once-per-factor setup; factors whose
    diagonal contains zeros or non-finite values fall back to the numpy
    reference path, preserving its Inf/NaN propagation semantics.

    Accumulation order inside scipy's row reductions differs from
    ``np.add.reduceat``'s, so ``matvec``/``matmat``/``trisolve`` carry the
    ``<= 1e-14`` relative contract; ``rmatvec``/``rmatmat`` (scatter-add in
    index order, same as ``np.add.at``) are bit-identical.
    """

    name = "scipy"
    compiled = True

    def _view(self, A):
        """The cached zero-copy ``(csr, csc-transpose)`` views of ``A``."""
        cached = A._kernel_cache.get("scipy")
        if cached is None:
            import scipy.sparse as sp

            csr = sp.csr_array((A.data, A.indices, A.indptr), shape=A.shape,
                               copy=False)
            cached = A._kernel_cache["scipy"] = (csr, csr.T)
        return cached

    def matvec(self, A, x: np.ndarray) -> np.ndarray:
        return self._view(A)[0] @ x

    def rmatvec(self, A, x: np.ndarray) -> np.ndarray:
        return self._view(A)[1] @ x

    def matmat(self, A, X: np.ndarray) -> np.ndarray:
        return self._view(A)[0] @ X

    def rmatmat(self, A, X: np.ndarray) -> np.ndarray:
        return self._view(A)[1] @ X

    # -- triangular solves -------------------------------------------- #
    def _prepared(self, F):
        """Once-per-factor ``gstrs`` arguments (or ``None`` → numpy fallback).

        This performs, ahead of time, exactly what
        ``scipy.sparse.linalg.spsolve_triangular`` does on *every* call:
        assemble the full triangle, transpose the CSR input to CSC
        (``trans="T"``), scale the columns to a unit diagonal, split into
        SuperLU's L/U operands and cast the index arrays — leaving one
        compiled ``gstrs`` call (plus the inverse-diagonal scaling) per
        solve.
        """
        cached = F._kernel_cache.get("scipy", _UNSET)
        if cached is _UNSET:
            cached = F._kernel_cache["scipy"] = self._prepare_gstrs(F)
        return cached

    @staticmethod
    def _prepare_gstrs(F):
        try:
            from scipy.sparse.linalg._dsolve import _superlu  # noqa: F401
        except ImportError:  # pragma: no cover - private API moved
            return None
        import scipy.sparse as sp

        n = F.n
        if n == 0:
            return None
        if F.unit_diagonal:
            diag = np.ones(n, dtype=np.float64)
            invdiag = None
        else:
            diag = F.diag
            if not np.all(np.isfinite(diag)) or np.any(diag == 0.0):
                return None  # poisoned diagonal: keep reference semantics
            invdiag = 1.0 / diag
        # Full triangle (strict part + diagonal) as CSR, then the
        # spsolve_triangular recipe: CSR input → work on A.T in CSC with
        # trans="T", orientation flipped.
        strict = sp.csr_array((F.data, F.indices, F.indptr), shape=(n, n),
                              copy=False)
        T = (strict + sp.diags_array(diag, format="csr")).T  # csc_array
        lower = not F.lower
        if invdiag is not None:
            T = (T.T @ sp.diags_array(invdiag)).T
        T.sum_duplicates()
        if lower:
            L, U = T, sp.csc_array((n, n), dtype=np.float64)
        else:
            L = sp.eye_array(n, dtype=np.float64, format="csc")
            U = T
            U.setdiag(0)
        return {
            "n": n,
            "L": (L.nnz, L.data, L.indices.astype(np.intc), L.indptr.astype(np.intc)),
            "U": (U.nnz, U.data, U.indices.astype(np.intc), U.indptr.astype(np.intc)),
            "invdiag": invdiag,
        }

    def trisolve(self, F, b: np.ndarray) -> np.ndarray:
        prep = self._prepared(F)
        if prep is None:
            return NUMPY_ENGINE.trisolve(F, b)
        from scipy.sparse.linalg._dsolve import _superlu

        n = prep["n"]
        l_nnz, l_data, l_ind, l_ptr = prep["L"]
        u_nnz, u_data, u_ind, u_ptr = prep["U"]
        x, info = _superlu.gstrs("T", n, l_nnz, l_data, l_ind, l_ptr,
                                 n, u_nnz, u_data, u_ind, u_ptr, b.copy())
        if info:  # pragma: no cover - zero diagonals are screened at prep
            return NUMPY_ENGINE.trisolve(F, b)
        invdiag = prep["invdiag"]
        if invdiag is not None:
            x = x * invdiag.reshape(-1, *([1] * (x.ndim - 1)))
        return x


_UNSET = object()


# ---------------------------------------------------------------------- #
# numba tier: JIT-compiled fused kernels (present only when numba is)
# ---------------------------------------------------------------------- #
class NumbaEngine(KernelEngine):
    """JIT-compiled fused CSR/trisolve kernels (requires :mod:`numba`).

    The loops accumulate strictly left-to-right per row — the same order as
    ``np.add.reduceat`` over sorted CSR entries — so this tier is expected
    bit-identical to the reference; the cross-tier suite asserts at least
    the ``<= 1e-14`` contract wherever numba is installed.  Constructing the
    engine without numba raises immediately (``resolve_engine`` turns that
    into a helpful error naming the ``[accel]`` extra).
    """

    name = "numba"
    compiled = True

    def __init__(self):
        if not have_numba():
            raise ImportError(
                "the 'numba' kernel tier requires numba; install the "
                "[accel] extra (pip install repro-ftgmres-sdc[accel])")
        self._k = _build_numba_kernels()

    def matvec(self, A, x: np.ndarray) -> np.ndarray:
        y = np.empty(A.shape[0], dtype=np.float64)
        self._k["matvec"](A.indptr, A.indices, A.data, x, y)
        return y

    def rmatvec(self, A, x: np.ndarray) -> np.ndarray:
        y = np.zeros(A.shape[1], dtype=np.float64)
        self._k["rmatvec"](A.indptr, A.indices, A.data, x, y)
        return y

    def matmat(self, A, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X)
        Y = np.empty((A.shape[0], X.shape[1]), dtype=np.float64)
        self._k["matmat"](A.indptr, A.indices, A.data, X, Y)
        return Y

    def rmatmat(self, A, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X)
        Y = np.zeros((A.shape[1], X.shape[1]), dtype=np.float64)
        self._k["rmatmat"](A.indptr, A.indices, A.data, X, Y)
        return Y

    def trisolve(self, F, b: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(b, dtype=np.float64).copy() \
            if not (b.flags.c_contiguous and b.dtype == np.float64) else b.copy()
        diag = F.diag if not F.unit_diagonal else np.empty(0, dtype=np.float64)
        if x.ndim == 2:
            self._k["trisolve_block"](F.indptr, F.indices, F.data, diag,
                                      F.unit_diagonal, F.lower, x)
        else:
            self._k["trisolve"](F.indptr, F.indices, F.data, diag,
                                F.unit_diagonal, F.lower, x)
        return x


def _build_numba_kernels() -> dict:
    """Compile the fused kernels (called once, only when numba exists)."""
    import numba

    jit = numba.njit(cache=True, fastmath=False)

    @jit
    def _matvec(indptr, indices, data, x, y):
        for i in range(y.shape[0]):
            acc = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                acc += data[p] * x[indices[p]]
            y[i] = acc

    @jit
    def _rmatvec(indptr, indices, data, x, y):
        for i in range(indptr.shape[0] - 1):
            xi = x[i]
            for p in range(indptr[i], indptr[i + 1]):
                y[indices[p]] += data[p] * xi

    @jit
    def _matmat(indptr, indices, data, X, Y):
        ncols = X.shape[1]
        for i in range(Y.shape[0]):
            for c in range(ncols):
                Y[i, c] = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                a = data[p]
                col = indices[p]
                for c in range(ncols):
                    Y[i, c] += a * X[col, c]

    @jit
    def _rmatmat(indptr, indices, data, X, Y):
        ncols = X.shape[1]
        for i in range(indptr.shape[0] - 1):
            for p in range(indptr[i], indptr[i + 1]):
                a = data[p]
                row = indices[p]
                for c in range(ncols):
                    Y[row, c] += a * X[i, c]

    @jit
    def _trisolve(indptr, indices, data, diag, unit, lower, x):
        n = x.shape[0]
        rng = range(n) if lower else range(n - 1, -1, -1)
        for i in rng:
            acc = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                acc += data[p] * x[indices[p]]
            val = x[i] - acc
            x[i] = val if unit else val / diag[i]

    @jit
    def _trisolve_block(indptr, indices, data, diag, unit, lower, x):
        n = x.shape[0]
        ncols = x.shape[1]
        rng = range(n) if lower else range(n - 1, -1, -1)
        for i in rng:
            for c in range(ncols):
                acc = 0.0
                for p in range(indptr[i], indptr[i + 1]):
                    acc += data[p] * x[indices[p], c]
                val = x[i, c] - acc
                x[i, c] = val if unit else val / diag[i]

    return {"matvec": _matvec, "rmatvec": _rmatvec, "matmat": _matmat,
            "rmatmat": _rmatmat, "trisolve": _trisolve,
            "trisolve_block": _trisolve_block}


# ---------------------------------------------------------------------- #
# resolution
# ---------------------------------------------------------------------- #
#: The reference engine, shared by fallbacks and delegation.
NUMPY_ENGINE = NumpyEngine()

_ENGINES: dict[str, KernelEngine] = {"numpy": NUMPY_ENGINE}


def get_engine(name: str) -> KernelEngine:
    """The singleton engine for a tier name (building it on first use)."""
    try:
        return _ENGINES[name]
    except KeyError:
        pass
    if name == "scipy":
        if not have_scipy():
            raise ValueError(
                "the 'scipy' kernel tier requires scipy, which is not "
                "importable in this environment; available tiers: "
                f"{list(available_kernels())}")
        engine = ScipyEngine()
    elif name == "numba":
        if not have_numba():
            raise ValueError(
                "the 'numba' kernel tier requires numba, which is not "
                "installed; install the [accel] extra (pip install "
                f"repro-ftgmres-sdc[accel]); available tiers: "
                f"{list(available_kernels())}")
        engine = NumbaEngine()
    else:
        raise ValueError(
            f"unknown kernel tier {name!r}; expected one of {list(KERNEL_CHOICES)}")
    _ENGINES[name] = engine
    return engine


def default_kernels() -> str:
    """The ambient default tier name: ``$REPRO_KERNELS`` or ``"numpy"``."""
    return os.environ.get(KERNELS_ENV_VAR) or "numpy"


def _resolve_auto() -> str:
    for name in _AUTO_ORDER:
        if name == "numpy" or (name == "scipy" and have_scipy()) \
                or (name == "numba" and have_numba()):
            return name
    return "numpy"  # pragma: no cover - numpy always terminates the chain


def effective_kernels(spec_value: str | None = None,
                      flag: str | None = None) -> str:
    """Resolve the effective tier name with precedence ``spec < env < flag``.

    ``spec_value`` is what a :class:`~repro.specs.ExecutionSpec` carries
    (``None`` means unset), the environment variable ``REPRO_KERNELS``
    overrides it, and an explicit ``flag`` (e.g. the CLI ``--kernels``)
    overrides both.  ``"auto"`` resolves to the best available tier
    (numba → scipy → numpy).  The returned name is validated and available.
    """
    value = flag or os.environ.get(KERNELS_ENV_VAR) or spec_value or "numpy"
    if value not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel tier {value!r}; expected one of {list(KERNEL_CHOICES)}")
    if value == "auto":
        value = _resolve_auto()
    get_engine(value)  # availability check (raises with the install hint)
    return value


def resolve_engine(spec) -> KernelEngine:
    """Coerce an engine spec to a :class:`KernelEngine` instance.

    ``None`` resolves to the ambient default (``$REPRO_KERNELS`` else
    ``"numpy"``), ``"auto"`` to the best available tier, a tier name to its
    singleton; built engines pass through.
    """
    if spec is None:
        spec = default_kernels()
    if isinstance(spec, KernelEngine):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"kernel engine must be a tier name (one of {list(KERNEL_CHOICES)}), "
            f"a KernelEngine, or None; got {type(spec).__name__}")
    if spec == "auto":
        spec = _resolve_auto()
    if spec not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel tier {spec!r}; expected one of {list(KERNEL_CHOICES)}")
    return get_engine(spec)
