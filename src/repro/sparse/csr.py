"""Compressed Sparse Row (CSR) matrix.

CSR is the compute format: the sparse matrix–vector product (SpMV) used by
every Krylov iteration dispatches through a pluggable
:class:`~repro.sparse.kernels.KernelEngine`.  The default ``numpy`` tier
implements SpMV with vectorized NumPy reductions (``np.add.reduceat`` over
the row pointer), which is the fastest pure-NumPy formulation for matrices
whose rows are short and uniform — exactly the finite-difference and
circuit matrices in the paper's evaluation — and stays the bit-exact
reference; the ``scipy``/``numba`` tiers swap in compiled kernels over the
same arrays (see :mod:`repro.sparse.kernels`).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels import as_kernel_block, as_kernel_vector, resolve_engine

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in CSR format with the operations Krylov solvers need.

    Parameters
    ----------
    shape : tuple of int
        ``(nrows, ncols)``.
    indptr : array_like of int
        Row pointer of length ``nrows + 1``.
    indices : array_like of int
        Column indices of the stored entries, length ``nnz``.
    data : array_like of float
        Stored values, length ``nnz``.
    engine : str, KernelEngine or None
        The kernel tier computing this matrix's products: a tier name
        (``"numpy"``/``"scipy"``/``"numba"``/``"auto"``), a built engine, or
        ``None`` for the ambient default (``$REPRO_KERNELS``, else
        ``"numpy"``).  See :mod:`repro.sparse.kernels`.

    Notes
    -----
    Column indices within a row are kept sorted (the validating ``__init__``
    enforces this so property-based tests can build CSR matrices directly).
    Duplicate ``(row, col)`` entries are legal — reductions sum them; the
    canonical constructor :meth:`from_coo` additionally collapses duplicates.
    """

    def __init__(self, shape, indptr, indices, data, *, check: bool = True,
                 engine=None):
        nrows, ncols = int(shape[0]), int(shape[1])
        self.shape = (nrows, ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self._engine = resolve_engine(engine)
        # Lazily built structure caches (see _structure / row_ids).  They
        # depend only on indptr, which is never mutated in place, so they
        # stay valid for the lifetime of the instance.
        self._structure_cache: tuple | None = None
        self._row_ids_cache: np.ndarray | None = None
        # Per-engine prepared state (e.g. the scipy tier's zero-copy views),
        # keyed by engine name; engines stay stateless singletons.
        self._kernel_cache: dict = {}
        if check:
            self._validate()

    def __getstate__(self) -> dict:
        """Pickle without the derived caches (workers rebuild them lazily).

        The engine is pickled by tier name — engine objects may hold
        unpicklable compiled state, and the receiving process re-resolves
        its own singleton.
        """
        state = self.__dict__.copy()
        state["_structure_cache"] = None
        state["_row_ids_cache"] = None
        state["_kernel_cache"] = {}
        state["_engine"] = self._engine.name
        return state

    def __setstate__(self, state: dict) -> None:
        state["_engine"] = resolve_engine(state["_engine"])
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # kernel engine
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The :class:`~repro.sparse.kernels.KernelEngine` computing products."""
        return self._engine

    @property
    def engine_name(self) -> str:
        """The kernel tier name (``"numpy"``, ``"scipy"`` or ``"numba"``)."""
        return self._engine.name

    def with_engine(self, engine) -> "CSRMatrix":
        """This matrix on another kernel tier, sharing all data arrays.

        Returns ``self`` when the tier is unchanged; otherwise a new
        :class:`CSRMatrix` sharing ``indptr``/``indices``/``data`` (and the
        derived structure caches) with this one — no numerical data is
        copied.
        """
        resolved = resolve_engine(engine)
        if resolved is self._engine:
            return self
        other = CSRMatrix.__new__(CSRMatrix)
        other.__dict__.update(self.__dict__)
        other._engine = resolved
        return other

    # ------------------------------------------------------------------ #
    # construction / validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape[0] != nrows + 1:
            raise ValueError(
                f"indptr must have length nrows+1={nrows + 1}, got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr[-1] must equal the number of stored entries")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have the same length")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= ncols:
                raise IndexError("column index out of bounds")
            # Column order within each row must be non-decreasing: the
            # triangular-solve layer and ILU(0) rely on the lower|diag|upper
            # layout of sorted rows, and an unsorted row would silently
            # produce wrong factors rather than an error.  (Duplicates stay
            # allowed; reductions sum them.)
            within_row = self.row_ids[1:] == self.row_ids[:-1]
            if np.any(np.diff(self.indices)[within_row] < 0):
                raise ValueError("column indices must be sorted within each row")

    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build a CSR matrix from a :class:`~repro.sparse.coo.COOMatrix`.

        Duplicate ``(row, col)`` triplets are summed; explicit zeros are kept
        (they do not affect any algorithm and keeping them makes round-trips
        exact).
        """
        nrows, ncols = coo.shape
        if coo.nnz == 0:
            return cls((nrows, ncols), np.zeros(nrows + 1, dtype=np.int64), [], [])
        # Sort by (row, col) then collapse duplicates.
        order = np.lexsort((coo.cols, coo.rows))
        rows = coo.rows[order]
        cols = coo.cols[order]
        vals = coo.values[order]
        # Identify the first element of each unique (row, col) run.
        new_run = np.empty(rows.shape[0], dtype=bool)
        new_run[0] = True
        new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        run_starts = np.flatnonzero(new_run)
        summed = np.add.reduceat(vals, run_starts)
        rows_u = rows[run_starts]
        cols_u = cols[run_starts]
        counts = np.bincount(rows_u, minlength=nrows)
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls((nrows, ncols), indptr, cols_u, summed, check=False)

    @classmethod
    def from_dense(cls, dense, tol: float = 0.0) -> "CSRMatrix":
        """Build a CSR matrix from a dense array, dropping ``|a_ij| <= tol``."""
        from repro.sparse.coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense, tol=tol))

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The ``n x n`` identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.ones(n, dtype=np.float64)
        return cls((n, n), indptr, indices, data, check=False)

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any ``scipy.sparse`` matrix (converted to CSR)."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(csr.shape, csr.indptr, csr.indices, csr.data)

    def to_scipy(self):
        """Return the equivalent ``scipy.sparse.csr_matrix`` (for validation)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.shape[0])

    def _structure(self) -> tuple[np.ndarray, np.ndarray, bool]:
        """Cached row structure used by every :meth:`matvec`.

        Returns ``(starts, nonempty, all_nonempty)`` where ``starts`` are the
        ``np.add.reduceat`` segment offsets of the nonempty rows, ``nonempty``
        is the boolean row mask, and ``all_nonempty`` short-circuits the
        masked scatter for matrices without empty rows (the common case for
        the paper's problems).
        """
        cache = self._structure_cache
        if cache is None:
            row_lengths = np.diff(self.indptr)
            nonempty = row_lengths > 0
            all_nonempty = bool(nonempty.all()) if nonempty.size else True
            starts = self.indptr[:-1] if all_nonempty else self.indptr[:-1][nonempty]
            cache = self._structure_cache = (starts, nonempty, all_nonempty)
        return cache

    @property
    def row_ids(self) -> np.ndarray:
        """Row index of every stored entry (cached, read-only).

        This is the ``np.repeat`` expansion used by :meth:`rmatvec`,
        :meth:`tocoo`, :meth:`todense` and the diagonal-scaling helpers.
        The returned array is marked non-writable; ``copy()`` it to mutate.
        """
        if self._row_ids_cache is None:
            row_ids = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
            row_ids.setflags(write=False)
            self._row_ids_cache = row_ids
        return self._row_ids_cache

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} outside matrix with {self.shape[0]} rows")
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (missing entries are 0).

        Fully vectorized: diagonal entries are the stored entries whose row
        and column indices coincide, and duplicates (allowed by the
        validating constructor) are summed, as before.
        """
        n = min(self.shape)
        if self.nnz == 0 or n == 0:
            return np.zeros(n, dtype=np.float64)
        on_diag = self.row_ids == self.indices
        return np.bincount(self.row_ids[on_diag].astype(np.int64),
                           weights=self.data[on_diag], minlength=n)[:n]

    def todense(self) -> np.ndarray:
        """Return a dense copy of the matrix."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.row_ids, self.indices), self.data)
        return dense

    def tocoo(self):
        """Return the matrix in COO format."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix(self.shape, rows=self.row_ids.copy(), cols=self.indices.copy(),
                         values=self.data.copy())

    def copy(self) -> "CSRMatrix":
        """Deep copy (on the same kernel engine)."""
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), check=False, engine=self._engine)

    # ------------------------------------------------------------------ #
    # numerical kernels
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``y = A @ x`` (the GMRES hot kernel).

        Normalization happens once, here at the engine boundary: conforming
        float64 vectors pass straight to the engine with no copy, anything
        else is converted exactly once per call.  The default ``numpy``
        engine forms the products ``data * x[indices]`` in one vectorized
        pass and reduces per row with ``np.add.reduceat``; rows with no
        stored entries produce exactly 0.
        """
        x = as_kernel_vector(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[1]} columns, vector has {x.shape[0]}"
            )
        return self._engine.matvec(self, x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Transpose matrix–vector product ``y = A.T @ x``."""
        x = as_kernel_vector(x)
        if x.shape[0] != self.shape[0]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[0]} rows, vector has {x.shape[0]}"
            )
        return self._engine.rmatvec(self, x)

    #: Above this many elements in the ``(nnz, B)`` product block, ``matmat``
    #: sweeps columns through the cache-resident 1-D kernel instead of
    #: forming the block in one pass: the single-pass gather's intermediates
    #: fall out of cache and it becomes memory-bound (measured ~4x slower at
    #: the paper's medium scale), while the column sweep reuses the same hot
    #: ``(nnz,)`` scratch for every right-hand side.  Both paths produce
    #: bit-identical columns.
    _MATMAT_BLOCK_LIMIT = 1 << 16

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Sparse matrix–matrix product ``Y = A @ X`` for a dense block ``X``.

        The multi-RHS generalization of :meth:`matvec`.  Small blocks take a
        single-pass kernel (one 2-D gather forming the ``(nnz, B)`` product
        block, one ``np.add.reduceat`` along axis 0); large blocks sweep
        columns through the 1-D kernel, which keeps its intermediates
        cache-resident.  Because ``reduceat`` accumulates each column in the
        same sequential order either way, every column of the result is
        *bit-identical* to ``matvec(X[:, b])`` regardless of the path taken
        — the batched campaign engine relies on this to stay equivalent to
        serial trials.
        """
        X = as_kernel_block(X)
        if X.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[1]} columns, block has {X.shape[0]} rows"
            )
        return self._engine.matmat(self, X)

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """Transpose matrix–matrix product ``Y = A.T @ X`` for a dense block."""
        X = as_kernel_block(X)
        if X.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[0]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[0]} rows, block has {X.shape[0]} rows"
            )
        return self._engine.rmatmat(self, X)

    def __matmul__(self, x):
        """``A @ x``: 1-D operands dispatch to :meth:`matvec`, 2-D to :meth:`matmat`."""
        arr = np.asarray(x)
        if arr.ndim == 2:
            return self.matmat(arr)
        return self.matvec(arr)

    def transpose(self) -> "CSRMatrix":
        """Return ``A.T`` as a new CSR matrix."""
        return self.tocoo().transpose().tocsr()

    def scale(self, alpha: float) -> "CSRMatrix":
        """Return ``alpha * A`` as a new CSR matrix with the same pattern."""
        out = self.copy()
        out.data *= float(alpha)
        return out

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Return ``A + B`` (shapes must match)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        from repro.sparse.coo import COOMatrix

        a = self.tocoo()
        b = other.tocoo()
        merged = COOMatrix(
            self.shape,
            rows=np.concatenate([a.rows, b.rows]),
            cols=np.concatenate([a.cols, b.cols]),
            values=np.concatenate([a.values, b.values]),
        )
        return merged.tocsr()

    # ------------------------------------------------------------------ #
    # structural / analytical queries used by Table I
    # ------------------------------------------------------------------ #
    def is_pattern_symmetric(self, tol: float = 0.0) -> bool:
        """True if the *nonzero pattern* is symmetric (values may differ)."""
        if self.shape[0] != self.shape[1]:
            return False
        a = self.drop_small(tol) if tol > 0 else self
        at = a.transpose()
        if a.nnz != at.nnz:
            return False
        return (
            np.array_equal(a.indptr, at.indptr)
            and np.array_equal(a.indices, at.indices)
        )

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """True if ``A`` is numerically symmetric to relative tolerance ``tol``."""
        if self.shape[0] != self.shape[1]:
            return False
        diff = self.add(self.transpose().scale(-1.0))
        scale = np.abs(self.data).max() if self.nnz else 1.0
        if diff.nnz == 0:
            return True
        return bool(np.abs(diff.data).max() <= tol * max(scale, 1.0))

    def drop_small(self, tol: float) -> "CSRMatrix":
        """Return a copy with entries ``|a_ij| <= tol`` removed from the pattern."""
        keep = np.abs(self.data) > tol
        coo = self.tocoo()
        from repro.sparse.coo import COOMatrix

        pruned = COOMatrix(self.shape, rows=coo.rows[keep], cols=coo.cols[keep],
                           values=coo.values[keep])
        return pruned.tocsr()

    def has_full_structural_rank(self) -> bool:
        """True if a perfect matching exists between rows and columns.

        This is the "structural full rank" property reported in the paper's
        Table I.  We compute it via maximum bipartite matching on the nonzero
        pattern (Hopcroft–Karp through :mod:`scipy.sparse.csgraph` when
        available, with a pure-Python augmenting-path fallback).
        """
        n = min(self.shape)
        try:
            from scipy.sparse.csgraph import maximum_bipartite_matching

            match = maximum_bipartite_matching(self.to_scipy(), perm_type="column")
            return int(np.count_nonzero(match >= 0)) == n
        except Exception:  # pragma: no cover - exercised only without scipy
            return self._structural_rank_fallback() == n

    def _structural_rank_fallback(self) -> int:
        """Simple augmenting-path bipartite matching (O(V·E)), rows -> cols."""
        nrows, ncols = self.shape
        match_col = np.full(ncols, -1, dtype=np.int64)

        def try_assign(row: int, visited: np.ndarray) -> bool:
            cols, _ = self.row(row)
            for c in cols:
                if not visited[c]:
                    visited[c] = True
                    if match_col[c] == -1 or try_assign(match_col[c], visited):
                        match_col[c] = row
                        return True
            return False

        rank = 0
        for r in range(nrows):
            visited = np.zeros(ncols, dtype=bool)
            if try_assign(r, visited):
                rank += 1
        return rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
