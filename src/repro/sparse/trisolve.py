"""Level-scheduled sparse triangular solves.

A sparse triangular solve is the kernel behind every stationary
preconditioner (Gauss–Seidel, SSOR) and behind applying an incomplete LU
factorization.  Row ``i`` of a lower-triangular solve depends only on the
rows named by its strictly-lower column indices, so the rows fall into
*dependency levels*: level 0 holds the rows with no off-diagonal entries,
level ``k`` the rows whose deepest dependency sits at level ``k-1``.  All
rows inside one level are independent and can be solved in a single
vectorized gather/segment-sum/scatter, turning ``n`` Python iterations per
solve into one iteration per level (Saad, *Iterative Methods for Sparse
Linear Systems*, ch. 11; "level scheduling").

For the paper's 2-D grid problems the level structure is the diagonal
wavefront of the grid — ``O(sqrt(n))`` levels of ``O(sqrt(n))`` rows — so
the level-scheduled path replaces ~n-iteration sweeps with ~2·sqrt(n)
vectorized steps.  For pathologically sequential structures (a tridiagonal
matrix has one row per level) the engine falls back to a row-sequential
sweep that performs the *bit-identical* floating-point operations; the two
paths are interchangeable and the test suite asserts their equality.

:class:`TriangularFactor` is the unit of currency: CSR data split at
construction into a strict triangle plus a dense diagonal (or an implicit
unit diagonal), with the level schedule computed once and reused by every
solve.  Preconditioners build their factors once in ``__init__`` and call
:meth:`TriangularFactor.solve` per application.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels import NUMPY_ENGINE, resolve_engine

__all__ = ["TriangularFactor", "split_triangle", "SEQUENTIAL_LEVEL_THRESHOLD"]

#: Below this mean number of rows per level the vectorized path's slicing
#: overhead exceeds its gain and ``mode="auto"`` picks the sequential sweep.
SEQUENTIAL_LEVEL_THRESHOLD = 4.0

def split_triangle(indptr, indices, data, n: int, part: str, row_ids=None):
    """Extract the strict lower or upper triangle of square CSR arrays.

    Returns ``(indptr, indices, data)`` of the strict triangle, preserving
    the within-row column order of the input.  ``row_ids`` may supply the
    precomputed row index of every stored entry (e.g. the cached
    ``CSRMatrix.row_ids``) to skip the ``np.repeat`` expansion.
    """
    if part not in ("lower", "upper"):
        raise ValueError(f"part must be 'lower' or 'upper', got {part!r}")
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if row_ids is None:
        row_ids = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep = indices < row_ids if part == "lower" else indices > row_ids
    counts = np.bincount(row_ids[keep], minlength=n)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=out_indptr[1:])
    # Boolean fancy indexing already yields fresh arrays; no copies needed.
    return out_indptr, indices[keep], data[keep]


class TriangularFactor:
    """A sparse triangular matrix prepared for repeated fast solves.

    Parameters
    ----------
    n : int
        Dimension.
    indptr, indices, data : array_like
        CSR arrays of the *strict* triangle (no diagonal entries).  Column
        indices must all lie strictly below (``lower=True``) or strictly
        above (``lower=False``) the diagonal; violations raise.
    diag : array_like or None
        Dense diagonal of length ``n``; the solve divides by it.  ``None``
        means a unit diagonal (no division), e.g. the L factor of ILU.
    lower : bool
        Orientation; decides forward vs backward substitution.
    mode : {"auto", "level", "sequential"}
        Default solve path.  ``"auto"`` picks the level-scheduled kernel
        unless the schedule is too sequential to pay off (fewer than
        :data:`SEQUENTIAL_LEVEL_THRESHOLD` rows per level on average).
    check : bool
        Verify the strict-triangle invariant (an O(nnz) pass).  Callers
        whose arrays come from :func:`split_triangle` pass ``False`` —
        strictness holds by construction.
    engine : str, KernelEngine or None
        The kernel tier computing default solves (see
        :mod:`repro.sparse.kernels`); ``None`` resolves the ambient default.
        Explicit ``mode=`` overrides on :meth:`solve` always run the numpy
        reference paths — the documented level/sequential bit-identity
        contract is a property of the reference kernels.
    """

    def __init__(self, n, indptr, indices, data, diag=None, *, lower: bool = True,
                 mode: str = "auto", check: bool = True, engine=None):
        if mode not in ("auto", "level", "sequential"):
            raise ValueError(f"mode must be 'auto', 'level' or 'sequential', got {mode!r}")
        self.n = int(n)
        self._engine = resolve_engine(engine)
        self._kernel_cache: dict = {}
        self._ws = None
        self.lower = bool(lower)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        if self.indptr.shape[0] != self.n + 1:
            raise ValueError(f"indptr must have length n+1={self.n + 1}, "
                             f"got {self.indptr.shape[0]}")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have the same length")
        if diag is None:
            self.unit_diagonal = True
            self.diag = None
        else:
            self.unit_diagonal = False
            self.diag = np.ascontiguousarray(diag, dtype=np.float64)
            if self.diag.shape[0] != self.n:
                raise ValueError(f"diag must have length {self.n}, got {self.diag.shape[0]}")
        if check:
            self._check_strict()
        self._build_schedule()
        if mode == "auto":
            mode = "level" if self.mean_rows_per_level >= SEQUENTIAL_LEVEL_THRESHOLD \
                else "sequential"
        self.mode = mode

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr(cls, A, part: str = "lower", diag=None, *, unit_diagonal: bool = False,
                 mode: str = "auto", engine=None) -> "TriangularFactor":
        """Build a factor from the triangle of a square :class:`CSRMatrix`.

        ``diag=None`` extracts the diagonal of ``A`` (missing entries are 0
        and will poison the solve — pass a corrected diagonal when the
        matrix may lack one).  ``unit_diagonal=True`` ignores ``diag``.
        ``engine=None`` inherits ``A``'s kernel engine, so preconditioners
        built from an engine-bound matrix solve on the same tier.
        """
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"triangular factors require a square matrix, got {A.shape}")
        n = A.shape[0]
        indptr, indices, data = split_triangle(A.indptr, A.indices, A.data, n, part,
                                               row_ids=A.row_ids)
        if unit_diagonal:
            d = None
        else:
            d = A.diagonal() if diag is None else diag
        if engine is None:
            engine = getattr(A, "engine", None)
        return cls(n, indptr, indices, data, d, lower=(part == "lower"), mode=mode,
                   check=False, engine=engine)

    def _check_strict(self) -> None:
        if self.indices.size == 0:
            return
        row_ids = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        if self.lower:
            bad = self.indices >= row_ids
        else:
            bad = self.indices <= row_ids
        if bad.any():
            side = "strictly lower" if self.lower else "strictly upper"
            where = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"entry (row {int(row_ids[where])}, col {int(self.indices[where])}) is not "
                f"{side} triangular")
        if self.indices.min() < 0 or self.indices.max() >= self.n:
            raise IndexError("column index out of bounds")

    def _build_schedule(self) -> None:
        """Compute dependency levels and the level-permuted entry arrays.

        Runs once per factor; the per-row Python loop here is setup cost
        amortized over every subsequent solve.
        """
        n, indptr, indices = self.n, self.indptr, self.indices
        # The one sequential pass of the whole engine: plain-list traversal
        # of the entries is markedly cheaper than per-row numpy calls for
        # the short rows typical of the paper's matrices.
        ip = indptr.tolist()
        ind = indices.tolist()
        lv = [0] * n
        order = range(n) if self.lower else range(n - 1, -1, -1)
        for i in order:
            deepest = -1
            for p in range(ip[i], ip[i + 1]):
                d = lv[ind[p]]
                if d > deepest:
                    deepest = d
            lv[i] = deepest + 1
        level = np.asarray(lv, dtype=np.int64) if n else np.zeros(0, dtype=np.int64)
        self.num_levels = int(level.max()) + 1 if n else 0
        self.levels = level
        # Rows grouped by level; within a level keep the natural sweep order
        # (ascending for forward, descending for backward substitution) so
        # the permutation is deterministic and cache-friendly.
        if self.lower:
            rows = np.argsort(level, kind="stable")
        else:
            rows = (n - 1) - np.argsort(level[::-1], kind="stable")
        counts = np.bincount(level, minlength=self.num_levels) if n else \
            np.zeros(0, dtype=np.int64)
        level_ptr = np.zeros(self.num_levels + 1, dtype=np.int64)
        np.cumsum(counts, out=level_ptr[1:])
        # Permute the CSR entries into level order once, so each level's
        # gather/segment-sum works on one contiguous slice.
        row_counts = (indptr[1:] - indptr[:-1])[rows]
        perm_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(row_counts, out=perm_indptr[1:])
        total = int(perm_indptr[-1])
        if total:
            entry_idx = (np.arange(total, dtype=np.int64)
                         + np.repeat(indptr[rows] - perm_indptr[:-1], row_counts))
            self._perm_indices = indices[entry_idx]
            self._perm_data = self.data[entry_idx]
        else:
            self._perm_indices = np.zeros(0, dtype=np.int64)
            self._perm_data = np.zeros(0, dtype=np.float64)
        self._rows = rows
        self._level_ptr = level_ptr
        self._perm_indptr = perm_indptr
        self.mean_rows_per_level = float(n) / self.num_levels if self.num_levels else 0.0

    # ------------------------------------------------------------------ #
    # solves
    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray, mode: str | None = None) -> np.ndarray:
        """Solve ``T x = b`` by substitution; returns a fresh array.

        ``b`` may be a vector of length ``n`` or a multi-RHS block of shape
        ``(n, B)`` — every level's gather/segment-sum/scatter generalizes to
        ``(rows_in_level, B)`` slabs, and because ``np.add.reduceat`` reduces
        each column in the same sequential order as the 1-D kernel, column
        ``b`` of a block solve is *bit-identical* to ``solve(b[:, b])``.

        ``mode`` overrides the factor's default path; the level-scheduled
        and row-sequential paths produce bit-identical results.  Default
        solves (``mode=None``) dispatch to the factor's kernel engine; an
        explicit ``mode`` always runs the corresponding numpy reference
        path, which is what the bit-identity contract is stated for.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2):
            raise ValueError(f"b must be a vector or a 2-D block, got shape {b.shape}")
        if b.shape[0] != self.n:
            raise ValueError(
                f"b has {b.shape[0]} rows, expected {self.n} "
                f"(a length-{self.n} vector or a ({self.n}, B) block)")
        if mode is None:
            return self._engine.trisolve(self, b)
        if mode == "sequential":
            return self._solve_sequential(b)
        if mode != "level":
            raise ValueError(f"mode must be 'level' or 'sequential', got {mode!r}")
        return self._solve_levels(b)

    def _level_workspace(self) -> tuple:
        """Preallocated buffers for the reference 1-D level solve.

        Sized once per factor to the widest level: ``(gather, products,
        row-values, diagonal)`` scratch, sliced per level so the hot loop
        performs zero allocations.  Built lazily — factors that only ever
        run block solves or compiled tiers never pay for it.
        """
        ws = self._ws
        if ws is None:
            level_entry = self._perm_indptr[self._level_ptr]
            max_entries = int(np.diff(level_entry).max()) if self.num_levels else 0
            max_rows = int(np.diff(self._level_ptr).max()) if self.num_levels else 0
            ws = self._ws = (
                np.empty(max_entries, dtype=np.float64),
                np.empty(max_entries, dtype=np.float64),
                np.empty(max_rows, dtype=np.float64),
                np.empty(max_rows, dtype=np.float64),
            )
        return ws

    def _solve_levels(self, b: np.ndarray) -> np.ndarray:
        """One vectorized gather + segment sum + scatter per dependency level.

        Handles vectors and ``(n, B)`` blocks with the same code: the gathers
        pick whole rows of ``x``, the segment sum runs along axis 0, and the
        diagonal scaling broadcasts across the block axis.  (Implemented by
        the reference :class:`~repro.sparse.kernels.NumpyEngine`; kept as a
        method because the equivalence suites exercise the paths by name.)
        """
        return NUMPY_ENGINE.trisolve_levels(self, b)

    def _solve_sequential(self, b: np.ndarray) -> np.ndarray:
        """Row-by-row substitution, bit-identical to the level path."""
        return NUMPY_ENGINE.trisolve_sequential(self, b)

    # ------------------------------------------------------------------ #
    # kernel engine / pickling
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The :class:`~repro.sparse.kernels.KernelEngine` for default solves."""
        return self._engine

    @property
    def engine_name(self) -> str:
        """The kernel tier name (``"numpy"``, ``"scipy"`` or ``"numba"``)."""
        return self._engine.name

    def with_engine(self, engine) -> "TriangularFactor":
        """This factor on another kernel tier, sharing all data and schedule."""
        resolved = resolve_engine(engine)
        if resolved is self._engine:
            return self
        other = TriangularFactor.__new__(TriangularFactor)
        other.__dict__.update(self.__dict__)
        other._engine = resolved
        return other

    def __getstate__(self) -> dict:
        """Pickle by tier name, without per-engine caches and workspaces."""
        state = self.__dict__.copy()
        state["_kernel_cache"] = {}
        state["_ws"] = None
        state["_engine"] = self._engine.name
        return state

    def __setstate__(self, state: dict) -> None:
        state["_engine"] = resolve_engine(state["_engine"])
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Stored strict-triangle entries (the diagonal is held densely)."""
        return int(self.data.shape[0])

    def schedule_stats(self) -> dict:
        """Level-schedule shape, for benchmarks and reports."""
        return {
            "n": self.n,
            "nnz": self.nnz,
            "num_levels": self.num_levels,
            "mean_rows_per_level": round(self.mean_rows_per_level, 3),
            "mode": self.mode,
        }

    def to_csr(self):
        """The full triangle (strict part + diagonal) as a :class:`CSRMatrix`.

        For validation against reference solvers; not used on the hot path.
        """
        from repro.sparse.coo import COOMatrix

        row_ids = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        diag = np.ones(self.n, dtype=np.float64) if self.unit_diagonal else self.diag
        diag_rows = np.arange(self.n, dtype=np.int64)
        coo = COOMatrix(
            (self.n, self.n),
            rows=np.concatenate([row_ids, diag_rows]),
            cols=np.concatenate([self.indices, diag_rows]),
            values=np.concatenate([self.data, diag]),
        )
        return coo.tocsr()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "lower" if self.lower else "upper"
        return (f"TriangularFactor(n={self.n}, nnz={self.nnz}, {kind}, "
                f"levels={self.num_levels}, mode={self.mode!r})")
