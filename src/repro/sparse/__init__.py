"""Sparse-matrix substrate.

The paper's experiments run on Trilinos/Tpetra sparse operators.  This
subpackage rebuilds the pieces the algorithms actually need, from scratch:

* :class:`~repro.sparse.coo.COOMatrix` — coordinate-format builder.
* :class:`~repro.sparse.csr.CSRMatrix` — compressed-sparse-row storage with a
  vectorized sparse matrix–vector product (the dominant kernel of GMRES).
* :class:`~repro.sparse.linear_operator.LinearOperator` — the abstraction the
  Krylov solvers are written against, so dense arrays, our CSR matrices,
  ``scipy.sparse`` matrices, and matrix-free callables are all accepted.
* :class:`~repro.sparse.trisolve.TriangularFactor` — level-scheduled sparse
  triangular solves (the kernel behind the stationary/ILU preconditioners).
* Norm computations (:mod:`repro.sparse.norms`) used by the SDC detector
  bound ``|h_ij| <= ||A||_2 <= ||A||_F``.
* Matrix-Market I/O (:mod:`repro.sparse.mmio`) so external matrices (e.g. the
  real ``mult_dcop_03``) can be dropped in when available.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.linear_operator import LinearOperator, aslinearoperator, MatrixFreeOperator
from repro.sparse.norms import (
    frobenius_norm,
    one_norm,
    inf_norm,
    two_norm_estimate,
    hessenberg_bound,
)
from repro.sparse.ops import spmv, spmv_transpose, sparse_add, sparse_scale, extract_diagonal
from repro.sparse.trisolve import TriangularFactor, split_triangle
from repro.sparse.mmio import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "TriangularFactor",
    "split_triangle",
    "LinearOperator",
    "MatrixFreeOperator",
    "aslinearoperator",
    "frobenius_norm",
    "one_norm",
    "inf_norm",
    "two_norm_estimate",
    "hessenberg_bound",
    "spmv",
    "spmv_transpose",
    "sparse_add",
    "sparse_scale",
    "extract_diagonal",
    "read_matrix_market",
    "write_matrix_market",
]
