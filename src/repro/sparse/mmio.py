"""Minimal Matrix-Market (``.mtx``) reader and writer.

The paper's nonsymmetric test problem, ``mult_dcop_03``, is distributed by
the SuiteSparse/UF collection in Matrix-Market format.  This module lets a
user who *does* have the file drop it straight into the experiment harness
(``repro.experiments`` accepts a path), while the default configuration uses
the synthetic surrogate from :mod:`repro.gallery.circuit`.

Only the ``matrix coordinate real/integer/pattern`` and ``matrix array real``
flavours are supported, with ``general``, ``symmetric`` and ``skew-symmetric``
storage — enough for the SuiteSparse matrices relevant here.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open_text(path: Path, mode: str = "rt"):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def read_matrix_market(path) -> CSRMatrix:
    """Read a Matrix-Market file and return a :class:`CSRMatrix`.

    Supports plain and gzip-compressed files, coordinate and array formats,
    real/integer/pattern fields, and general/symmetric/skew-symmetric
    symmetry.  Pattern matrices get value 1.0 for every stored entry.
    """
    path = Path(path)
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path} is not a Matrix-Market file (bad banner)")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise ValueError(f"malformed Matrix-Market banner: {header!r}")
        _, obj, fmt, field, symmetry = tokens[:5]
        obj, fmt, field, symmetry = obj.lower(), fmt.lower(), field.lower(), symmetry.lower()
        if obj != "matrix":
            raise ValueError(f"unsupported Matrix-Market object {obj!r}")
        if field == "complex":
            raise ValueError("complex matrices are not supported")

        # Skip comments.
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        size_tokens = line.split()

        if fmt == "coordinate":
            nrows, ncols, nnz = (int(t) for t in size_tokens[:3])
            rows = np.empty(nnz, dtype=np.int64)
            cols = np.empty(nnz, dtype=np.int64)
            vals = np.empty(nnz, dtype=np.float64)
            for k in range(nnz):
                parts = fh.readline().split()
                rows[k] = int(parts[0]) - 1
                cols[k] = int(parts[1]) - 1
                vals[k] = 1.0 if field == "pattern" else float(parts[2])
            coo = COOMatrix((nrows, ncols), rows=rows, cols=cols, values=vals)
            if symmetry in ("symmetric", "skew-symmetric"):
                off_diag = rows != cols
                sign = -1.0 if symmetry == "skew-symmetric" else 1.0
                coo.extend(cols[off_diag], rows[off_diag], sign * vals[off_diag])
            return coo.tocsr()

        if fmt == "array":
            nrows, ncols = (int(t) for t in size_tokens[:2])
            values = np.array([float(fh.readline()) for _ in range(nrows * ncols)],
                              dtype=np.float64)
            dense = values.reshape((ncols, nrows)).T  # column-major storage
            if symmetry == "symmetric":
                dense = np.tril(dense) + np.tril(dense, -1).T
            elif symmetry == "skew-symmetric":
                dense = np.tril(dense) - np.tril(dense, -1).T
            return CSRMatrix.from_dense(dense)

        raise ValueError(f"unsupported Matrix-Market format {fmt!r}")


def write_matrix_market(path, A: CSRMatrix, comment: str = "") -> None:
    """Write a :class:`CSRMatrix` to ``path`` in coordinate/real/general form."""
    path = Path(path)
    coo = A.tocoo()
    with _open_text(path, "wt") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{A.shape[0]} {A.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            fh.write(f"{int(r) + 1} {int(c) + 1} {v:.17g}\n")
