"""Free-function sparse kernels.

Thin functional wrappers over :class:`~repro.sparse.csr.CSRMatrix` methods,
provided so experiment scripts and the fault-injection targets can refer to
the kernels by name (the paper's discussion is organized around kernels:
sparse matrix–vector multiply, orthogonalization, norms).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["spmv", "spmv_transpose", "sparse_add", "sparse_scale", "extract_diagonal"]


def spmv(A: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix–vector product ``A @ x``."""
    return A.matvec(x)


def spmv_transpose(A: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Transpose sparse matrix–vector product ``A.T @ x``."""
    return A.rmatvec(x)


def sparse_add(A: CSRMatrix, B: CSRMatrix) -> CSRMatrix:
    """Matrix sum ``A + B``."""
    return A.add(B)


def sparse_scale(A: CSRMatrix, alpha: float) -> CSRMatrix:
    """Scalar multiple ``alpha * A``."""
    return A.scale(alpha)


def extract_diagonal(A: CSRMatrix) -> np.ndarray:
    """Main diagonal of ``A`` as a dense vector."""
    return A.diagonal()
