"""The operator abstraction the Krylov solvers are written against.

GMRES, FGMRES, FT-GMRES and CG only ever need ``y = A @ x``; expressing the
solvers against :class:`LinearOperator` lets users pass:

* a :class:`repro.sparse.csr.CSRMatrix`,
* a dense ``numpy.ndarray``,
* any ``scipy.sparse`` matrix,
* an arbitrary matrix-free callable (:class:`MatrixFreeOperator`).

The fault-injection machinery also wraps operators (see
:class:`repro.faults.targets.FaultyOperator`) so SDC can be injected into the
SpMV result without touching solver code.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["LinearOperator", "MatrixFreeOperator", "aslinearoperator"]


class LinearOperator:
    """Base class: a square or rectangular linear map with ``matvec``.

    Subclasses must set ``shape`` and implement :meth:`matvec`.  ``rmatvec``
    (the transpose product) is optional; operators that cannot provide it
    raise ``NotImplementedError``.
    """

    shape: tuple[int, int]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x``."""
        raise NotImplementedError

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A.T @ x`` (optional)."""
        raise NotImplementedError(f"{type(self).__name__} does not implement rmatvec")

    def __matmul__(self, x):
        return self.matvec(x)

    @property
    def n(self) -> int:
        """Number of columns (the dimension of the solution vector)."""
        return self.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={self.shape})"


class _DenseOperator(LinearOperator):
    """Wrap a dense NumPy array."""

    def __init__(self, array: np.ndarray):
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"dense operator must be 2-D, got shape {array.shape}")
        self.array = np.ascontiguousarray(array)
        self.shape = array.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.array @ np.asarray(x, dtype=np.float64)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.array.T @ np.asarray(x, dtype=np.float64)


class _CSROperator(LinearOperator):
    """Wrap a :class:`repro.sparse.csr.CSRMatrix`."""

    def __init__(self, csr):
        self.csr = csr
        self.shape = csr.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.csr.matvec(x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.csr.rmatvec(x)


class _ScipyOperator(LinearOperator):
    """Wrap a ``scipy.sparse`` matrix (or anything with ``@`` and ``.T``)."""

    def __init__(self, mat):
        self.mat = mat
        self.shape = tuple(int(s) for s in mat.shape)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.mat @ np.asarray(x, dtype=np.float64)).ravel()

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.mat.T @ np.asarray(x, dtype=np.float64)).ravel()


class MatrixFreeOperator(LinearOperator):
    """A matrix-free operator defined by callables.

    Parameters
    ----------
    shape : tuple of int
        Operator shape ``(m, n)``.
    matvec : callable
        Function mapping a length-``n`` vector to a length-``m`` vector.
    rmatvec : callable, optional
        Transpose product; omit if unavailable.
    """

    def __init__(self, shape, matvec: Callable[[np.ndarray], np.ndarray],
                 rmatvec: Callable[[np.ndarray], np.ndarray] | None = None):
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._rmatvec = rmatvec

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(self._matvec(np.asarray(x, dtype=np.float64)), dtype=np.float64).ravel()
        if y.shape[0] != self.shape[0]:
            raise ValueError(
                f"matvec returned length {y.shape[0]}, expected {self.shape[0]}"
            )
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        if self._rmatvec is None:
            raise NotImplementedError("this MatrixFreeOperator has no rmatvec")
        return np.asarray(self._rmatvec(np.asarray(x, dtype=np.float64)),
                          dtype=np.float64).ravel()


def aslinearoperator(A) -> LinearOperator:
    """Coerce ``A`` into a :class:`LinearOperator`.

    Accepted inputs: an existing :class:`LinearOperator` (returned as-is), a
    :class:`repro.sparse.csr.CSRMatrix`, a :class:`repro.sparse.coo.COOMatrix`
    (converted to CSR), a dense ``numpy.ndarray``, or any object exposing
    ``shape`` and supporting ``@`` (e.g. ``scipy.sparse`` matrices).
    """
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix

    if isinstance(A, LinearOperator):
        return A
    if isinstance(A, CSRMatrix):
        return _CSROperator(A)
    if isinstance(A, COOMatrix):
        return _CSROperator(A.tocsr())
    if isinstance(A, np.ndarray):
        return _DenseOperator(A)
    if hasattr(A, "shape") and hasattr(A, "__matmul__"):
        return _ScipyOperator(A)
    raise TypeError(f"cannot interpret object of type {type(A).__name__} as a linear operator")
