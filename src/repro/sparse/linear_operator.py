"""The operator abstraction the Krylov solvers are written against.

GMRES, FGMRES, FT-GMRES and CG only ever need ``y = A @ x``; expressing the
solvers against :class:`LinearOperator` lets users pass:

* a :class:`repro.sparse.csr.CSRMatrix`,
* a dense ``numpy.ndarray``,
* any ``scipy.sparse`` matrix,
* an arbitrary matrix-free callable (:class:`MatrixFreeOperator`).

The fault-injection machinery also wraps operators (see
:class:`repro.faults.targets.FaultyOperator`) so SDC can be injected into the
SpMV result without touching solver code.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["LinearOperator", "MatrixFreeOperator", "aslinearoperator"]


class LinearOperator:
    """Base class: a square or rectangular linear map with ``matvec``.

    Subclasses must set ``shape`` and implement :meth:`matvec`.  ``rmatvec``
    (the transpose product) is optional; operators that cannot provide it
    raise ``NotImplementedError``.
    """

    shape: tuple[int, int]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x``."""
        raise NotImplementedError

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A.T @ x`` (optional)."""
        raise NotImplementedError(f"{type(self).__name__} does not implement rmatvec")

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Return ``A @ X`` for a dense ``(n, B)`` block.

        The default applies :meth:`matvec` column by column, so every
        operator supports block operands; subclasses wrapping formats with a
        native block kernel (CSR, dense, scipy sparse) override this with a
        single-pass implementation whose columns match the column-at-a-time
        result bit for bit (CSR) or to rounding (BLAS-backed formats).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: operator has {self.shape[1]} columns, "
                f"block has {X.shape[0]} rows"
            )
        Y = np.empty((self.shape[0], X.shape[1]), dtype=np.float64, order="F")
        for j in range(X.shape[1]):
            Y[:, j] = self.matvec(X[:, j])
        return Y

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """Return ``A.T @ X`` for a dense block (column-at-a-time default)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[0]:
            raise ValueError(
                f"dimension mismatch: operator has {self.shape[0]} rows, "
                f"block has {X.shape[0]} rows"
            )
        Y = np.empty((self.shape[1], X.shape[1]), dtype=np.float64, order="F")
        for j in range(X.shape[1]):
            Y[:, j] = self.rmatvec(X[:, j])
        return Y

    def __matmul__(self, x):
        arr = np.asarray(x)
        if arr.ndim == 2:
            return self.matmat(arr)
        return self.matvec(arr)

    @property
    def n(self) -> int:
        """Number of columns (the dimension of the solution vector)."""
        return self.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={self.shape})"


class _DenseOperator(LinearOperator):
    """Wrap a dense NumPy array."""

    def __init__(self, array: np.ndarray):
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"dense operator must be 2-D, got shape {array.shape}")
        self.array = np.ascontiguousarray(array)
        self.shape = array.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.array @ np.asarray(x, dtype=np.float64)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.array.T @ np.asarray(x, dtype=np.float64)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {X.shape}")
        return self.array @ X

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {X.shape}")
        return self.array.T @ X


class _CSROperator(LinearOperator):
    """Wrap a :class:`repro.sparse.csr.CSRMatrix`."""

    def __init__(self, csr):
        self.csr = csr
        self.shape = csr.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.csr.matvec(x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.csr.rmatvec(x)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.csr.matmat(X)

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        return self.csr.rmatmat(X)


class _ScipyOperator(LinearOperator):
    """Wrap a ``scipy.sparse`` matrix (or anything with ``@`` and ``.T``).

    Block operands take the native ``@`` path: scipy's sparse·dense product
    returns a dense ``(m, B)`` array without densifying the operator.  The
    1-D entry points reject 2-D inputs instead of ``ravel()``-ing them (the
    old behaviour silently flattened a block into a length-``n*B`` vector,
    which is exactly the kind of shape bug the block kernels must not hide).
    """

    def __init__(self, mat):
        self.mat = mat
        self.shape = tuple(int(s) for s in mat.shape)

    @staticmethod
    def _vector(x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 1 and min(x.shape) > 1:
            raise ValueError(
                f"matvec/rmatvec expect a vector, got a block of shape {x.shape}; "
                "use matmat/rmatmat for block operands"
            )
        return x.ravel()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.mat @ self._vector(x)).ravel()

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.mat.T @ self._vector(x)).ravel()

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: operator has {self.shape[1]} columns, "
                f"block has {X.shape[0]} rows"
            )
        Y = np.asarray(self.mat @ X, dtype=np.float64)
        if Y.shape != (self.shape[0], X.shape[1]):  # pragma: no cover - defensive
            raise ValueError(
                f"underlying operator returned shape {Y.shape}, "
                f"expected {(self.shape[0], X.shape[1])}"
            )
        return Y

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {X.shape}")
        if X.shape[0] != self.shape[0]:
            raise ValueError(
                f"dimension mismatch: operator has {self.shape[0]} rows, "
                f"block has {X.shape[0]} rows"
            )
        return np.asarray(self.mat.T @ X, dtype=np.float64)


class MatrixFreeOperator(LinearOperator):
    """A matrix-free operator defined by callables.

    Parameters
    ----------
    shape : tuple of int
        Operator shape ``(m, n)``.
    matvec : callable
        Function mapping a length-``n`` vector to a length-``m`` vector.
    rmatvec : callable, optional
        Transpose product; omit if unavailable.
    matmat : callable, optional
        Native block product mapping ``(n, B)`` to ``(m, B)``; when omitted
        the inherited column-at-a-time default is used.
    """

    def __init__(self, shape, matvec: Callable[[np.ndarray], np.ndarray],
                 rmatvec: Callable[[np.ndarray], np.ndarray] | None = None,
                 matmat: Callable[[np.ndarray], np.ndarray] | None = None):
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._rmatvec = rmatvec
        self._matmat = matmat

    def matmat(self, X: np.ndarray) -> np.ndarray:
        if self._matmat is None:
            return super().matmat(X)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {X.shape}")
        Y = np.asarray(self._matmat(X), dtype=np.float64)
        if Y.shape != (self.shape[0], X.shape[1]):
            raise ValueError(
                f"matmat returned shape {Y.shape}, expected {(self.shape[0], X.shape[1])}"
            )
        return Y

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(self._matvec(np.asarray(x, dtype=np.float64)), dtype=np.float64).ravel()
        if y.shape[0] != self.shape[0]:
            raise ValueError(
                f"matvec returned length {y.shape[0]}, expected {self.shape[0]}"
            )
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        if self._rmatvec is None:
            raise NotImplementedError("this MatrixFreeOperator has no rmatvec")
        return np.asarray(self._rmatvec(np.asarray(x, dtype=np.float64)),
                          dtype=np.float64).ravel()


def aslinearoperator(A) -> LinearOperator:
    """Coerce ``A`` into a :class:`LinearOperator`.

    Accepted inputs: an existing :class:`LinearOperator` (returned as-is), a
    :class:`repro.sparse.csr.CSRMatrix`, a :class:`repro.sparse.coo.COOMatrix`
    (converted to CSR), a dense ``numpy.ndarray``, or any object exposing
    ``shape`` and supporting ``@`` (e.g. ``scipy.sparse`` matrices).
    """
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix

    if isinstance(A, LinearOperator):
        return A
    if isinstance(A, CSRMatrix):
        return _CSROperator(A)
    if isinstance(A, COOMatrix):
        return _CSROperator(A.tocsr())
    if isinstance(A, np.ndarray):
        return _DenseOperator(A)
    if hasattr(A, "shape") and hasattr(A, "__matmul__"):
        return _ScipyOperator(A)
    raise TypeError(f"cannot interpret object of type {type(A).__name__} as a linear operator")
