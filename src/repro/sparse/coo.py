"""Coordinate (COO) sparse-matrix format.

COO is the construction format: matrix generators in :mod:`repro.gallery`
append ``(row, col, value)`` triplets and then convert to CSR once for the
solve.  Duplicate entries are summed on conversion, matching the convention
of every mainstream sparse library.
"""

from __future__ import annotations

import numpy as np

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    shape : tuple of int
        ``(nrows, ncols)``.
    rows, cols, values : array_like, optional
        Parallel triplet arrays.  They may contain duplicate ``(row, col)``
        pairs; duplicates are summed when converting to CSR or dense.

    Notes
    -----
    The class is a *builder*: it supports cheap appends and conversion, but
    no arithmetic.  Use :meth:`tocsr` for anything numerical.
    """

    def __init__(self, shape, rows=None, cols=None, values=None):
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows < 0 or ncols < 0:
            raise ValueError(f"shape must be non-negative, got {shape}")
        self.shape = (nrows, ncols)
        self.rows = np.asarray(rows if rows is not None else [], dtype=np.int64).ravel()
        self.cols = np.asarray(cols if cols is not None else [], dtype=np.int64).ravel()
        self.values = np.asarray(values if values is not None else [], dtype=np.float64).ravel()
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError(
                "rows, cols and values must have the same length: "
                f"{self.rows.shape[0]}, {self.cols.shape[0]}, {self.values.shape[0]}"
            )
        self._check_indices()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _check_indices(self) -> None:
        if self.rows.size == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
            raise IndexError("row index out of bounds")
        if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
            raise IndexError("column index out of bounds")

    def append(self, row: int, col: int, value: float) -> None:
        """Append a single triplet (slow path, used in examples and tests)."""
        if not (0 <= row < self.shape[0] and 0 <= col < self.shape[1]):
            raise IndexError(f"entry ({row}, {col}) outside shape {self.shape}")
        self.rows = np.append(self.rows, np.int64(row))
        self.cols = np.append(self.cols, np.int64(col))
        self.values = np.append(self.values, np.float64(value))

    def extend(self, rows, cols, values) -> None:
        """Append many triplets at once (vectorized builder path)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have the same length")
        self.rows = np.concatenate([self.rows, rows])
        self.cols = np.concatenate([self.cols, cols])
        self.values = np.concatenate([self.values, values])
        self._check_indices()

    # ------------------------------------------------------------------ #
    # queries / conversion
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored triplets (duplicates counted separately)."""
        return int(self.values.shape[0])

    def todense(self) -> np.ndarray:
        """Return a dense ``(nrows, ncols)`` array, summing duplicates."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def tocsr(self):
        """Convert to :class:`repro.sparse.csr.CSRMatrix`, summing duplicates."""
        from repro.sparse.csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def transpose(self) -> "COOMatrix":
        """Return the transpose as a new COO matrix (swap rows and columns)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]),
            rows=self.cols.copy(),
            cols=self.rows.copy(),
            values=self.values.copy(),
        )

    @classmethod
    def from_dense(cls, dense, tol: float = 0.0) -> "COOMatrix":
        """Build a COO matrix from a dense array, dropping entries ``<= tol`` in magnitude."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"dense input must be 2-D, got shape {dense.shape}")
        mask = np.abs(dense) > tol
        rows, cols = np.nonzero(mask)
        return cls(dense.shape, rows=rows, cols=cols, values=dense[rows, cols])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
