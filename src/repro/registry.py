"""Component registries: one place where string/dict specs become objects.

Every configurable axis of the reproduction — solver family, preconditioner,
SDC detector, fault model, gallery problem, execution backend — is registered
here under a short name, so a *spec* like ``"ilu0"``,
``{"name": "ssor", "omega": 1.2}`` or ``"bound:two_norm"`` resolves to a
built component uniformly everywhere: in :func:`repro.api.solve`, in the
campaign layer, in the experiment runner's ``--config``/``--set`` interface,
and in the legacy keyword entry points (``gmres(..., detector="bound")``).

Spec grammar
------------
A spec is one of:

* a **string** ``"name"`` — the registered component with default options;
* a **string** ``"name:arg1:arg2"`` — colon-separated positional arguments,
  mapped onto the factory's declared ``positional`` parameter names (e.g.
  the detector spec ``"bound:two_norm"`` means ``method="two_norm"``);
* a **dict** ``{"name": "ssor", "omega": 1.2}`` — every other key is a
  keyword argument of the factory;
* an already-built **instance** of the namespace's base type — passed
  through untouched (this is what keeps the legacy call signatures working).

Factories receive a :class:`ResolveContext` (carrying the system matrix
``A`` and friends) as their first argument, so components that depend on the
problem — an ILU factorization, the Hessenberg-bound detector built from
``||A||_F`` — can be described by problem-independent, JSON-serializable
specs.

The registry raises :class:`RegistryError` (a ``ValueError``) for unknown
names, always listing what *is* registered in the namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "NAMESPACES",
    "Registry",
    "RegistryError",
    "ResolveContext",
    "registry",
    "parse_spec",
    "register",
    "resolve",
    "names",
    "resolve_detector",
    "resolve_preconditioner",
    "resolve_preconditioner_apply",
    "resolve_fault_model",
    "resolve_fault_classes",
    "resolve_problem",
    "resolve_sink",
    "backend_knobs",
    "resolve_kernels",
]

#: The registered component namespaces.
NAMESPACES = ("solver", "preconditioner", "detector", "fault_model",
              "problem", "backend", "sink", "kernels")


class RegistryError(ValueError):
    """An unresolvable component spec (unknown name, bad shape, ...)."""


@dataclass
class ResolveContext:
    """What a component factory may need from the surrounding problem.

    Attributes
    ----------
    A : matrix or operator, optional
        The system matrix/operator of the solve being configured.
    n : int, optional
        System dimension (when known independently of ``A``).
    bound_method : str
        Norm used when a detector bound must be computed from ``A``
        (``"frobenius"``, ``"two_norm"`` or ``"exact"``).
    """

    A: Any = None
    n: int | None = None
    bound_method: str = "frobenius"

    def require_matrix(self, what: str) -> Any:
        """``A`` or a :class:`RegistryError` naming the component that needs it."""
        if self.A is None:
            raise RegistryError(f"{what} requires the system matrix, but none "
                                f"was supplied in the resolve context")
        return self.A


@dataclass(frozen=True)
class _Entry:
    name: str
    factory: Callable[..., Any]
    positional: tuple[str, ...] = ()
    aliases: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)


class Registry:
    """Namespace → name → factory mapping with a decorator-based API."""

    def __init__(self, namespaces: Iterable[str] = NAMESPACES) -> None:
        self._spaces: dict[str, dict[str, _Entry]] = {ns: {} for ns in namespaces}

    # ------------------------------------------------------------------ #
    def _space(self, namespace: str) -> dict[str, _Entry]:
        try:
            return self._spaces[namespace]
        except KeyError:
            raise RegistryError(
                f"unknown registry namespace {namespace!r}; "
                f"expected one of {sorted(self._spaces)}"
            ) from None

    def register(self, namespace: str, name: str, *,
                 aliases: Iterable[str] = (),
                 positional: Iterable[str] = (),
                 **metadata: Any) -> Callable[[Callable[..., Any]],
                                              Callable[..., Any]]:
        """Decorator registering ``factory(ctx, **params)`` under ``name``.

        Parameters
        ----------
        namespace : str
            One of :data:`NAMESPACES`.
        name : str
            Canonical component name.
        aliases : sequence of str
            Alternative names resolving to the same factory.
        positional : sequence of str
            Parameter names that colon-separated string arguments map onto,
            in order (``"bound:two_norm"`` → ``method="two_norm"`` when
            ``positional=("method",)``).
        **metadata
            Free-form entry metadata (e.g. backend knob compatibility),
            retrievable via :meth:`entry`.
        """
        space = self._space(namespace)

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            entry = _Entry(name=name, factory=factory,
                           positional=tuple(positional), aliases=tuple(aliases),
                           metadata=dict(metadata))
            for key in (name, *aliases):
                if key in space:
                    raise RegistryError(
                        f"duplicate registration of {key!r} in namespace {namespace!r}")
                space[key] = entry
            return factory

        return decorator

    def names(self, namespace: str) -> list[str]:
        """Canonical names registered in a namespace, sorted."""
        return sorted({entry.name for entry in self._space(namespace).values()})

    def entry(self, namespace: str, name: str) -> _Entry:
        """The registry entry for ``name`` (aliases allowed)."""
        space = self._space(namespace)
        try:
            return space[name]
        except KeyError:
            raise RegistryError(
                f"unknown {namespace} {name!r}; registered {namespace}s: "
                f"{self.names(namespace)}"
            ) from None

    def metadata(self, namespace: str, name: str) -> dict[str, Any]:
        """The metadata dict attached at registration time."""
        return dict(self.entry(namespace, name).metadata)

    # ------------------------------------------------------------------ #
    def resolve(self, namespace: str, spec: Any,
                ctx: ResolveContext | None = None) -> Any:
        """Build the component described by ``spec``.

        ``spec`` may be a string (``"name"`` / ``"name:arg"``), a dict with a
        ``"name"`` key, or a ``(name, params)`` pair produced by
        :func:`parse_spec`.  Instance passthrough is the *caller's* job (the
        ``resolve_*`` helpers below do it), because only the caller knows the
        namespace's base type.
        """
        name, params = parse_spec(spec)
        entry = self.entry(namespace, name)
        params = _bind_positional(entry, params)
        try:
            return entry.factory(ctx if ctx is not None else ResolveContext(), **params)
        except TypeError as exc:
            # A wrong keyword reads as "unexpected keyword argument 'omega'";
            # re-raise with the component named so config typos are findable.
            raise RegistryError(f"invalid options for {namespace} {name!r}: {exc}") from exc


def parse_spec(spec: Any) -> tuple[str, dict[str, Any]]:
    """Normalize a string/dict spec into ``(name, params)``.

    String colon arguments are returned under the reserved key ``"_args"``
    only transiently; they are mapped to declared positional parameter names
    by :meth:`Registry.resolve` — callers normally never see them.
    """
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        name, params = spec
        return name, dict(params)
    if isinstance(spec, str):
        name, _, rest = spec.partition(":")
        name = name.strip()
        if not name:
            raise RegistryError(f"empty component name in spec {spec!r}")
        if not rest:
            return name, {}
        return name, {"_args": tuple(part.strip() for part in rest.split(":"))}
    if isinstance(spec, dict):
        params = dict(spec)
        try:
            name = params.pop("name")
        except KeyError:
            raise RegistryError(
                f"dict component spec must have a 'name' key, got {sorted(spec)}"
            ) from None
        if not isinstance(name, str):
            raise RegistryError(f"component name must be a string, got {name!r}")
        # Colon arguments work in the dict form too ({"name": "bound:two_norm"}),
        # so the string and dict grammars stay interchangeable.
        colon_name, colon_params = parse_spec(name)
        if "_args" in colon_params:
            params["_args"] = colon_params["_args"]
        return colon_name, params
    raise RegistryError(
        f"component spec must be a string, dict, or (name, params) pair; "
        f"got {type(spec).__name__}"
    )


def _bind_positional(entry: _Entry, params: dict[str, Any]) -> dict[str, Any]:
    """Map transient colon arguments onto the entry's declared parameters."""
    args = params.pop("_args", ())
    if not args:
        return params
    if len(args) > len(entry.positional):
        raise RegistryError(
            f"{entry.name!r} takes at most {len(entry.positional)} "
            f"colon argument(s) ({', '.join(entry.positional) or 'none'}), "
            f"got {len(args)}")
    for key, value in zip(entry.positional, args):
        if key in params:
            raise RegistryError(f"{entry.name!r}: {key!r} given both as a colon "
                                f"argument and as a keyword")
        params[key] = value
    return params


#: The process-wide registry instance.
registry = Registry()


def register(namespace: str, name: str,
             **kwargs: Any) -> Callable[[Callable[..., Any]],
                                        Callable[..., Any]]:
    """Shorthand for :meth:`Registry.register` on the global registry."""
    return registry.register(namespace, name, **kwargs)


def resolve(namespace: str, spec: Any,
            ctx: ResolveContext | None = None) -> Any:
    """Build a component from the global registry (see :meth:`Registry.resolve`)."""
    return registry.resolve(namespace, spec, ctx)


def names(namespace: str) -> list[str]:
    """Canonical names registered in a namespace of the global registry."""
    return registry.names(namespace)


# ====================================================================== #
# high-level resolvers (instance passthrough + namespace dispatch)
# ====================================================================== #
def resolve_detector(spec: Any, *, A: Any = None,
                     bound_method: str = "frobenius") -> Any:
    """A Detector instance, ``None``, or a registered detector spec.

    This is the single replacement for the previously duplicated
    ``_resolve_detector`` helpers of ``gmres``/``fgmres``/``FaultCampaign``:

    * ``None`` and :class:`~repro.core.detectors.Detector` instances pass
      through untouched (the legacy fast path — unchanged semantics);
    * strings and dicts go through the ``"detector"`` registry namespace
      (``"bound"``, ``"bound:two_norm"``, ``{"name": "norm_growth",
      "factor": 1e4}``, ...).
    """
    from repro.core.detectors import Detector

    if spec is None or isinstance(spec, Detector):
        return spec
    if not isinstance(spec, (str, dict)):
        raise TypeError(
            f"detector must be a Detector, a registered detector spec "
            f"(one of {names('detector')}), or None; got {type(spec).__name__}")
    return resolve("detector", spec, ResolveContext(A=A, bound_method=bound_method))


def resolve_preconditioner(spec: Any, *, A: Any = None,
                           n: int | None = None) -> Any:
    """A Preconditioner (or operator) instance, ``None``, or a registered spec.

    Strings and dicts resolve through the ``"preconditioner"`` namespace and
    require the system matrix in the context (stationary preconditioners are
    factored from ``A``).  Everything else passes through for
    :func:`resolve_preconditioner_apply` to coerce.
    """
    if spec is None or not isinstance(spec, (str, dict)):
        return spec
    return resolve("preconditioner", spec, ResolveContext(A=A, n=n))


def resolve_preconditioner_apply(spec: Any, *, n: int, A: Any = None) -> Any:
    """Resolve a preconditioner spec down to an ``apply(r) -> z`` callable.

    Accepts everything :func:`repro.core.gmres.gmres` historically accepted —
    a Preconditioner, a bare callable, a matrix-like, or ``None`` — plus
    registered string/dict specs.  The legacy branches are checked in the
    same order as the old ``_resolve_preconditioner`` helper, so existing
    callers see identical behavior.
    """
    spec = resolve_preconditioner(spec, A=A, n=n)
    if spec is None:
        return None
    if callable(spec):
        return spec
    if hasattr(spec, "apply"):
        return spec.apply
    from repro.sparse.linear_operator import aslinearoperator

    op = aslinearoperator(spec)
    if op.shape != (n, n):
        raise ValueError(f"preconditioner shape {op.shape} does not match system size {n}")
    return op.matvec


def resolve_fault_model(spec: Any) -> Any:
    """A FaultModel instance or a registered fault-model spec."""
    from repro.faults.models import FaultModel

    if isinstance(spec, FaultModel):
        return spec
    return resolve("fault_model", spec)


def resolve_fault_classes(spec: Any) -> dict[str, Any]:
    """A campaign's fault-class mapping from a spec.

    ``"paper"`` (or ``None``) yields a fresh copy of the paper's three
    scaling classes; a dict maps labels to fault-model specs (or built
    instances, passed through).
    """
    from repro.faults.models import PAPER_FAULT_CLASSES

    if spec is None or spec == "paper":
        return dict(PAPER_FAULT_CLASSES)
    if not isinstance(spec, dict):
        raise RegistryError(
            f"fault_classes must be 'paper' or a dict of label -> fault-model "
            f"spec, got {type(spec).__name__}")
    return {str(label): resolve_fault_model(model) for label, model in spec.items()}


def resolve_problem(spec: Any) -> Any:
    """A TestProblem instance or a registered gallery-problem spec."""
    from repro.gallery.problems import TestProblem

    if isinstance(spec, TestProblem):
        return spec
    return resolve("problem", spec)


def resolve_sink(spec: Any) -> Any:
    """An EventSink instance, ``None``, a callable, or a registered sink spec.

    Sinks are the consumer side of the results event bus
    (:mod:`repro.results.events`).  ``None``, built sinks, and bare
    callables pass through (the campaign layer coerces callables); strings
    and dicts resolve through the ``"sink"`` namespace — which is what makes
    ``--sink jsonl:runs/`` work from the CLI.
    """
    from repro.results.events import EventSink

    if spec is None or isinstance(spec, EventSink):
        return spec
    if isinstance(spec, (str, dict)):
        return resolve("sink", spec)
    if (isinstance(spec, tuple) and len(spec) == 2
            and isinstance(spec[0], str) and isinstance(spec[1], dict)):
        # The ("name", params) pair form parse_spec supports everywhere else.
        return resolve("sink", spec)
    if isinstance(spec, (list, tuple)):
        # Resolve each element, so a list may mix registered specs, built
        # sinks, and callables; the caller's ensure_sink fans them out.
        return [resolve_sink(s) for s in spec]
    if callable(spec):
        return spec
    raise TypeError(
        f"sink must be an EventSink, a callable, a registered sink spec "
        f"(one of {names('sink')}), or None; got {type(spec).__name__}")


# ====================================================================== #
# built-in registrations
# ====================================================================== #
# Factories import lazily so ``import repro.registry`` stays cheap and free
# of ordering constraints during package initialization.

# ---------------------------- detectors ------------------------------- #
@register("detector", "bound", aliases=("hessenberg_bound",),
          positional=("method",))
def _build_bound_detector(ctx, method=None, bound=None, slack=1.0,
                          check_nonfinite=True):
    """The paper's invariant detector ``|h_ij| <= ||A||``.

    ``bound`` short-circuits the norm computation (used when re-building a
    detector from a serialized instance); otherwise the bound is computed
    from the context matrix with ``method`` (default: the context's
    ``bound_method``, i.e. whatever the solver's ``bound_method=`` keyword
    says — exactly the legacy behavior).
    """
    from repro.core.detectors import HessenbergBoundDetector

    if bound is None:
        from repro.sparse.norms import hessenberg_bound

        A = ctx.require_matrix("detector 'bound'")
        bound = hessenberg_bound(A, method=method if method is not None
                                 else ctx.bound_method)
    return HessenbergBoundDetector(float(bound), slack=float(slack),
                                   check_nonfinite=bool(check_nonfinite))


@register("detector", "null")
def _build_null_detector(ctx):
    from repro.core.detectors import NullDetector

    return NullDetector()


@register("detector", "nonfinite")
def _build_nonfinite_detector(ctx):
    from repro.core.detectors import NonFiniteDetector

    return NonFiniteDetector()


@register("detector", "norm_growth", positional=("factor",))
def _build_norm_growth_detector(ctx, factor=1e3, floor=1e-300):
    from repro.core.detectors import NormGrowthDetector

    return NormGrowthDetector(factor=float(factor), floor=float(floor))


@register("detector", "composite")
def _build_composite_detector(ctx, members=()):
    from repro.core.detectors import CompositeDetector

    if not members:
        raise RegistryError("detector 'composite' requires a non-empty 'members' list")
    return CompositeDetector([resolve_detector(m, A=ctx.A,
                                               bound_method=ctx.bound_method)
                              for m in members])


# -------------------------- preconditioners --------------------------- #
@register("preconditioner", "identity", aliases=("none",))
def _build_identity(ctx, n=None):
    from repro.precond.identity import IdentityPreconditioner

    if n is None:
        n = ctx.n if ctx.n is not None else ctx.require_matrix(
            "preconditioner 'identity'").shape[0]
    return IdentityPreconditioner(int(n))


@register("preconditioner", "jacobi")
def _build_jacobi(ctx):
    from repro.precond.jacobi import JacobiPreconditioner

    return JacobiPreconditioner(ctx.require_matrix("preconditioner 'jacobi'"))


@register("preconditioner", "block_jacobi", positional=("block_size",))
def _build_block_jacobi(ctx, block_size=32):
    from repro.precond.jacobi import BlockJacobiPreconditioner

    return BlockJacobiPreconditioner(
        ctx.require_matrix("preconditioner 'block_jacobi'"),
        block_size=int(block_size))


@register("preconditioner", "gauss_seidel", aliases=("gs",),
          positional=("trisolve_mode",))
def _build_gauss_seidel(ctx, trisolve_mode="auto"):
    from repro.precond.ssor import GaussSeidelPreconditioner

    return GaussSeidelPreconditioner(
        ctx.require_matrix("preconditioner 'gauss_seidel'"),
        trisolve_mode=trisolve_mode)


@register("preconditioner", "ssor", positional=("omega",))
def _build_ssor(ctx, omega=1.0, trisolve_mode="auto"):
    from repro.precond.ssor import SSORPreconditioner

    return SSORPreconditioner(ctx.require_matrix("preconditioner 'ssor'"),
                              omega=float(omega), trisolve_mode=trisolve_mode)


@register("preconditioner", "ilu0", positional=("trisolve_mode",))
def _build_ilu0(ctx, trisolve_mode="auto"):
    from repro.precond.ilu import ILU0Preconditioner

    return ILU0Preconditioner(ctx.require_matrix("preconditioner 'ilu0'"),
                              trisolve_mode=trisolve_mode)


@register("preconditioner", "neumann", positional=("degree",))
def _build_neumann(ctx, degree=2):
    from repro.precond.polynomial import NeumannPolynomialPreconditioner

    return NeumannPolynomialPreconditioner(
        ctx.require_matrix("preconditioner 'neumann'"), degree=int(degree))


# ----------------------------- fault models --------------------------- #
@register("fault_model", "scaling", positional=("factor",))
def _build_scaling_fault(ctx, factor):
    from repro.faults.models import ScalingFault

    return ScalingFault(float(factor))


@register("fault_model", "absolute", positional=("replacement",))
def _build_absolute_fault(ctx, replacement):
    from repro.faults.models import AbsoluteFault

    return AbsoluteFault(float(replacement))


@register("fault_model", "additive", positional=("delta",))
def _build_additive_fault(ctx, delta):
    from repro.faults.models import AdditiveFault

    return AdditiveFault(float(delta))


@register("fault_model", "zero")
def _build_zero_fault(ctx):
    from repro.faults.models import ZeroFault

    return ZeroFault()


@register("fault_model", "nan")
def _build_nan_fault(ctx):
    from repro.faults.models import NaNFault

    return NaNFault()


@register("fault_model", "inf")
def _build_inf_fault(ctx):
    from repro.faults.models import InfFault

    return InfFault()


@register("fault_model", "bitflip", positional=("bit",))
def _build_bitflip_fault(ctx, bit=None, bits=None, rng=None):
    from repro.faults.models import BitFlipFault

    return BitFlipFault(bit=int(bit) if bit is not None else None,
                        bits=bits, rng=rng)


@register("fault_model", "multibit", positional=("num_bits",))
def _build_multibit_fault(ctx, num_bits=2, bits=None, rng=None):
    from repro.faults.models import MultiBitFault

    return MultiBitFault(num_bits=int(num_bits), bits=bits, rng=rng)


@register("fault_model", "burst", positional=("start_bit", "width"))
def _build_burst_fault(ctx, start_bit=48, width=4):
    from repro.faults.models import BurstFault

    return BurstFault(start_bit=int(start_bit), width=int(width))


@register("fault_model", "stuck_at", positional=("bit", "value"))
def _build_stuck_at_fault(ctx, bit=62, value=1):
    from repro.faults.models import StuckAtFault

    return StuckAtFault(bit=int(bit), value=int(value))


# ----------------------------- problems ------------------------------- #
@register("problem", "poisson", positional=("grid_n",))
def _build_poisson_problem(ctx, grid_n=100, seed=7):
    from repro.gallery.problems import poisson_problem

    return poisson_problem(grid_n=int(grid_n), seed=int(seed))


@register("problem", "circuit", positional=("n_nodes",))
def _build_circuit_problem(ctx, n_nodes=25187, seed=20140519,
                           jacobi_equilibrate=True):
    from repro.gallery.problems import circuit_problem

    return circuit_problem(n_nodes=int(n_nodes), seed=int(seed),
                           jacobi_equilibrate=bool(jacobi_equilibrate))


# ----------------------------- solvers -------------------------------- #
# Solver entries are thin adapters used by :func:`repro.api.solve`; they
# receive the spec-resolved call plan and forward to the legacy entry points,
# so the facade and the legacy API share one execution path (bit-identical).
@register("solver", "gmres")
def _run_gmres(ctx, *, A, b, x0, spec, injector=None, events=None):
    from repro.core.gmres import gmres

    return gmres(A, b, x0, injector=injector, events=events,
                 **spec.gmres_kwargs())


@register("solver", "fgmres")
def _run_fgmres(ctx, *, A, b, x0, spec, injector=None, events=None):
    if injector is not None:
        raise ValueError("fgmres runs reliably and takes no injector; "
                         "inject into method='ft_gmres' inner solves instead")
    from repro.core.fgmres import fgmres

    return fgmres(A, b, x0=x0, events=events, **spec.fgmres_kwargs())


@register("solver", "ft_gmres", aliases=("ftgmres",))
def _run_ft_gmres(ctx, *, A, b, x0, spec, injector=None, events=None):
    from repro.core.ftgmres import ft_gmres

    params = spec.to_ftgmres_parameters()
    # Resolve the inner solve's component specs against A once, up front:
    # the inner GMRES runs up to max_outer times per nested solve, and a
    # string spec left in place would recompute the detector bound (or
    # re-factor the preconditioner) on every one of them.
    inner, outer = params.inner, params.outer
    if isinstance(inner.detector, (str, dict)):
        inner = inner.replace(detector=resolve_detector(
            inner.detector, A=A, bound_method=inner.bound_method))
    if isinstance(inner.preconditioner, (str, dict)):
        inner = inner.replace(preconditioner=resolve_preconditioner(
            inner.preconditioner, A=A))
    if isinstance(outer.detector, (str, dict)):
        outer = outer.replace(detector=resolve_detector(
            outer.detector, A=A, bound_method=outer.bound_method))
    params = type(params)(outer=outer, inner=inner)
    return ft_gmres(A, b, x0, params=params, injector=injector, events=events)


@register("solver", "cg")
def _run_cg(ctx, *, A, b, x0, spec, injector=None, events=None):
    if injector is not None:
        raise ValueError("the CG baseline has no fault-injection sites; "
                         "use method='gmres' or 'ft_gmres'")
    from repro.baselines.cg import cg

    kwargs = spec.cg_kwargs()
    # cg() predates the registry and does not resolve specs itself.
    if isinstance(kwargs["preconditioner"], (str, dict)):
        kwargs["preconditioner"] = resolve_preconditioner(
            kwargs["preconditioner"], A=A)
    return cg(A, b, x0, events=events, **kwargs)


# ----------------------------- backends ------------------------------- #
# Backend entries carry the knob-compatibility metadata enforced by
# :func:`repro.exec.executor.validate_backend_knobs`; the factory returns
# the metadata (backends are dispatch strategies, not built objects).
def _register_backend(name: str, *, parallel: bool,
                      knobs: tuple[str, ...]) -> None:
    @register("backend", name, parallel=parallel, knobs=knobs)
    def _backend_info(ctx, _name=name, _parallel=parallel, _knobs=knobs):
        return {"name": _name, "parallel": _parallel, "knobs": _knobs}


_register_backend("serial", parallel=False, knobs=())
_register_backend("thread", parallel=True, knobs=("workers", "chunksize"))
_register_backend("process", parallel=True, knobs=("workers", "chunksize"))
_register_backend("batched", parallel=False, knobs=("batch_size",))
_register_backend("sharded", parallel=True,
                  knobs=("shards", "max_retries", "heartbeat_interval"))


def backend_knobs(name: str) -> tuple[str, ...]:
    """The execution knobs a backend accepts (registry metadata)."""
    return tuple(registry.metadata("backend", name)["knobs"])


# ------------------------------- sinks -------------------------------- #
@register("sink", "jsonl", positional=("path",))
def _build_jsonl_sink(ctx, path="runs", flush=True):
    """Append events as JSON lines under ``path`` (``--sink jsonl:runs/``).

    ``flush`` (default on) makes each event durable and visible to live
    readers as it happens; ``{"name": "jsonl", "flush": false}`` opts into
    buffered writes.  String forms of the flag ("false"/"0"/"no") coerce,
    so dict specs read from JSON config files behave either way.
    """
    from repro.results.events import JsonlEventSink

    if isinstance(flush, str):
        flush = flush.strip().lower() not in ("0", "false", "no", "off")
    return JsonlEventSink(path, flush=bool(flush))


@register("sink", "broadcast", positional=("maxsize",))
def _build_broadcast_sink(ctx, maxsize=256):
    """Fan events out to live subscribers with bounded queues (the campaign
    service's ``GET /events`` bus; see :mod:`repro.service.streams`)."""
    from repro.service.streams import BroadcastSink

    return BroadcastSink(default_maxsize=int(maxsize))


@register("sink", "memory", aliases=("collect",))
def _build_memory_sink(ctx):
    from repro.results.events import CollectingSink

    return CollectingSink()


@register("sink", "null")
def _build_null_sink(ctx):
    from repro.results.events import NullSink

    return NullSink()


@register("sink", "console", positional=("every",))
def _build_console_sink(ctx, every=1):
    """Progress lines on stderr; ``console:25`` prints every 25th trial."""
    from repro.results.events import ConsoleSink

    return ConsoleSink(every=int(every))


# ----------------------------- kernels -------------------------------- #
# Sparse kernel tiers (see repro.sparse.kernels).  Factories return the
# stateless engine singleton; unavailable tiers raise a RegistryError with
# an install hint rather than resolving to a broken engine.
def _register_kernel_tier(name: str, *, compiled: bool,
                          description: str) -> None:
    @register("kernels", name, compiled=compiled, description=description)
    def _build_engine(ctx, _name=name):
        from repro.sparse.kernels import resolve_engine

        try:
            return resolve_engine(_name)
        except ValueError as exc:
            raise RegistryError(str(exc)) from exc


_register_kernel_tier(
    "numpy", compiled=False,
    description="pure-NumPy reference kernels (bit-exact, always available)")
_register_kernel_tier(
    "scipy", compiled=True,
    description="scipy.sparse compiled C kernels over zero-copy views")
_register_kernel_tier(
    "numba", compiled=True,
    description="numba JIT fused kernels (install the [accel] extra)")
_register_kernel_tier(
    "auto", compiled=True,
    description="best available tier: numba, else scipy, else numpy")


def resolve_kernels(spec: Any, **ctx_kwargs: Any) -> Any:
    """Resolve a kernel-tier spec to a ``KernelEngine`` via the registry."""
    from repro.sparse.kernels import KernelEngine

    if isinstance(spec, KernelEngine):
        return spec
    if spec is None:
        from repro.sparse.kernels import default_kernels

        spec = default_kernels()
    return resolve("kernels", spec, ResolveContext(**ctx_kwargs))
