"""Random and structured matrix generators for the extended test suite.

None of these appear in the paper's evaluation; they exist so the unit and
property-based tests can exercise the solvers, detectors, and fault models on
a wider range of spectra (diagonally dominant, indefinite, random SPD, ...).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import require_positive_int

__all__ = ["random_sparse", "diagonally_dominant", "tridiagonal", "spd_random"]


def random_sparse(n: int, density: float = 0.05, seed=0, value_scale: float = 1.0) -> CSRMatrix:
    """A random ``n x n`` sparse matrix with approximately ``density * n**2`` entries.

    Values are standard normal scaled by ``value_scale``; the diagonal is
    always included (set to ``n * density + 1`` times a positive random
    value) so the matrix is comfortably nonsingular.
    """
    n = require_positive_int(n, "n")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = as_generator(seed)
    nnz_target = max(n, int(round(density * n * n)))
    rows = rng.integers(0, n, size=nnz_target).astype(np.int64)
    cols = rng.integers(0, n, size=nnz_target).astype(np.int64)
    vals = rng.standard_normal(nnz_target) * value_scale
    diag_idx = np.arange(n, dtype=np.int64)
    diag_vals = (n * density + 1.0) * (1.0 + rng.random(n)) * value_scale
    coo = COOMatrix(
        (n, n),
        rows=np.concatenate([rows, diag_idx]),
        cols=np.concatenate([cols, diag_idx]),
        values=np.concatenate([vals, diag_vals]),
    )
    return coo.tocsr()


def diagonally_dominant(n: int, density: float = 0.05, dominance: float = 2.0,
                        seed=0) -> CSRMatrix:
    """A strictly row-diagonally-dominant random matrix (guaranteed nonsingular).

    Off-diagonal entries are random; each diagonal entry is set to
    ``dominance`` times the absolute row sum of the off-diagonals (plus one).
    """
    n = require_positive_int(n, "n")
    if dominance <= 1.0:
        raise ValueError(f"dominance must exceed 1.0, got {dominance}")
    rng = as_generator(seed)
    nnz_target = max(n, int(round(density * n * n)))
    rows = rng.integers(0, n, size=nnz_target).astype(np.int64)
    cols = rng.integers(0, n, size=nnz_target).astype(np.int64)
    off = rows != cols
    rows, cols = rows[off], cols[off]
    vals = rng.standard_normal(rows.shape[0])

    rowsum = np.zeros(n)
    np.add.at(rowsum, rows, np.abs(vals))
    diag_idx = np.arange(n, dtype=np.int64)
    diag_vals = dominance * rowsum + 1.0

    coo = COOMatrix(
        (n, n),
        rows=np.concatenate([rows, diag_idx]),
        cols=np.concatenate([cols, diag_idx]),
        values=np.concatenate([vals, diag_vals]),
    )
    return coo.tocsr()


def tridiagonal(n: int, lower: float = -1.0, diag: float = 2.0, upper: float = -1.0) -> CSRMatrix:
    """A Toeplitz tridiagonal matrix ``tridiag(lower, diag, upper)``.

    With ``lower != upper`` this is the simplest nonsymmetric matrix for
    which the Arnoldi Hessenberg matrix is *not* tridiagonal, which the
    structure tests (Figure 2) rely on.
    """
    n = require_positive_int(n, "n")
    idx = np.arange(n, dtype=np.int64)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, float(diag))]
    if n > 1:
        rows += [idx[1:], idx[:-1]]
        cols += [idx[:-1], idx[1:]]
        vals += [np.full(n - 1, float(lower)), np.full(n - 1, float(upper))]
    coo = COOMatrix((n, n), rows=np.concatenate(rows), cols=np.concatenate(cols),
                    values=np.concatenate(vals))
    return coo.tocsr()


def spd_random(n: int, density: float = 0.1, shift: float = 1.0, seed=0) -> CSRMatrix:
    """A random sparse symmetric positive-definite matrix ``B B^T + shift I``."""
    n = require_positive_int(n, "n")
    rng = as_generator(seed)
    B = random_sparse(n, density=density, seed=rng)
    dense = B.todense()
    spd = dense @ dense.T
    spd += float(shift) * np.eye(n)
    # Drop tiny fill-in so the CSR stays reasonably sparse for small tests.
    tol = 1e-14 * max(1.0, np.abs(spd).max())
    return CSRMatrix.from_dense(spd, tol=tol)
