"""Finite-difference Poisson matrices (the paper's SPD test problem).

``poisson2d(n)`` reproduces MATLAB's ``gallery('poisson', n)``: the block
tridiagonal matrix of the 5-point stencil on an ``n x n`` grid with Dirichlet
boundary conditions, scaled so the diagonal is 4.  The paper uses ``n = 100``
(10,000 rows, 49,600 nonzeros).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require_positive_int

__all__ = ["poisson1d", "poisson2d", "poisson3d"]


def poisson1d(n: int) -> CSRMatrix:
    """1-D Poisson (second-difference) matrix: tridiagonal ``[-1, 2, -1]``.

    Parameters
    ----------
    n : int
        Number of interior grid points (matrix dimension).
    """
    n = require_positive_int(n, "n")
    idx = np.arange(n, dtype=np.int64)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 2.0)]
    if n > 1:
        rows += [idx[:-1], idx[1:]]
        cols += [idx[1:], idx[:-1]]
        vals += [np.full(n - 1, -1.0), np.full(n - 1, -1.0)]
    coo = COOMatrix((n, n), rows=np.concatenate(rows), cols=np.concatenate(cols),
                    values=np.concatenate(vals))
    return coo.tocsr()


def poisson2d(n: int) -> CSRMatrix:
    """2-D Poisson 5-point stencil on an ``n x n`` grid (``n^2 x n^2`` matrix).

    Equivalent to MATLAB ``gallery('poisson', n)``: diagonal 4, off-diagonals
    -1 for the four grid neighbours, natural (row-major) ordering.  The
    result is symmetric positive definite.

    Parameters
    ----------
    n : int
        Grid points per side; the matrix has ``n**2`` rows.
    """
    n = require_positive_int(n, "n")
    N = n * n
    i = np.arange(N, dtype=np.int64)
    ix = i % n       # x position within a grid row
    iy = i // n      # grid row

    rows = [i]
    cols = [i]
    vals = [np.full(N, 4.0)]

    # West neighbour (ix > 0)
    mask = ix > 0
    rows.append(i[mask]); cols.append(i[mask] - 1); vals.append(np.full(mask.sum(), -1.0))
    # East neighbour (ix < n-1)
    mask = ix < n - 1
    rows.append(i[mask]); cols.append(i[mask] + 1); vals.append(np.full(mask.sum(), -1.0))
    # South neighbour (iy > 0)
    mask = iy > 0
    rows.append(i[mask]); cols.append(i[mask] - n); vals.append(np.full(mask.sum(), -1.0))
    # North neighbour (iy < n-1)
    mask = iy < n - 1
    rows.append(i[mask]); cols.append(i[mask] + n); vals.append(np.full(mask.sum(), -1.0))

    coo = COOMatrix((N, N), rows=np.concatenate(rows), cols=np.concatenate(cols),
                    values=np.concatenate(vals))
    return coo.tocsr()


def poisson3d(n: int) -> CSRMatrix:
    """3-D Poisson 7-point stencil on an ``n x n x n`` grid (``n^3`` rows).

    Diagonal 6, off-diagonals -1 for the six neighbours; SPD.  Used by the
    wider test suite and scaling benchmarks, not by the paper itself.
    """
    n = require_positive_int(n, "n")
    N = n * n * n
    i = np.arange(N, dtype=np.int64)
    ix = i % n
    iy = (i // n) % n
    iz = i // (n * n)

    rows = [i]
    cols = [i]
    vals = [np.full(N, 6.0)]

    for mask, offset in (
        (ix > 0, -1),
        (ix < n - 1, +1),
        (iy > 0, -n),
        (iy < n - 1, +n),
        (iz > 0, -n * n),
        (iz < n - 1, +n * n),
    ):
        rows.append(i[mask])
        cols.append(i[mask] + offset)
        vals.append(np.full(int(mask.sum()), -1.0))

    coo = COOMatrix((N, N), rows=np.concatenate(rows), cols=np.concatenate(cols),
                    values=np.concatenate(vals))
    return coo.tocsr()
