"""Convection–diffusion matrices: the standard nonsymmetric model problem.

The upwind-discretized convection–diffusion operator on the unit square is
the canonical *mildly* nonsymmetric test matrix.  It sits between the
paper's two problems — symmetric Poisson and the wildly ill-conditioned
circuit matrix — and is used in this repository's extended test suite and
the detector ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require_positive_int

__all__ = ["convection_diffusion_2d"]


def convection_diffusion_2d(n: int, wind: tuple[float, float] = (10.0, 20.0),
                            diffusion: float = 1.0) -> CSRMatrix:
    """Upwind finite-difference convection–diffusion matrix on an ``n x n`` grid.

    Discretizes ``-diffusion * Δu + wind · ∇u`` with first-order upwind
    differences for the convection term, Dirichlet boundaries, grid spacing
    ``h = 1/(n+1)``.  The result is nonsymmetric whenever ``wind != (0, 0)``.

    Parameters
    ----------
    n : int
        Grid points per side (matrix has ``n**2`` rows).
    wind : tuple of float
        Convection velocity ``(bx, by)``.
    diffusion : float
        Diffusion coefficient (must be positive).
    """
    n = require_positive_int(n, "n")
    bx, by = float(wind[0]), float(wind[1])
    nu = float(diffusion)
    if nu <= 0:
        raise ValueError(f"diffusion must be positive, got {diffusion}")
    h = 1.0 / (n + 1)
    N = n * n
    i = np.arange(N, dtype=np.int64)
    ix = i % n
    iy = i // n

    # Upwind convection: for bx > 0 use backward difference in x, etc.
    diff_coeff = nu / h**2
    cx = abs(bx) / h
    cy = abs(by) / h

    diag = np.full(N, 4.0 * diff_coeff + cx + cy)
    rows = [i]
    cols = [i]
    vals = [diag]

    west = -diff_coeff - (cx if bx > 0 else 0.0)
    east = -diff_coeff - (cx if bx < 0 else 0.0)
    south = -diff_coeff - (cy if by > 0 else 0.0)
    north = -diff_coeff - (cy if by < 0 else 0.0)

    for mask, offset, coeff in (
        (ix > 0, -1, west),
        (ix < n - 1, +1, east),
        (iy > 0, -n, south),
        (iy < n - 1, +n, north),
    ):
        count = int(mask.sum())
        rows.append(i[mask])
        cols.append(i[mask] + offset)
        vals.append(np.full(count, coeff))

    coo = COOMatrix((N, N), rows=np.concatenate(rows), cols=np.concatenate(cols),
                    values=np.concatenate(vals))
    return coo.tocsr()
