"""Test-problem generators ("matrix gallery").

The paper evaluates on two matrices:

* the 2-D Poisson finite-difference matrix (MATLAB ``gallery('poisson',100)``,
  10,000 rows, SPD) — reproduced exactly by :func:`poisson2d`;
* ``mult_dcop_03`` from the UF Sparse Matrix Collection (25,187 rows,
  nonsymmetric circuit-simulation matrix, condition number ≈ 7.3e13) — not
  redistributable offline, so :func:`mult_dcop_surrogate` builds a synthetic
  circuit-like matrix with the same structural properties (see DESIGN.md for
  the substitution rationale).

Additional generators (convection–diffusion, random sparse, diagonally
dominant, tridiagonal, Helmholtz-like) support the wider test suite and the
ablation benchmarks.
"""

from repro.gallery.poisson import poisson1d, poisson2d, poisson3d
from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.gallery.circuit import circuit_network, mult_dcop_surrogate
from repro.gallery.random_sparse import (
    random_sparse,
    diagonally_dominant,
    tridiagonal,
    spd_random,
)
from repro.gallery.problems import TestProblem, paper_problems, poisson_problem, circuit_problem

__all__ = [
    "poisson1d",
    "poisson2d",
    "poisson3d",
    "convection_diffusion_2d",
    "circuit_network",
    "mult_dcop_surrogate",
    "random_sparse",
    "diagonally_dominant",
    "tridiagonal",
    "spd_random",
    "TestProblem",
    "paper_problems",
    "poisson_problem",
    "circuit_problem",
]
