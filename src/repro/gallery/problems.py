"""Packaged test problems: matrix + right-hand side + metadata.

The experiment drivers (Table I, Figures 3 and 4) operate on
:class:`TestProblem` instances so the same code runs on the paper's two
problems at full size, on reduced sizes for fast benchmarking, or on a
user-supplied Matrix-Market file.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.gallery.circuit import mult_dcop_surrogate
from repro.gallery.poisson import poisson2d
from repro.sparse.csr import CSRMatrix
from repro.sparse.norms import frobenius_norm, two_norm_estimate
from repro.utils.rng import as_generator

__all__ = ["TestProblem", "poisson_problem", "circuit_problem", "paper_problems"]


@dataclass
class TestProblem:
    """A linear system ``A x = b`` with metadata used by the experiment harness.

    Attributes
    ----------
    name : str
        Human-readable problem name (appears in reports).
    A : CSRMatrix
        The system matrix.
    b : numpy.ndarray
        Right-hand side.
    x0 : numpy.ndarray
        Initial guess (defaults to zeros).
    x_exact : numpy.ndarray or None
        Known exact solution when the right-hand side was manufactured,
        otherwise ``None``.
    spd : bool
        Whether the matrix is symmetric positive definite (drives the
        tridiagonal-Hessenberg structure discussion of the paper).
    description : str
        Free-form provenance notes.
    seed : int or None
        The RNG seed the problem was generated from (``None`` for problems
        without one, e.g. loaded from a Matrix-Market file).  Stamped into
        campaign results as provenance.
    """

    #: Tell pytest this is library code, not a test class, despite the name.
    __test__ = False

    name: str
    A: CSRMatrix
    b: np.ndarray
    x0: np.ndarray = field(default=None)  # type: ignore[assignment]
    x_exact: np.ndarray | None = None
    spd: bool = False
    description: str = ""
    seed: int | None = None

    def __post_init__(self) -> None:
        n = self.A.shape[0]
        self.b = np.asarray(self.b, dtype=np.float64).ravel()
        if self.b.shape[0] != n:
            raise ValueError(f"b has length {self.b.shape[0]}, expected {n}")
        if self.x0 is None:
            self.x0 = np.zeros(n, dtype=np.float64)
        else:
            self.x0 = np.asarray(self.x0, dtype=np.float64).ravel()
        if self.x_exact is not None:
            self.x_exact = np.asarray(self.x_exact, dtype=np.float64).ravel()

    @property
    def n(self) -> int:
        """Problem dimension."""
        return self.A.shape[0]

    def residual_norm(self, x: np.ndarray) -> float:
        """The unpreconditioned residual norm ``||b - A x||_2``."""
        return float(np.linalg.norm(self.b - self.A.matvec(x)))

    def error_norm(self, x: np.ndarray) -> float:
        """``||x - x_exact||_2`` (raises if no exact solution is recorded)."""
        if self.x_exact is None:
            raise ValueError(f"problem {self.name!r} has no recorded exact solution")
        return float(np.linalg.norm(np.asarray(x, dtype=np.float64) - self.x_exact))

    def detector_bounds(self, estimate_two_norm: bool = True) -> dict[str, float]:
        """The paper's "potential fault detectors": ``||A||_2`` and ``||A||_F``."""
        bounds = {"frobenius": frobenius_norm(self.A)}
        if estimate_two_norm:
            bounds["two_norm"] = two_norm_estimate(self.A)
        return bounds

    def with_engine(self, engine) -> "TestProblem":
        """This problem with its matrix on another kernel tier.

        Returns ``self`` when the tier is unchanged; otherwise a shallow
        replacement whose matrix shares all data arrays with the original
        (see :meth:`~repro.sparse.csr.CSRMatrix.with_engine`).
        """
        A = self.A.with_engine(engine)
        if A is self.A:
            return self
        return dataclasses.replace(self, A=A)


def _manufactured_rhs(A: CSRMatrix, seed=0) -> tuple[np.ndarray, np.ndarray]:
    """Manufacture ``b = A @ x_exact`` with a smooth, O(1) exact solution."""
    rng = as_generator(seed)
    n = A.shape[0]
    x_exact = 1.0 + 0.5 * np.sin(np.linspace(0.0, 4.0 * np.pi, n)) + 0.01 * rng.standard_normal(n)
    return A.matvec(x_exact), x_exact


def poisson_problem(grid_n: int = 100, seed: int = 7) -> TestProblem:
    """The paper's SPD problem: 2-D Poisson on a ``grid_n x grid_n`` grid.

    ``grid_n=100`` reproduces the paper's 10,000-row matrix; smaller grids
    are used for fast tests and benchmarks.
    """
    A = poisson2d(grid_n)
    b, x_exact = _manufactured_rhs(A, seed=seed)
    return TestProblem(
        name=f"poisson-{grid_n}x{grid_n}",
        A=A,
        b=b,
        x_exact=x_exact,
        spd=True,
        description=(
            "2-D Poisson 5-point finite-difference matrix "
            f"(gallery('poisson',{grid_n}) equivalent), manufactured RHS"
        ),
        seed=seed,
    )


def circuit_problem(n_nodes: int = 25187, seed: int = 20140519,
                    jacobi_equilibrate: bool = True) -> TestProblem:
    """The nonsymmetric ill-conditioned problem: ``mult_dcop_03`` surrogate.

    Parameters
    ----------
    n_nodes : int
        Matrix dimension; defaults to the size of the real matrix.
    seed : int
        Seed for the synthetic circuit.
    jacobi_equilibrate : bool
        If True (default), symmetrically scale the matrix by the inverse
        square roots of its diagonal magnitudes before building the problem.
        Circuit simulators do the same before handing systems to a Krylov
        solver; it keeps the problem solvable by unpreconditioned GMRES while
        remaining nonsymmetric and badly conditioned.
    """
    A = mult_dcop_surrogate(n_nodes, seed=seed)
    if jacobi_equilibrate:
        diag = A.diagonal()
        scale = 1.0 / np.sqrt(np.maximum(np.abs(diag), 1e-300))
        A = _diagonal_scale(A, scale, scale)
    b, x_exact = _manufactured_rhs(A, seed=seed)
    return TestProblem(
        name=f"mult_dcop_surrogate-{n_nodes}",
        A=A,
        b=b,
        x_exact=x_exact,
        spd=False,
        description=(
            "Synthetic modified-nodal-analysis circuit matrix standing in for "
            "UF mult_dcop_03 (nonsymmetric, structurally full rank, ill-conditioned)"
        ),
        seed=seed,
    )


def _diagonal_scale(A: CSRMatrix, left: np.ndarray, right: np.ndarray) -> CSRMatrix:
    """Return ``diag(left) @ A @ diag(right)`` without densifying."""
    out = A.copy()
    out.data = A.data * left[A.row_ids] * right[A.indices]
    return out


def paper_problems(scale: str = "paper") -> dict[str, TestProblem]:
    """The two problems of the paper's evaluation, at a chosen scale.

    Parameters
    ----------
    scale : {"paper", "medium", "small", "tiny"}
        * ``"paper"`` — full-size matrices (10,000 and 25,187 rows), as in
          Table I.  Sweeps at this size take minutes.
        * ``"medium"`` — 2,500 and 5,000 rows.
        * ``"small"`` — 900 and 1,500 rows (default for benchmarks).
        * ``"tiny"`` — 100 and 200 rows (unit tests).
    """
    sizes = {
        "paper": (100, 25187),
        "medium": (50, 5000),
        "small": (30, 1500),
        "tiny": (10, 200),
    }
    if scale not in sizes:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(sizes)}")
    grid_n, circuit_n = sizes[scale]
    return {
        "poisson": poisson_problem(grid_n),
        "circuit": circuit_problem(circuit_n),
    }
