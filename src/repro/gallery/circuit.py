"""Synthetic circuit-simulation matrices (surrogate for ``mult_dcop_03``).

The paper's nonsymmetric test problem is ``mult_dcop_03`` from the UF Sparse
Matrix Collection: a 25,187-row DC operating-point circuit matrix that is
structurally full rank, nonsymmetric, and extremely ill-conditioned
(condition number ≈ 7.3e13).  The collection is not redistributable in this
offline environment, so :func:`mult_dcop_surrogate` builds a matrix with the
same *qualitative* profile from a modified-nodal-analysis (MNA) model:

* a resistor/conductance network whose edge conductances span many decades
  (circuit matrices mix pico-siemens leakage paths with multi-siemens
  drivers) — this produces the extreme condition number;
* voltage-controlled current sources (transistor transconductances) that
  contribute one-sided ``g_m`` entries — this makes the pattern and the
  values nonsymmetric;
* a strictly positive diagonal (every node has a path to ground), which
  gives structural full rank.

If the real matrix is available as a Matrix-Market file, pass its path to
the experiment harness instead (``repro.experiments.figure34`` accepts any
:class:`~repro.gallery.problems.TestProblem`).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import require_positive_int

__all__ = ["circuit_network", "mult_dcop_surrogate"]


def circuit_network(
    n_nodes: int,
    avg_degree: float = 4.0,
    conductance_decades: float = 12.0,
    coupling_fraction: float = 0.15,
    coupling_gain: float = 50.0,
    ground_conductance: float = 1e-9,
    seed=0,
) -> CSRMatrix:
    """Build an MNA-style conductance matrix for a random circuit.

    Parameters
    ----------
    n_nodes : int
        Matrix dimension (number of circuit nodes).
    avg_degree : float
        Average number of two-terminal elements (resistors) per node.
    conductance_decades : float
        Conductances are sampled log-uniformly over this many decades,
        centred at 1 S.  Larger values produce worse conditioning.
    coupling_fraction : float
        Fraction of nodes that receive a one-sided transconductance entry
        (this is what breaks symmetry).
    coupling_gain : float
        Scale of the transconductance entries relative to the local
        conductance level.
    ground_conductance : float
        Small conductance from every node to ground added to the diagonal;
        keeps the matrix nonsingular without masking the ill-conditioning.
    seed : int or numpy.random.Generator
        Seed for reproducibility.

    Returns
    -------
    CSRMatrix
        A nonsymmetric, structurally full-rank, ill-conditioned square matrix.
    """
    n = require_positive_int(n_nodes, "n_nodes")
    rng = as_generator(seed)

    # --- two-terminal elements (resistors): symmetric Laplacian stamps ----
    n_edges = max(n - 1, int(round(avg_degree * n / 2.0)))
    # Guarantee connectivity with a random spanning-tree backbone, then add
    # random extra edges.  A connected conductance network has full rank once
    # the ground conductance is added.
    perm = rng.permutation(n)
    tree_src = perm[1:]
    tree_dst = perm[rng.integers(0, np.arange(1, n))] if n > 1 else np.empty(0, dtype=np.int64)
    extra = max(0, n_edges - (n - 1))
    rand_src = rng.integers(0, n, size=extra)
    rand_dst = rng.integers(0, n, size=extra)
    keep = rand_src != rand_dst
    src = np.concatenate([tree_src, rand_src[keep]]).astype(np.int64)
    dst = np.concatenate([tree_dst, rand_dst[keep]]).astype(np.int64)

    half = conductance_decades / 2.0
    conduct = 10.0 ** rng.uniform(-half, half, size=src.shape[0])

    rows = [src, dst, src, dst]
    cols = [dst, src, src, dst]
    vals = [-conduct, -conduct, conduct, conduct]

    # --- ground conductances (diagonal) -----------------------------------
    diag_idx = np.arange(n, dtype=np.int64)
    rows.append(diag_idx)
    cols.append(diag_idx)
    vals.append(np.full(n, ground_conductance))

    # --- transconductance (g_m) stamps: one-sided, break symmetry ---------
    n_couplings = int(round(coupling_fraction * n))
    if n_couplings > 0:
        gm_rows = rng.integers(0, n, size=n_couplings).astype(np.int64)
        gm_cols = rng.integers(0, n, size=n_couplings).astype(np.int64)
        off_diag = gm_rows != gm_cols
        gm_rows, gm_cols = gm_rows[off_diag], gm_cols[off_diag]
        gm_vals = coupling_gain * 10.0 ** rng.uniform(-half / 2.0, half / 2.0,
                                                      size=gm_rows.shape[0])
        signs = rng.choice([-1.0, 1.0], size=gm_rows.shape[0])
        rows.append(gm_rows)
        cols.append(gm_cols)
        vals.append(signs * gm_vals)

    coo = COOMatrix(
        (n, n),
        rows=np.concatenate(rows),
        cols=np.concatenate(cols),
        values=np.concatenate(vals),
    )
    return coo.tocsr()


def mult_dcop_surrogate(n_nodes: int = 25187, seed: int = 20140519) -> CSRMatrix:
    """The default surrogate for the paper's ``mult_dcop_03`` matrix.

    With the default size (25,187 nodes, the dimension of the real matrix)
    the surrogate is nonsymmetric, structurally full rank, and has a nonzero
    count of the same order as the original (~193k).  The conductance spread
    is chosen so that, after the Jacobi equilibration applied by
    :func:`repro.gallery.problems.circuit_problem`, the matrix remains badly
    conditioned (≫ 1e9) yet an unpreconditioned FT-GMRES(25) nested solve
    still converges in a few tens of outer iterations at reduced sizes — the
    regime the paper's Figure 4 explores.  Smaller ``n_nodes`` values keep
    the same character and are the default for the benchmark configurations.

    Parameters
    ----------
    n_nodes : int
        Matrix dimension; defaults to the size of the real ``mult_dcop_03``.
    seed : int
        Seed fixing the synthetic circuit topology and element values.
    """
    return circuit_network(
        n_nodes,
        avg_degree=6.0,
        conductance_decades=6.0,
        coupling_fraction=0.15,
        coupling_gain=10.0,
        ground_conductance=1e-10,
        seed=seed,
    )
