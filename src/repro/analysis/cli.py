"""Command-line front end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean (or everything suppressed/baselined), 1 active
findings remain, 2 usage error (bad path, malformed baseline, unknown
rule).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.analysis.core import all_rules, default_target, run_lint
from repro.utils.io import atomic_write_json

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the repro project static-analysis rules.")
    parser.add_argument("target", nargs="?", default=None,
                        help="directory or file to scan "
                             "(default: src/repro under the cwd, else the "
                             "installed repro package)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write every current finding to FILE as a new "
                             "baseline and exit 0")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",")
                  if part.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    target = args.target or default_target()
    if not os.path.exists(target):
        print(f"no such file or directory: {target}", file=sys.stderr)
        return 2

    baseline = args.baseline
    if baseline is None and not args.no_baseline and args.write_baseline is None:
        candidate = os.path.join(os.getcwd(), DEFAULT_BASELINE)
        if os.path.isfile(candidate):
            baseline = candidate
    if args.no_baseline:
        baseline = None

    try:
        report = run_lint(target, rules=rules, baseline=baseline)
    except (OSError, ValueError) as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        entries = [{"rule": f.rule, "file": f.file, "message": f.message}
                   for f in report.findings if not f.suppressed]
        atomic_write_json(args.write_baseline,
                          {"version": 1, "findings": entries},
                          indent=2, sort_keys=True)
        print(f"wrote {len(entries)} baseline entries to "
              f"{args.write_baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
