"""Project-native static analysis (``repro lint``).

An AST-based checker framework plus five self-hosting rules that encode
this repository's cross-cutting contracts:

========  =========================  ==========================================
rule id   name                       contract
========  =========================  ==========================================
RPR001    atomic-durability          durable writes go through
                                     :func:`repro.utils.io.atomic_write_json`;
                                     manifest read-modify-write under StoreLock
RPR002    determinism                no wall clock / unseeded RNG /
                                     set-iteration in trial-identity modules
RPR003    registry-spec-coherence    registry entries bind, specs round-trip,
                                     fingerprint covers every field, CLI flag
                                     table agrees with the parser and specs
RPR004    event-kind-exhaustiveness  every emitted event kind is declared in
                                     EVENT_KINDS (and vice versa)
RPR005    fork-lock-safety           no threads in forking modules; flock
                                     acquire/release pairing
========  =========================  ==========================================

Entry points: ``repro lint``, ``python -m repro.analysis``, or
:func:`run_lint` from code.  Suppress one finding with a line-scoped
``# repro: allow(RPRnnn)`` pragma; grandfather legacy findings in a
committed ``lint-baseline.json``.
"""

from repro.analysis.core import (LintReport, Project, ProjectRule, Rule,
                                 SourceFile, all_rules, default_target,
                                 load_baseline, run_lint)
from repro.analysis.findings import SEVERITIES, Finding

__all__ = [
    "Finding",
    "SEVERITIES",
    "SourceFile",
    "Project",
    "Rule",
    "ProjectRule",
    "LintReport",
    "all_rules",
    "default_target",
    "load_baseline",
    "run_lint",
]
