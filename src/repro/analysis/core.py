"""Checker framework: source model, rule protocol, pragma + baseline logic.

The framework walks a Python source tree, parses each file once, and runs
two kinds of rules over it:

* **AST rules** (:class:`Rule` with :meth:`Rule.check_file`) inspect one
  file at a time through its parsed ``ast`` tree.  Path filters
  (:meth:`Rule.applies_to`) scope a rule to the modules whose contract it
  enforces.
* **Project rules** (:class:`ProjectRule`) see the whole
  :class:`Project` at once — and may import the library under analysis to
  check *semantic* coherence (registry entries resolve, spec fingerprints
  cover every field) that no purely syntactic pass can establish.

Suppression is line-scoped: a ``# repro: allow(RPR001)`` comment anywhere
on the physical line a finding points at marks that finding suppressed
(``allow(*)`` suppresses every rule).  Suppressed findings are still
reported — visibly, so pragmas stay auditable — but do not fail the gate.

Grandfathered findings live in a committed JSON baseline file keyed by
``(rule, file, message)``; see :func:`load_baseline`.
"""

from __future__ import annotations

import ast
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.analysis.findings import SEVERITIES, Finding

__all__ = [
    "SourceFile",
    "Project",
    "Rule",
    "ProjectRule",
    "LintReport",
    "run_lint",
    "load_baseline",
    "default_target",
    "PRAGMA_RE",
]

#: ``# repro: allow(RPR001)`` / ``# repro: allow(RPR001, RPR002)`` /
#: ``# repro: allow(*)``
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_*,\s]+?)\s*\)")


@dataclass
class SourceFile:
    """One parsed source file plus its pragma map."""

    path: str          # absolute path on disk
    rel: str           # path relative to the scan base, '/'-separated
    text: str
    tree: ast.AST
    #: line number -> set of allowed rule ids ('*' allows everything)
    pragmas: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, rel: str) -> "SourceFile":
        with tokenize.open(path) as handle:
            text = handle.read()
        tree = ast.parse(text, filename=rel)
        pragmas: dict[int, set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = PRAGMA_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")
                         if part.strip()}
                pragmas.setdefault(lineno, set()).update(rules)
        return cls(path=path, rel=rel, text=text, tree=tree, pragmas=pragmas)

    def allows(self, rule_id: str, line: int) -> bool:
        allowed = self.pragmas.get(line)
        if not allowed:
            return False
        return "*" in allowed or rule_id in allowed


@dataclass
class Project:
    """The scanned tree: scan base directory plus parsed files."""

    base: str                      # directory rel paths are relative to
    files: list[SourceFile]
    #: parse failures as (rel, message) — reported as findings by the runner
    broken: list[tuple[str, str]] = field(default_factory=list)

    def file(self, rel: str) -> SourceFile | None:
        for src in self.files:
            if src.rel == rel:
                return src
        return None

    @classmethod
    def scan(cls, target: str) -> "Project":
        """Parse every ``*.py`` under ``target`` (a dir or single file).

        Relative paths are computed against the *parent* of the target
        directory, so scanning ``.../src/repro`` yields ``repro/...``
        paths no matter where the checkout lives.
        """
        target = os.path.abspath(target)
        if os.path.isfile(target):
            base = os.path.dirname(os.path.dirname(target)) or os.sep
            paths = [target]
        else:
            base = os.path.dirname(target) or os.sep
            paths = []
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in ("__pycache__",))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        paths.append(os.path.join(dirpath, name))
        files: list[SourceFile] = []
        broken: list[tuple[str, str]] = []
        for path in paths:
            rel = os.path.relpath(path, base).replace(os.sep, "/")
            try:
                files.append(SourceFile.parse(path, rel))
            except (SyntaxError, UnicodeDecodeError) as exc:
                broken.append((rel, f"{type(exc).__name__}: {exc}"))
        return cls(base=base, files=files, broken=broken)


class Rule:
    """Base class for per-file AST rules.

    Subclasses set ``id`` (``RPRnnn``), ``name``, ``description``, and
    implement :meth:`check_file`.  ``severity`` is the default severity
    for findings created through :meth:`finding`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = "error"

    def applies_to(self, rel: str) -> bool:
        """Whether this rule scans the file at scan-relative path ``rel``."""
        return True

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        return ()

    def finding(self, src: SourceFile, node: ast.AST | None, message: str,
                *, severity: str | None = None,
                **data: Any) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            file=src.rel,
            line=line,
            col=col,
            message=message,
            data=dict(data) if data else {},
        )


class ProjectRule(Rule):
    """A rule that checks the whole project at once (may import the
    library under analysis for semantic checks)."""

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def project_finding(self, rel: str, line: int, message: str,
                        *, severity: str | None = None,
                        **data: Any) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            file=rel,
            line=max(int(line), 1),
            col=0,
            message=message,
            data=dict(data) if data else {},
        )


@dataclass
class LintReport:
    """The outcome of one lint run."""

    target: str
    files_scanned: int
    findings: list[Finding]
    rules: list[Rule]
    baseline_path: str | None = None
    #: baseline entries that no longer match any finding (stale)
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_dict(self) -> dict[str, Any]:
        severities = {sev: sum(1 for f in self.findings if f.severity == sev)
                      for sev in SEVERITIES}
        return {
            "version": 1,
            "target": self.target,
            "rules": [{"id": r.id, "name": r.name,
                       "description": r.description} for r in self.rules],
            "summary": {
                "files": self.files_scanned,
                "findings": len(self.findings),
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "severities": severities,
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (f"{self.files_scanned} files scanned; "
                   f"{len(self.findings)} findings "
                   f"({len(self.active)} active, "
                   f"{len(self.suppressed)} suppressed, "
                   f"{len(self.baselined)} baselined)")
        for key in self.stale_baseline:
            lines.append(f"stale baseline entry: {key[0]} {key[1]}: {key[2]}")
        lines.append(summary)
        return "\n".join(lines)


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """Load the baseline file: ``{"findings": [{rule, file, message}, ...]}``.

    Tolerates the flat-list form ``[{...}, ...]`` as well.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        try:
            keys.add((str(entry["rule"]), str(entry["file"]),
                      str(entry["message"])))
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"malformed baseline entry in {path}: {entry!r}") from exc
    return keys


def default_target() -> str:
    """The tree ``repro lint`` scans when no path is given.

    Prefers ``src/repro`` under the current directory (the checkout
    layout); falls back to the installed package directory.
    """
    candidate = os.path.join(os.getcwd(), "src", "repro")
    if os.path.isdir(candidate):
        return candidate
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def all_rules() -> list[Rule]:
    """The registered rule set, RPR001..RPR005, in id order."""
    from repro.analysis.rules import RULES

    return [cls() for cls in RULES]


def run_lint(
    target: str | None = None,
    *,
    rules: Sequence[Rule] | None = None,
    baseline: str | None = None,
) -> LintReport:
    """Scan ``target`` (default: the repro source tree) with ``rules``.

    Returns a :class:`LintReport`; ``report.exit_code`` is 1 when any
    active (non-suppressed, non-baselined, error-severity) finding
    remains.
    """
    target = os.path.abspath(target or default_target())
    active_rules = list(rules) if rules is not None else all_rules()
    project = Project.scan(target)

    findings: list[Finding] = []
    for rel, message in project.broken:
        findings.append(Finding(rule="RPR000", severity="error", file=rel,
                                line=1, col=0,
                                message=f"file does not parse: {message}"))
    for rule in active_rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
        for src in project.files:
            if rule.applies_to(src.rel):
                findings.extend(rule.check_file(src))

    # Line-scoped pragma suppression.
    resolved: list[Finding] = []
    for finding in findings:
        src = project.file(finding.file)
        if src is not None and src.allows(finding.rule, finding.line):
            finding = finding.with_flags(suppressed=True)
        resolved.append(finding)

    # Baseline matching.
    baseline_keys: set[tuple[str, str, str]] = set()
    if baseline:
        baseline_keys = load_baseline(baseline)
    matched: set[tuple[str, str, str]] = set()
    final: list[Finding] = []
    for finding in resolved:
        key = finding.baseline_key()
        if not finding.suppressed and key in baseline_keys:
            finding = finding.with_flags(baselined=True)
            matched.add(key)
        final.append(finding)
    stale = sorted(baseline_keys - matched)

    final.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return LintReport(
        target=target,
        files_scanned=len(project.files),
        findings=final,
        rules=active_rules,
        baseline_path=baseline,
        stale_baseline=stale,
    )
