"""Small AST helpers shared by the :mod:`repro.analysis` rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "call_name", "str_const", "walk_calls",
           "keyword_arg", "contains_attr"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call invokes (``json.dump``, ``open``), else None."""
    return dotted_name(node.func)


def str_const(node: ast.AST | None) -> str | None:
    """The value of a string literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every :class:`ast.Call` in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def keyword_arg(node: ast.Call, name: str) -> ast.AST | None:
    """The value node of keyword ``name`` in a call, else ``None``."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def contains_attr(node: ast.AST, attr: str) -> bool:
    """Whether any Attribute/Name inside ``node`` is named ``attr``.

    Used to classify ``fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)``
    style flag expressions without evaluating them.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == attr:
            return True
        if isinstance(sub, ast.Name) and sub.id == attr:
            return True
    return False
