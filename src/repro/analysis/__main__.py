"""``python -m repro.analysis`` — same front end as ``repro lint``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
