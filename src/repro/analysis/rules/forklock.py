"""RPR005 — fork/lock safety in daemon and supervisor paths.

The service daemon and the sharded supervisor mix process forking with
threads and advisory file locks — a combination with two classic
footguns this rule patrols in ``repro/exec/``, ``repro/service/``, and
``repro/results/store.py``:

* **threads before fork**: a module that obtains a fork
  multiprocessing context must not also create ``threading.Thread``
  objects — a forked child inherits the parent's locked internal state
  (logging, allocator, queue locks) held by threads that do not exist in
  the child, and deadlocks.  (The daemon keeps its HTTP thread in
  ``server.py`` and its forking scheduler in ``scheduler.py`` for exactly
  this reason, with ``register_fork_cleanup`` closing inherited state.)
  Raw ``os.fork()`` is flagged unconditionally — the multiprocessing
  context is the supported spawn surface.
* **flock pairing**: a file that takes ``fcntl.flock(..., LOCK_EX)``
  must also contain the ``LOCK_UN`` release path; relying on
  close-on-exit keeps the lock alive in every forked child that
  inherited the descriptor.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import call_name, contains_attr, str_const
from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["ForkLockSafetyRule"]

_PATH_PREFIXES = ("repro/exec/", "repro/service/")
_PATH_FILES = ("repro/results/store.py",)


class ForkLockSafetyRule(Rule):
    id = "RPR005"
    name = "fork-lock-safety"
    description = ("no raw os.fork, no threads in forking modules, and "
                   "flock acquire/release pairing")

    def applies_to(self, rel: str) -> bool:
        return rel in _PATH_FILES or any(rel.startswith(p)
                                         for p in _PATH_PREFIXES)

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        fork_context_calls: list[ast.Call] = []
        thread_calls: list[ast.Call] = []
        flock_ex: list[ast.Call] = []
        flock_un = False
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "os.fork":
                findings.append(self.finding(
                    src, node,
                    "raw os.fork(); use multiprocessing.get_context('fork')"
                    ".Process so the supervisor/scheduler lifecycle "
                    "(join, exitcode, daemon flags) stays uniform"))
            elif name is not None and name.endswith("get_context"):
                if any(str_const(arg) == "fork" for arg in node.args):
                    fork_context_calls.append(node)
            elif name is not None and (name == "Thread"
                                       or name.endswith(".Thread")):
                thread_calls.append(node)
            elif name is not None and name.endswith("flock"):
                if len(node.args) >= 2 and contains_attr(node.args[1],
                                                         "LOCK_UN"):
                    flock_un = True
                elif len(node.args) >= 2 and contains_attr(node.args[1],
                                                           "LOCK_EX"):
                    flock_ex.append(node)
        if fork_context_calls and thread_calls:
            for call in thread_calls:
                findings.append(self.finding(
                    src, call,
                    "threading.Thread created in a module that forks "
                    "workers; forked children inherit lock state held by "
                    "threads that no longer exist — keep threads and fork "
                    "sites in separate modules (see server.py vs "
                    "scheduler.py) or pragma a justified exception"))
        if flock_ex and not flock_un:
            for call in flock_ex:
                findings.append(self.finding(
                    src, call,
                    "fcntl.flock(LOCK_EX) with no LOCK_UN release in this "
                    "file; an explicit unlock before close keeps forked "
                    "children that inherited the descriptor from holding "
                    "the lock forever"))
        return findings
