"""RPR001 — atomic durability in store/service/supervisor modules.

The crash-safety story (resume, supervisor restart, daemon SIGKILL
recovery) rests on every durable JSON record reaching disk through the
atomic tmp + ``os.replace`` pattern, concentrated in
:func:`repro.utils.io.atomic_write_json`, and on cross-process
read-modify-write cycles running under a
:class:`~repro.results.store.StoreLock`.  This rule patrols the modules
that own durable state:

* ``repro/results/store.py``
* ``repro/exec/supervisor.py``
* everything under ``repro/service/``

and flags:

* truncating ``open(..., "w"/"x")`` calls whose target is not an obvious
  ``*.tmp`` sibling (append modes are the JSONL contract and are fine);
* any direct ``json.dump`` — serialization must go through the helper so
  the replace discipline cannot be forgotten half of the time;
* functions that both read and write a durable record with any of those
  calls outside a ``with <...lock...>():`` block (the lost-update shape).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import call_name, dotted_name, keyword_arg, str_const
from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["AtomicDurabilityRule"]

#: Exact files / directory prefixes with durable-write responsibilities.
DURABLE_FILES = ("repro/results/store.py", "repro/exec/supervisor.py")
DURABLE_PREFIXES = ("repro/service/",)

#: Method names that read a durable record (manifest, job record, trials).
READ_VERBS = frozenset({"read", "manifest", "read_trials", "load"})
#: Method names that persist a durable record.
WRITE_VERBS = frozenset({"write", "write_manifest", "_write_manifest", "save"})


def _is_tmp_target(node: ast.AST | None) -> bool:
    """Whether an ``open()`` target is recognizably a ``.tmp`` sibling."""
    if node is None:
        return False
    name = dotted_name(node)
    if name is not None and "tmp" in name.lower():
        return True
    literal = str_const(node)
    if literal is not None and ".tmp" in literal:
        return True
    if isinstance(node, ast.JoinedStr):
        return any(".tmp" in part.value for part in node.values
                   if isinstance(part, ast.Constant)
                   and isinstance(part.value, str))
    if isinstance(node, ast.BinOp):
        return _is_tmp_target(node.left) or _is_tmp_target(node.right)
    if isinstance(node, ast.Call):
        # os.path.join(..., "x.tmp") and friends.
        return any(_is_tmp_target(arg) for arg in node.args)
    return False


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call ("r" when omitted)."""
    mode = keyword_arg(node, "mode")
    if mode is None and len(node.args) >= 2:
        mode = node.args[1]
    if mode is None:
        return "r"
    return str_const(mode)


class AtomicDurabilityRule(Rule):
    id = "RPR001"
    name = "atomic-durability"
    description = ("durable writes must go through atomic_write_json / "
                   "tmp+os.replace; durable RMW cycles must hold a StoreLock")

    def applies_to(self, rel: str) -> bool:
        return rel in DURABLE_FILES or any(rel.startswith(p)
                                           for p in DURABLE_PREFIXES)

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(src, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_rmw(src, node))
        return findings

    # ------------------------------------------------------------------ #
    def _check_call(self, src: SourceFile, node: ast.Call) -> Iterable[Finding]:
        name = call_name(node)
        if name == "open":
            mode = _open_mode(node)
            if mode is None:
                return  # dynamic mode: cannot judge statically
            if any(ch in mode for ch in "wx"):
                target = node.args[0] if node.args else None
                if not _is_tmp_target(target):
                    yield self.finding(
                        src, node,
                        f"truncating open(mode={mode!r}) on a durable path; "
                        f"write a '.tmp' sibling and os.replace() it — or "
                        f"use repro.utils.io.atomic_write_json")
        elif name == "json.dump":
            yield self.finding(
                src, node,
                "json.dump to a live handle in a durability-critical module; "
                "route the record through repro.utils.io.atomic_write_json "
                "(json.dumps into an append-only JSONL stream is the other "
                "blessed pattern)")

    # ------------------------------------------------------------------ #
    def _check_rmw(self, src: SourceFile,
                   func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[Finding]:
        """Flag read+write method pairs not fully under a lock context."""
        reads: list[tuple[ast.Call, bool]] = []
        writes: list[tuple[ast.Call, bool]] = []

        def visit(node: ast.AST, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda, ast.ClassDef)):
                    continue  # nested scopes are analyzed on their own
                locked = under_lock
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    if any(self._is_lock_expr(item.context_expr)
                           for item in child.items):
                        locked = True
                if isinstance(child, ast.Call):
                    verb = self._method_verb(child)
                    if verb in READ_VERBS:
                        reads.append((child, locked))
                    elif verb in WRITE_VERBS:
                        writes.append((child, locked))
                visit(child, locked)

        visit(func, False)
        if not reads or not writes:
            return
        unlocked = [call for call, locked in reads + writes if not locked]
        if not unlocked:
            return
        verbs = sorted({self._method_verb(call) for call in unlocked})
        yield self.finding(
            src, func,
            f"{func.name}() reads and rewrites a durable record but "
            f"{'/'.join(str(v) for v in verbs)} runs outside a lock "
            f"context; wrap the read-modify-write in `with <StoreLock>:` "
            f"so concurrent writers cannot lose updates")

    @staticmethod
    def _method_verb(node: ast.Call) -> str | None:
        """The method name of an attribute call (``self.read(...)`` -> read)."""
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    @staticmethod
    def _is_lock_expr(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            return name is not None and "lock" in name.lower()
        name = dotted_name(expr)
        return name is not None and "lock" in name.lower()
