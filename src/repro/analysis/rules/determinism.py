"""RPR002 — determinism in trial-identity modules.

The cross-backend identity contract — serial, thread, process, batched,
and sharded execution must produce bit-identical trial records — holds
only while everything feeding a trial's outcome is a pure function of the
campaign seed and the trial index.  This rule patrols the modules on that
path (``repro/core/``, ``repro/faults/``, ``repro/exec/``) and flags:

* ``time.time()`` — wall clock reads (the supervisor's heartbeat/timeout
  bookkeeping is legitimate infrastructure wall-clock and carries
  ``# repro: allow(RPR002)`` pragmas);
* unseeded randomness: any ``random.*`` call, module-level
  ``np.random.<fn>(...)`` draws, and ``np.random.default_rng()`` with no
  seed (the blessed pattern is ``default_rng((seed, trial_index))`` — see
  ``repro.faults.campaign._trial_injector``);
* direct iteration over set displays/calls (set order is
  insertion-history dependent and must be ``sorted(...)`` first).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import call_name, walk_calls
from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["DeterminismRule"]

TRIAL_IDENTITY_PREFIXES = ("repro/core/", "repro/faults/", "repro/exec/")

#: np.random attributes that are fine (seeded-generator constructors).
_SEEDED_CONSTRUCTORS = frozenset({"default_rng", "Generator", "SeedSequence",
                                  "PCG64", "Philox", "MT19937", "SFC64"})


class DeterminismRule(Rule):
    id = "RPR002"
    name = "determinism"
    description = ("no wall-clock, unseeded RNG, or set-iteration in "
                   "modules feeding the trial-identity contract")

    def applies_to(self, rel: str) -> bool:
        return any(rel.startswith(p) for p in TRIAL_IDENTITY_PREFIXES)

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for call in walk_calls(src.tree):
            name = call_name(call)
            if name is None:
                continue
            if name == "time.time":
                findings.append(self.finding(
                    src, call,
                    "time.time() in a trial-identity module; wall-clock "
                    "must not influence trial outcomes (pragma legitimate "
                    "infrastructure uses with `# repro: allow(RPR002)`)"))
            elif name.startswith("random."):
                findings.append(self.finding(
                    src, call,
                    f"{name}() draws from the unseeded process-global RNG; "
                    f"use np.random.default_rng((seed, trial_index)) so "
                    f"every backend replays the same stream"))
            else:
                findings.extend(self._check_np_random(src, call, name))
        for node in ast.walk(src.tree):
            findings.extend(self._check_set_iteration(src, node))
        return findings

    # ------------------------------------------------------------------ #
    def _check_np_random(self, src: SourceFile, call: ast.Call,
                         name: str) -> Iterable[Finding]:
        parts = name.split(".")
        if len(parts) < 3 or parts[0] not in ("np", "numpy") or parts[1] != "random":
            return
        fn = parts[2]
        if fn == "default_rng":
            if not call.args and not call.keywords:
                yield self.finding(
                    src, call,
                    "np.random.default_rng() with no seed is entropy-seeded "
                    "per process; derive the seed from (campaign seed, "
                    "trial index) instead")
        elif fn not in _SEEDED_CONSTRUCTORS:
            yield self.finding(
                src, call,
                f"np.random.{fn}() uses NumPy's process-global RNG; draw "
                f"from a per-trial np.random.default_rng((seed, "
                f"trial_index)) generator instead")

    # ------------------------------------------------------------------ #
    def _check_set_iteration(self, src: SourceFile,
                             node: ast.AST) -> Iterable[Finding]:
        iters: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_set_expr(it):
                yield self.finding(
                    src, it,
                    "iterating a set directly in a trial-identity module; "
                    "set order depends on insertion history — iterate "
                    "sorted(...) for a deterministic order")

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            return name in ("set", "frozenset")
        return False
