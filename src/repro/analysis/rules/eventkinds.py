"""RPR004 — event-kind exhaustiveness.

Every event the library emits must use a ``kind`` declared in
:data:`repro.results.events.EVENT_KINDS` — the vocabulary the README's
event table, the sinks, and stream consumers rely on.  The rule collects
literal kinds from the three emission shapes in use:

* ``Event("kind", ...)`` / ``Event(kind="kind", ...)`` constructions;
* ``<event log>.record("kind", ...)`` calls (the solver-level helper);
* ``_stream_line({"kind": "...", ...})`` service-stream payloads.

A literal kind missing from the table is an error wherever it appears
(including fixture trees).  When the scanned tree is the repro source
itself, the reverse direction is checked too: a *declared* kind that
nothing emits is reported as a warning (dead vocabulary misleads stream
consumers).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.astutil import keyword_arg, str_const, walk_calls
from repro.analysis.core import Project, ProjectRule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["EventKindExhaustivenessRule"]

_EVENTS_MODULE = "repro/results/events.py"


def _emitted_kinds(src: SourceFile) -> Iterator[tuple[str, ast.Call]]:
    """Every literal event kind emitted in one file, with its call node."""
    for call in walk_calls(src.tree):
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name == "Event":
            kind = str_const(call.args[0] if call.args else
                             keyword_arg(call, "kind"))
            if kind is not None:
                yield kind, call
        elif name == "record":
            kind = str_const(call.args[0] if call.args else
                             keyword_arg(call, "kind"))
            if kind is not None:
                yield kind, call
        elif name == "_stream_line":
            for arg in call.args:
                if isinstance(arg, ast.Dict):
                    for key, value in zip(arg.keys, arg.values):
                        if str_const(key) == "kind":
                            kind = str_const(value)
                            if kind is not None:
                                yield kind, call


class EventKindExhaustivenessRule(ProjectRule):
    id = "RPR004"
    name = "event-kind-exhaustiveness"
    description = ("every emitted Event kind must appear in the declared "
                   "EVENT_KINDS table (and every declared kind be emitted)")

    def check_project(self, project: Project) -> Iterable[Finding]:
        from repro.results.events import EVENT_KINDS

        findings: list[Finding] = []
        emitted: set[str] = set()
        for src in project.files:
            for kind, call in _emitted_kinds(src):
                emitted.add(kind)
                if kind not in EVENT_KINDS:
                    findings.append(self.finding(
                        src, call,
                        f"event kind {kind!r} is not declared in "
                        f"repro.results.events.EVENT_KINDS; add it to the "
                        f"kind table (and the README event docs) or fix "
                        f"the typo"))
        # Reverse direction only when self-hosting on the real tree.
        events_src = project.file(_EVENTS_MODULE)
        if events_src is not None:
            for kind in sorted(EVENT_KINDS - emitted):
                findings.append(self.finding(
                    events_src, None,
                    f"declared event kind {kind!r} is never emitted; "
                    f"remove it from EVENT_KINDS or wire up the emitter",
                    severity="warning"))
        return findings
