"""The project-specific rule set, RPR001–RPR005.

``RULES`` is the registered rule order the framework instantiates; keep it
sorted by rule id so reports and the README table stay aligned.
"""

from repro.analysis.rules.coherence import RegistrySpecCoherenceRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.durability import AtomicDurabilityRule
from repro.analysis.rules.eventkinds import EventKindExhaustivenessRule
from repro.analysis.rules.forklock import ForkLockSafetyRule

__all__ = ["RULES", "AtomicDurabilityRule", "DeterminismRule",
           "RegistrySpecCoherenceRule", "EventKindExhaustivenessRule",
           "ForkLockSafetyRule"]

RULES = (
    AtomicDurabilityRule,     # RPR001
    DeterminismRule,          # RPR002
    RegistrySpecCoherenceRule,  # RPR003
    EventKindExhaustivenessRule,  # RPR004
    ForkLockSafetyRule,       # RPR005
)
