"""RPR003 — registry / spec / fingerprint / CLI coherence.

The config-first surface (PR 4) is a set of cross-layer promises:

* every registered component's declared colon-positional names exist on
  its factory, so every spec string that names it can actually bind;
* every paper fault model's ``to_spec()`` round-trips through
  ``resolve_fault_model`` back to the same spec;
* a representative :class:`~repro.specs.CampaignSpec` survives the
  ``to_dict -> JSON -> from_dict`` cycle unchanged;
* every ``CampaignSpec`` field either changes
  :func:`~repro.results.store.campaign_fingerprint` or is listed on the
  documented exclusion list
  (:data:`~repro.results.store.FINGERPRINT_EXCLUDED_FIELDS`), and no
  ``ExecutionSpec`` knob ever changes it;
* every CLI flag in the runner's ``SPEC_FLAG_DESTS`` table exists on the
  argparse parser and its dotted path resolves to a real spec field.

Unlike the purely syntactic rules this one *imports the library under
analysis* and probes it — it only runs when the scanned tree is the repro
source tree itself (the self-hosting configuration), never on fixture
trees.  A new spec field without a probe value below is itself a finding:
extend :data:`CAMPAIGN_FIELD_PROBES` / :data:`EXEC_FIELD_PROBES` (or the
exclusion list) in the same change that adds the field.
"""

from __future__ import annotations

import inspect
import json
import os
from typing import Any, Iterable

from repro.analysis.core import Project, ProjectRule
from repro.analysis.findings import Finding

__all__ = ["RegistrySpecCoherenceRule",
           "CAMPAIGN_FIELD_PROBES", "EXEC_FIELD_PROBES"]

#: A valid non-default value per CampaignSpec field, used to probe whether
#: the field enters the campaign fingerprint.
CAMPAIGN_FIELD_PROBES: dict[str, Any] = {
    "problem": "poisson:8",
    "inner_iterations": 26,
    "max_outer": 101,
    "outer_tol": 1e-7,
    "fault_classes": {"probe": "bitflip"},
    "mgs_position": "last",
    "detector": "bound",
    "detector_response": "flag",
    "site": "spmv",
    "fault_rate": 2,
    "fault_persistence": "sticky",
    "stride": 2,
    "locations": (1, 2),
    "solver": {"method": "ft_gmres", "tol": 1e-9},
    "exec": {"backend": "thread"},
}

#: A valid ExecutionSpec construction exercising each knob — none of these
#: may change the fingerprint (execution is excluded wholesale).
EXEC_FIELD_PROBES: dict[str, dict[str, Any]] = {
    "backend": {"backend": "thread"},
    "workers": {"workers": 3},
    "chunksize": {"workers": 2, "chunksize": 7},
    "batch_size": {"batch_size": 9},
    "kernels": {"kernels": "numpy"},
    "trial_timeout": {"trial_timeout": 12.5},
    "shards": {"shards": 3},
    "max_retries": {"shards": 2, "max_retries": 5},
    "heartbeat_interval": {"shards": 2, "heartbeat_interval": 0.5},
}


def _rel_path(path: str | None) -> str:
    """A repro-relative path (``repro/...``) for an absolute source file."""
    if not path:
        return "repro/registry.py"
    import repro

    base = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    rel = os.path.relpath(os.path.abspath(path), base)
    return rel.replace(os.sep, "/")


def _anchor(obj) -> tuple[str, int]:
    """``(rel_path, line)`` of a live object's definition, best effort."""
    try:
        path = inspect.getsourcefile(obj)
        _, line = inspect.getsourcelines(obj)
        return _rel_path(path), line
    except (TypeError, OSError):
        return "repro/registry.py", 1


class RegistrySpecCoherenceRule(ProjectRule):
    id = "RPR003"
    name = "registry-spec-coherence"
    description = ("registered components, spec round-trips, fingerprint "
                   "coverage, and CLI flag tables must agree")

    def check_project(self, project: Project) -> Iterable[Finding]:
        # Semantic checks probe the importable library; they are only
        # meaningful when the scanned tree IS the library source tree.
        if project.file("repro/specs.py") is None:
            return []
        findings: list[Finding] = []
        for check in (self._check_registry, self._check_fault_round_trips,
                      self._check_spec_round_trip,
                      self._check_fingerprint_coverage,
                      self._check_cli_flags):
            try:
                findings.extend(check())
            except Exception as exc:  # a crashed check IS a coherence failure
                findings.append(self.project_finding(
                    "repro/specs.py", 1,
                    f"coherence check {check.__name__} crashed: "
                    f"{type(exc).__name__}: {exc}"))
        return findings

    # ------------------------------------------------------------------ #
    def _check_registry(self) -> Iterable[Finding]:
        from repro.registry import NAMESPACES, registry

        for namespace in NAMESPACES:
            space = registry._spaces[namespace]
            seen: set[int] = set()
            for entry in space.values():
                if id(entry) in seen:
                    continue
                seen.add(id(entry))
                try:
                    params = inspect.signature(entry.factory).parameters
                except (TypeError, ValueError):
                    continue  # C-level factory: nothing to check statically
                names = list(params)
                has_var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD
                                 for p in params.values())
                rel, line = _anchor(entry.factory)
                if not names or names[0] not in ("ctx", "context"):
                    yield self.project_finding(
                        rel, line,
                        f"{namespace} {entry.name!r}: factory's first "
                        f"parameter must be the ResolveContext "
                        f"(got {names[:1] or 'no parameters'})")
                for positional in entry.positional:
                    if positional not in names and not has_var_kw:
                        yield self.project_finding(
                            rel, line,
                            f"{namespace} {entry.name!r} declares colon "
                            f"positional {positional!r} but its factory "
                            f"accepts {names[1:]}; spec strings like "
                            f"'{entry.name}:...' cannot bind")

    # ------------------------------------------------------------------ #
    def _check_fault_round_trips(self) -> Iterable[Finding]:
        from repro.faults.models import PAPER_FAULT_CLASSES
        from repro.registry import resolve_fault_model

        for label, model in sorted(PAPER_FAULT_CLASSES.items()):
            spec = model.to_spec()
            rel, line = _anchor(type(model))
            try:
                rebuilt = resolve_fault_model(spec)
            except Exception as exc:
                yield self.project_finding(
                    rel, line,
                    f"fault class {label!r}: to_spec() produced {spec!r} "
                    f"which resolve_fault_model cannot rebuild ({exc})")
                continue
            if rebuilt.to_spec() != spec:
                yield self.project_finding(
                    rel, line,
                    f"fault class {label!r}: to_spec() does not round-trip "
                    f"({spec!r} -> {rebuilt.to_spec()!r})")

    # ------------------------------------------------------------------ #
    def _check_spec_round_trip(self) -> Iterable[Finding]:
        from repro.specs import CampaignSpec

        spec = CampaignSpec().replace(**{
            name: value for name, value in CAMPAIGN_FIELD_PROBES.items()
            if name not in ("solver", "exec", "fault_classes")})
        payload = json.loads(json.dumps(spec.to_dict()))
        rebuilt = CampaignSpec.from_dict(payload)
        if rebuilt != spec:
            yield self.project_finding(
                "repro/specs.py", 1,
                f"CampaignSpec does not survive to_dict -> JSON -> "
                f"from_dict: {spec.to_dict()!r} rebuilt as "
                f"{rebuilt.to_dict()!r}")

    # ------------------------------------------------------------------ #
    def _check_fingerprint_coverage(self) -> Iterable[Finding]:
        import dataclasses

        from repro.results.store import (FINGERPRINT_EXCLUDED_FIELDS,
                                         campaign_fingerprint)
        from repro.specs import CampaignSpec, ExecutionSpec

        campaign_fields = [f.name for f in dataclasses.fields(CampaignSpec)]
        for name in FINGERPRINT_EXCLUDED_FIELDS:
            if name not in campaign_fields:
                yield self.project_finding(
                    "repro/results/store.py", 1,
                    f"FINGERPRINT_EXCLUDED_FIELDS names {name!r}, which is "
                    f"not a CampaignSpec field")
        default = CampaignSpec()
        base = campaign_fingerprint(default, "probe-problem")
        for name in campaign_fields:
            if name not in CAMPAIGN_FIELD_PROBES:
                yield self.project_finding(
                    "repro/specs.py", 1,
                    f"CampaignSpec.{name} has no fingerprint probe; add it "
                    f"to CAMPAIGN_FIELD_PROBES (repro/analysis/rules/"
                    f"coherence.py) or to FINGERPRINT_EXCLUDED_FIELDS")
                continue
            # coerce (not replace): the solver/exec probes are dict forms.
            probed = CampaignSpec.coerce(default,
                                         **{name: CAMPAIGN_FIELD_PROBES[name]})
            changed = campaign_fingerprint(probed, "probe-problem") != base
            excluded = name in FINGERPRINT_EXCLUDED_FIELDS
            if excluded and changed:
                yield self.project_finding(
                    "repro/results/store.py", 1,
                    f"CampaignSpec.{name} is on FINGERPRINT_EXCLUDED_FIELDS "
                    f"but changing it changes the fingerprint")
            elif not excluded and not changed:
                yield self.project_finding(
                    "repro/results/store.py", 1,
                    f"CampaignSpec.{name} does not enter the campaign "
                    f"fingerprint and is not on FINGERPRINT_EXCLUDED_FIELDS"
                    f"; resume could silently mix incompatible campaigns")
        exec_fields = [f.name for f in dataclasses.fields(ExecutionSpec)]
        for name in exec_fields:
            if name not in EXEC_FIELD_PROBES:
                yield self.project_finding(
                    "repro/specs.py", 1,
                    f"ExecutionSpec.{name} has no fingerprint probe; add it "
                    f"to EXEC_FIELD_PROBES (repro/analysis/rules/"
                    f"coherence.py)")
                continue
            kwargs = EXEC_FIELD_PROBES[name]
            probe_exec = ExecutionSpec(**kwargs)
            if getattr(probe_exec, name) == getattr(ExecutionSpec(), name):
                yield self.project_finding(
                    "repro/specs.py", 1,
                    f"EXEC_FIELD_PROBES[{name!r}] does not actually set "
                    f"ExecutionSpec.{name} to a non-default value")
                continue
            probed = default.replace(exec=probe_exec)
            if campaign_fingerprint(probed, "probe-problem") != base:
                yield self.project_finding(
                    "repro/results/store.py", 1,
                    f"ExecutionSpec.{name} changes the campaign fingerprint"
                    f"; execution knobs are documented not to affect "
                    f"results, so resume across backends would break")

    # ------------------------------------------------------------------ #
    def _check_cli_flags(self) -> Iterable[Finding]:
        import dataclasses

        from repro.experiments.runner import SPEC_FLAG_DESTS, build_parser
        from repro.specs import CampaignSpec, ExecutionSpec, SolveSpec

        nested = {"exec": ExecutionSpec, "solver": SolveSpec}
        dests = {action.dest for action in build_parser()._actions}
        for dest, path in sorted(SPEC_FLAG_DESTS.items()):
            if dest not in dests:
                yield self.project_finding(
                    "repro/experiments/runner.py", 1,
                    f"SPEC_FLAG_DESTS maps dest {dest!r}, but build_parser() "
                    f"defines no such argument")
            cls: Any = CampaignSpec
            for i, segment in enumerate(path.split(".")):
                fields = {f.name for f in dataclasses.fields(cls)}
                if segment not in fields:
                    yield self.project_finding(
                        "repro/experiments/runner.py", 1,
                        f"SPEC_FLAG_DESTS[{dest!r}] = {path!r} does not "
                        f"resolve: {cls.__name__} has no field {segment!r}")
                    break
                cls = nested.get(segment, cls)
