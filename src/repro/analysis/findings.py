"""Finding records produced by the :mod:`repro.analysis` checkers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["Finding", "SEVERITIES"]

#: Recognised severities, most severe first.  ``error`` findings fail the
#: lint gate; ``warning`` findings are reported but never change the exit
#: code.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``file`` is a path relative to the scan base (``repro/...`` when the
    installed package tree is scanned) so that baselines and JSON output
    are stable across checkouts and working directories.
    """

    rule: str
    severity: str
    file: str
    line: int
    col: int
    message: str
    #: Set when a ``# repro: allow(<rule>)`` pragma on the finding's line
    #: suppressed it.
    suppressed: bool = False
    #: Set when the committed baseline file grandfathers the finding.
    baselined: bool = False
    #: Free-form extra context for the JSON report.
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    @property
    def active(self) -> bool:
        """True when the finding counts against the exit code."""
        return self.severity == "error" and not (self.suppressed or self.baselined)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match baseline entries.

        Deliberately excludes the line number so that unrelated edits above
        a grandfathered finding do not un-baseline it.
        """
        return (self.rule, self.file, self.message)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
        if self.baselined:
            out["baselined"] = True
        if self.data:
            out["data"] = dict(self.data)
        return out

    def with_flags(self, *, suppressed: bool | None = None,
                   baselined: bool | None = None) -> "Finding":
        kwargs: dict[str, bool] = {}
        if suppressed is not None:
            kwargs["suppressed"] = suppressed
        if baselined is not None:
            kwargs["baselined"] = baselined
        return replace(self, **kwargs) if kwargs else self

    def render(self) -> str:
        """One-line human rendering (``file:line:col RULE message``)."""
        flags = ""
        if self.suppressed:
            flags = " [suppressed]"
        elif self.baselined:
            flags = " [baselined]"
        return (f"{self.file}:{self.line}:{self.col} "
                f"{self.rule} {self.severity}: {self.message}{flags}")
