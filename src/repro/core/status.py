"""Solver status reporting and convergence histories.

The paper's FGMRES "trichotomy" (Section VI-C) is represented explicitly:
a solve either converges, detects an invariant subspace (happy breakdown), or
gives a clear indication of failure (detected rank deficiency).  Two more
statuses cover the practical outcomes of a finite iteration budget and of a
detector configured to abort on SDC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.utils.events import EventLog

__all__ = ["SolverStatus", "ConvergenceHistory", "SolverResult", "NestedSolverResult"]


class SolverStatus(Enum):
    """Terminal state of a Krylov solve."""

    CONVERGED = "converged"
    MAX_ITERATIONS = "max_iterations"
    HAPPY_BREAKDOWN = "happy_breakdown"
    RANK_DEFICIENT = "rank_deficient"
    FAULT_DETECTED = "fault_detected"
    STAGNATED = "stagnated"

    @property
    def is_success(self) -> bool:
        """True for outcomes that produced a usable solution.

        ``MAX_ITERATIONS`` is treated as success for *inner* solves (the
        sandbox model only requires the inner solver to return something in
        finite time); outer solves additionally check the residual.
        """
        return self in (
            SolverStatus.CONVERGED,
            SolverStatus.HAPPY_BREAKDOWN,
            SolverStatus.MAX_ITERATIONS,
        )

    @property
    def is_loud_failure(self) -> bool:
        """True when the solver reported a failure explicitly (not silently)."""
        return self in (SolverStatus.RANK_DEFICIENT, SolverStatus.FAULT_DETECTED)


class ConvergenceHistory:
    """Per-iteration residual-norm history with convenience accessors."""

    def __init__(self) -> None:
        self.residual_norms: list[float] = []

    def append(self, value: float) -> None:
        """Record the residual norm after one iteration."""
        self.residual_norms.append(float(value))

    def __len__(self) -> int:
        return len(self.residual_norms)

    def __getitem__(self, idx):
        return self.residual_norms[idx]

    @property
    def initial(self) -> float:
        """Residual norm before the first iteration (NaN if empty)."""
        return self.residual_norms[0] if self.residual_norms else float("nan")

    @property
    def final(self) -> float:
        """Most recent residual norm (NaN if empty)."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    def as_array(self) -> np.ndarray:
        """The history as a float64 array."""
        return np.asarray(self.residual_norms, dtype=np.float64)

    def is_monotone_nonincreasing(self, rtol: float = 1e-12) -> bool:
        """True if the history never increases (up to relative slack ``rtol``).

        GMRES guarantees this in exact, fault-free arithmetic — the property
        tests use it as an invariant, and its violation is itself a symptom
        of SDC.
        """
        arr = self.as_array()
        if arr.size < 2:
            return True
        allowed = arr[:-1] * (1.0 + rtol) + rtol
        return bool(np.all(arr[1:] <= allowed))


@dataclass
class SolverResult:
    """Outcome of a single-level solve (GMRES, FGMRES, CG, ...).

    Attributes
    ----------
    x : numpy.ndarray
        The approximate solution.
    status : SolverStatus
        Terminal state.
    iterations : int
        Number of iterations performed (Arnoldi steps for GMRES).
    residual_norm : float
        Final (preconditioned, for preconditioned solves) residual norm.
    history : ConvergenceHistory
        Residual norm after every iteration.
    events : EventLog
        Structured events (faults injected/detected, breakdowns, ...).
    matvecs : int
        Number of operator applications (the dominant cost).
    profile : KernelProfile or None
        Per-phase kernel timings (see :mod:`repro.utils.profile`), present
        only when the solve was run with profiling enabled.
    """

    x: np.ndarray
    status: SolverStatus
    iterations: int
    residual_norm: float
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    events: EventLog = field(default_factory=EventLog)
    matvecs: int = 0
    profile: object | None = None

    @property
    def converged(self) -> bool:
        """True if the solver reported convergence or a happy breakdown."""
        return self.status in (SolverStatus.CONVERGED, SolverStatus.HAPPY_BREAKDOWN)

    def summary(self) -> dict:
        """The headline fields (common result schema, ``kind="solver"``)."""
        out = {
            "kind": "solver",
            "status": self.status.value,
            "converged": self.converged,
            "iterations": self.iterations,
            "residual_norm": self.residual_norm,
            "matvecs": self.matvecs,
        }
        if self.profile is not None:
            out["kernel_profile"] = self.profile.to_dict()
        return out

    def to_dict(self, *, include_solution: bool = False) -> dict:
        """JSON-ready dict: the summary plus history and event counts.

        ``include_solution`` adds the solution vector itself (omitted by
        default: it can be large and is rarely what result files are for).
        """
        out = self.summary()
        out["history"] = [float(v) for v in self.history.as_array()]
        out["events"] = {kind: self.events.count(kind)
                         for kind in sorted({e.kind for e in self.events})}
        if include_solution:
            out["x"] = [float(v) for v in np.asarray(self.x).ravel()]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverResult(status={self.status.value}, iterations={self.iterations}, "
            f"residual_norm={self.residual_norm:.3e})"
        )


@dataclass
class NestedSolverResult:
    """Outcome of a nested (inner–outer) solve such as FT-GMRES.

    Attributes
    ----------
    x : numpy.ndarray
        The approximate solution produced by the reliable outer iteration.
    status : SolverStatus
        Outer-solver terminal state.
    outer_iterations : int
        Number of outer (FGMRES) iterations.
    total_inner_iterations : int
        Sum of inner GMRES iterations across all inner solves.
    residual_norm : float
        Final true residual norm ``||b - A x||``.
    history : ConvergenceHistory
        Outer residual history.
    inner_results : list of SolverResult
        One entry per inner solve, in order.
    events : EventLog
        Merged event log (outer events plus every inner solve's events).
    profile : KernelProfile or None
        Per-phase kernel timings accumulated across all inner solves
        (see :mod:`repro.utils.profile`); ``None`` unless profiling was on.
    """

    x: np.ndarray
    status: SolverStatus
    outer_iterations: int
    total_inner_iterations: int
    residual_norm: float
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    inner_results: list[SolverResult] = field(default_factory=list)
    events: EventLog = field(default_factory=EventLog)
    profile: object | None = None

    @property
    def converged(self) -> bool:
        """True if the outer solver reported convergence or a happy breakdown."""
        return self.status in (SolverStatus.CONVERGED, SolverStatus.HAPPY_BREAKDOWN)

    @property
    def faults_injected(self) -> int:
        """Total number of fault-injection events across the whole solve."""
        return self.events.count("fault_injected")

    @property
    def faults_detected(self) -> int:
        """Total number of detector hits across the whole solve."""
        return self.events.count("fault_detected")

    def summary(self) -> dict:
        """The headline fields (common result schema, ``kind="nested_solver"``)."""
        out = {
            "kind": "nested_solver",
            "status": self.status.value,
            "converged": self.converged,
            "outer_iterations": self.outer_iterations,
            "total_inner_iterations": self.total_inner_iterations,
            "residual_norm": self.residual_norm,
            "faults_injected": self.faults_injected,
            "faults_detected": self.faults_detected,
        }
        if self.profile is not None:
            out["kernel_profile"] = self.profile.to_dict()
        return out

    def to_dict(self, *, include_solution: bool = False) -> dict:
        """JSON-ready dict: summary, outer history, per-inner-solve summaries."""
        out = self.summary()
        out["history"] = [float(v) for v in self.history.as_array()]
        out["inner_results"] = [r.summary() for r in self.inner_results]
        if include_solution:
            out["x"] = [float(v) for v in np.asarray(self.x).ravel()]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NestedSolverResult(status={self.status.value}, "
            f"outer_iterations={self.outer_iterations}, "
            f"residual_norm={self.residual_norm:.3e})"
        )
