"""SDC detectors.

The paper's detector (Section V) checks each Arnoldi orthogonalization
coefficient against the bound ``|h_ij| <= ||A||_2 <= ||A||_F``: a violation
is theoretically impossible, so it must be the effect of silent data
corruption.  This module packages that check — plus the "free" IEEE-754
NaN/Inf check and a norm-growth heuristic — behind a common
:class:`Detector` interface so solvers can compose them.

Detectors are *pure* predicates: they never modify data.  The solver decides
how to respond to a positive verdict (see the ``detector_response`` option of
:func:`repro.core.gmres.gmres`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DetectionResult",
    "Detector",
    "NullDetector",
    "HessenbergBoundDetector",
    "NonFiniteDetector",
    "NormGrowthDetector",
    "CompositeDetector",
]


@dataclass(frozen=True)
class DetectionResult:
    """Verdict of a detector on a single value.

    Attributes
    ----------
    flagged : bool
        True if the value is considered corrupt.
    detector : str
        Name of the detector that produced the verdict.
    reason : str
        Human-readable explanation (empty when not flagged).
    value : float
        The checked value.
    bound : float
        The bound it was compared against (NaN when not applicable).
    """

    flagged: bool
    detector: str = ""
    reason: str = ""
    value: float = float("nan")
    bound: float = float("nan")

    def __bool__(self) -> bool:
        return self.flagged

    def event_data(self) -> dict:
        """The verdict as ``fault_detected`` event payload fields.

        One schema for every recording site (scalar screening in the Arnoldi
        step, outer-coefficient screening in FGMRES, the vectorized mirror in
        the batched engine), so event consumers never special-case the
        producer.
        """
        return {
            "value": self.value,
            "bound": self.bound,
            "detector": self.detector,
            "reason": self.reason,
        }


_NOT_FLAGGED = DetectionResult(False)


class Detector:
    """Base class.  Subclasses implement :meth:`check_scalar`.

    ``check_vector`` has a default implementation that checks the vector's
    2-norm, which is the right quantity for the Arnoldi vectors (the bound
    of Eq. (2) is on ``||A q_j||_2``).
    """

    name = "detector"

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        """Return a verdict on a single floating-point value."""
        raise NotImplementedError

    def check_vector(self, vec: np.ndarray, site: str = "") -> DetectionResult:
        """Return a verdict on a vector (default: check its 2-norm)."""
        nrm = float(np.linalg.norm(np.asarray(vec, dtype=np.float64)))
        return self.check_scalar(nrm, site=site)

    def reset(self) -> None:
        """Clear any internal state (e.g. reference norms).  Default: no-op."""

    def to_spec(self):
        """The registry spec (string or dict) that rebuilds this detector.

        Used by :mod:`repro.specs` to serialize configurations that carry
        built detector instances.  Subclasses with constructor arguments
        override this; the argument-free ones serialize as their name.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NullDetector(Detector):
    """A detector that never flags anything (the "no detection" baseline)."""

    name = "null"

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        return _NOT_FLAGGED


class NonFiniteDetector(Detector):
    """Flags NaN and Inf values.

    The paper points out that IEEE-754 gives this check "for free": any SDC
    that produces a non-numeric value is trivially detectable.  It is always
    safe to enable.
    """

    name = "nonfinite"

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        if not np.isfinite(value):
            return DetectionResult(True, self.name, f"non-finite value at {site or 'unknown site'}",
                                   float(value))
        return _NOT_FLAGGED

    def check_vector(self, vec: np.ndarray, site: str = "") -> DetectionResult:
        vec = np.asarray(vec, dtype=np.float64)
        if not np.all(np.isfinite(vec)):
            bad = int(np.count_nonzero(~np.isfinite(vec)))
            return DetectionResult(True, self.name,
                                   f"{bad} non-finite entries at {site or 'unknown site'}")
        return _NOT_FLAGGED


class HessenbergBoundDetector(Detector):
    """The paper's invariant detector: ``|h_ij| <= bound``.

    Parameters
    ----------
    bound : float
        An upper bound on ``||A||_2`` — typically ``||A||_F`` (Eq. (3)) or a
        power-method estimate of ``||A||_2``.  Must be positive and finite.
    slack : float
        Multiplicative slack applied to the bound to absorb rounding error
        (default 1.0, i.e. the bound is used as-is, exactly as in the paper:
        rounding error cannot push a correct ``h_ij`` past ``||A||_F`` by any
        meaningful margin because the Frobenius norm already overestimates
        the 2-norm).
    check_nonfinite : bool
        Also flag NaN/Inf (default True); a corrupted value of ``1e308 * 10``
        overflows to Inf and would otherwise compare as "not greater" on some
        platforms' NaN semantics.
    """

    name = "hessenberg_bound"

    def __init__(self, bound: float, slack: float = 1.0, check_nonfinite: bool = True):
        bound = float(bound)
        if not np.isfinite(bound) or bound <= 0.0:
            raise ValueError(f"bound must be a positive finite number, got {bound}")
        if slack <= 0.0:
            raise ValueError(f"slack must be positive, got {slack}")
        self.bound = bound
        self.slack = float(slack)
        self.check_nonfinite = bool(check_nonfinite)

    @property
    def effective_bound(self) -> float:
        """The threshold actually compared against (``bound * slack``)."""
        return self.bound * self.slack

    def to_spec(self) -> dict:
        spec = {"name": "bound", "bound": self.bound}
        if self.slack != 1.0:
            spec["slack"] = self.slack
        if not self.check_nonfinite:
            spec["check_nonfinite"] = False
        return spec

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        v = float(value)
        if self.check_nonfinite and not np.isfinite(v):
            return DetectionResult(True, self.name,
                                   f"non-finite value at {site or 'hessenberg'}", v, self.effective_bound)
        if abs(v) > self.effective_bound:
            return DetectionResult(
                True,
                self.name,
                f"|{v:.6e}| exceeds bound {self.effective_bound:.6e} at {site or 'hessenberg'}",
                v,
                self.effective_bound,
            )
        return DetectionResult(False, self.name, "", v, self.effective_bound)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HessenbergBoundDetector(bound={self.bound:.6e}, slack={self.slack})"


class NormGrowthDetector(Detector):
    """Flags values whose magnitude exceeds ``factor`` times a running reference.

    A heuristic companion to the theory-based bound: it adapts to the data it
    has seen, so it can catch corruption *below* ``||A||_F`` at the cost of
    potential false positives.  Used only in the detector-ablation benchmark;
    the paper's detector is :class:`HessenbergBoundDetector`.
    """

    name = "norm_growth"

    def __init__(self, factor: float = 1e3, floor: float = 1e-300):
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1, got {factor}")
        self.factor = float(factor)
        self.floor = float(floor)
        self._reference = 0.0

    def reset(self) -> None:
        self._reference = 0.0

    def to_spec(self) -> dict:
        return {"name": "norm_growth", "factor": self.factor, "floor": self.floor}

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        v = float(value)
        if not np.isfinite(v):
            return DetectionResult(True, self.name, f"non-finite value at {site}", v)
        magnitude = abs(v)
        if self._reference > self.floor and magnitude > self.factor * self._reference:
            result = DetectionResult(
                True,
                self.name,
                f"|{v:.3e}| grew more than {self.factor:g}x past running reference "
                f"{self._reference:.3e} at {site}",
                v,
                self.factor * self._reference,
            )
        else:
            result = DetectionResult(False, self.name, "", v, self.factor * self._reference)
        self._reference = max(self._reference, magnitude)
        return result


class CompositeDetector(Detector):
    """Combines several detectors; flags if *any* member flags.

    The first positive verdict is returned so the caller knows which member
    fired.
    """

    name = "composite"

    def __init__(self, detectors):
        self.detectors = list(detectors)
        if not self.detectors:
            raise ValueError("CompositeDetector requires at least one member detector")

    def check_scalar(self, value: float, site: str = "") -> DetectionResult:
        for det in self.detectors:
            result = det.check_scalar(value, site=site)
            if result.flagged:
                return result
        return _NOT_FLAGGED

    def check_vector(self, vec: np.ndarray, site: str = "") -> DetectionResult:
        for det in self.detectors:
            result = det.check_vector(vec, site=site)
            if result.flagged:
                return result
        return _NOT_FLAGGED

    def reset(self) -> None:
        for det in self.detectors:
            det.reset()

    def to_spec(self) -> dict:
        return {"name": "composite", "members": [d.to_spec() for d in self.detectors]}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeDetector({self.detectors!r})"
