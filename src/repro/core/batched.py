"""Trial-batched lockstep execution of nested FT-GMRES fault campaigns.

A fault campaign is hundreds of *independent* nested FT-GMRES solves over the
same ``(A, b, x0)`` that differ only in where a single SDC event strikes.
Running them one at a time spends most of its wall time in per-trial Python
and BLAS-1 dispatch overhead: every Arnoldi coefficient is one ``np.dot`` on
one vector, every triangular-solve level touches the sparse index arrays for
one right-hand side.  This module advances ``B`` trials side by side through
*block* kernels instead:

* the SpMV becomes one :meth:`CSRMatrix.matmat` over an ``(n, B)`` slab,
* each Modified Gram–Schmidt coefficient becomes one ``einsum`` producing all
  ``B`` coefficients at once,
* the incremental Givens QR keeps ``B`` rotation sequences in lockstep
  (:class:`BatchedGivensQR`),
* preconditioners apply through their block kernels
  (``Preconditioner.apply_block``), paying the sparse index traffic once per
  level instead of once per level per trial.

Fault injection stays *per trial*: at the one aggregate inner iteration where
a trial's schedule can fire, the real :class:`~repro.faults.injector.FaultInjector`
is consulted for that trial's coefficient only, so injection records and event
streams are produced by the same code path as the serial engine.  Detector
screening is vectorized with an exact mirror of the
:class:`~repro.core.detectors.HessenbergBoundDetector` predicate; the (rare)
flagged coefficients take the scalar detector path so event payloads match.

Equivalence contract (asserted by the test suite and the campaign benchmark):
per-trial iteration counts, statuses and event streams are identical to the
serial backend, and residual histories agree to ~1e-10 (bit-identical where
the reduction order matches — the sparse and triangular block kernels reduce
in exactly the serial order; the batched MGS dot products and norms reduce in
a different but equally valid order).

Trials whose control flow leaves the lockstep common path — happy breakdown,
early convergence inside an inner solve, the outer breakdown trichotomy —
are *peeled* out of the batch and reported as unsolved; the campaign layer
reruns exactly those trials through the serial reference implementation.
Correctness therefore never depends on the batched engine reproducing the
rare paths: the fallback *is* the reference code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arnoldi import HAPPY_BREAKDOWN_TOL, VALID_RESPONSES
from repro.core.detectors import HessenbergBoundDetector
from repro.core.exceptions import FaultDetectedError
from repro.core.fgmres import BREAKDOWN_TOL
from repro.core.ftgmres import FTGMRESParameters
from repro.core.least_squares import LeastSquaresPolicy, solve_projected_lsq
from repro.core.status import (
    ConvergenceHistory,
    NestedSolverResult,
    SolverResult,
    SolverStatus,
)
from repro.precond.base import Preconditioner
from repro.sparse.linear_operator import LinearOperator, aslinearoperator
from repro.utils.events import EventLog

__all__ = [
    "BatchedGivensQR",
    "BatchedArnoldi",
    "BatchedTrialSetup",
    "BATCHED_SITES",
    "batched_support_reason",
    "batched_ft_gmres",
]

#: Floating-point traps silenced around the lockstep kernels.  The serial
#: solvers produce the same Inf/NaN values through BLAS calls that do not
#: warn; the batched ufunc formulation would otherwise emit RuntimeWarnings
#: for the identical (intentional) non-finite data flow of faulted trials.
_ERRSTATE = {"over": "ignore", "invalid": "ignore",
             "divide": "ignore", "under": "ignore"}

#: Relative half-width of the guard band around convergence targets.  A
#: residual estimate this close to its target sits on a decision cusp where
#: the ~1-ulp gap between the batched (einsum) and serial (BLAS dot)
#: reduction orders could flip the convergence iteration; such lanes are
#: peeled to the serial engine so iteration counts stay *identical*, not
#: just within tolerance.  Ordinary convergence crosses the target by
#: orders of magnitude per iteration, so the band essentially never fires.
TARGET_GUARD_BAND = 1e-9

#: Injected coefficients larger than this factor times the problem scale
#: make the trial numerically *chaotic*: the huge component must cancel in
#: the orthogonalization, so the ~1e-16 relative difference between the
#: batched and the serial reduction order is amplified to an absolute error
#: of ``|h| * 1e-16`` — beyond the engine's 1e-10 equivalence contract once
#: ``|h|`` passes ~1e6x the benign coefficient scale.  Such lanes are peeled
#: to the serial reference engine at injection time.  (With the paper's
#: detector and a filtering response the huge value is zeroed before it can
#: propagate, so detector-on campaigns stay fully batched.)
CHAOS_FACTOR = 1e6


def _row_norms(X: np.ndarray) -> np.ndarray:
    """2-norm of every lane row of ``X`` in one pass (matches serial to rounding)."""
    return np.sqrt(np.einsum("bn,bn->b", X, X))


def _batched_givens(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized twin of :func:`repro.core.least_squares.givens_rotation`.

    Every branch performs the same scalar IEEE-754 operations as the scalar
    routine, in the same precedence order (``b == 0`` first, then ``a == 0``,
    then the non-finite guard), so each lane is bit-identical to the scalar
    result for the same inputs.
    """
    c = np.ones_like(a)
    s = np.zeros_like(a)
    b_zero = b == 0.0
    a_zero = (a == 0.0) & ~b_zero
    nonfinite = ~(np.isfinite(a) & np.isfinite(b)) & ~b_zero & ~a_zero
    general = ~(b_zero | a_zero | nonfinite)
    c[a_zero] = 0.0
    s[a_zero] = 1.0
    c[nonfinite] = np.nan
    s[nonfinite] = np.nan
    big_b = general & (np.abs(b) > np.abs(a))
    big_a = general & ~big_b
    if big_b.any():
        t = a[big_b] / b[big_b]
        sv = 1.0 / np.sqrt(1.0 + t * t)
        c[big_b] = sv * t
        s[big_b] = sv
    if big_a.any():
        t = b[big_a] / a[big_a]
        cv = 1.0 / np.sqrt(1.0 + t * t)
        c[big_a] = cv
        s[big_a] = cv * t
    return c, s


class BatchedGivensQR:
    """``B`` incremental Givens QR factorizations advanced in lockstep.

    The scalar :class:`~repro.core.least_squares.IncrementalGivensQR` rotates
    one growing Hessenberg column per iteration with Python-float arithmetic;
    this twin keeps the rotation state ``(cs, sn, R, g)`` as ``(m, B)`` /
    ``(m+1, m, B)`` arrays and applies every recurrence step to all ``B``
    lanes at once.  Lane ``t`` performs the same sequence of IEEE-754
    operations as a scalar factorization fed column ``t``.

    Parameters
    ----------
    max_columns : int
        Maximum number of columns (the restart length).
    beta : numpy.ndarray
        Per-lane initial residual norms; the right-hand side of lane ``t``
        is ``beta[t] * e_1``.
    """

    def __init__(self, max_columns: int, beta: np.ndarray):
        if max_columns <= 0:
            raise ValueError(f"max_columns must be positive, got {max_columns}")
        beta = np.asarray(beta, dtype=np.float64).ravel()
        m = int(max_columns)
        lanes = beta.shape[0]
        self.max_columns = m
        self.lanes = lanes
        self.k = 0
        self._R = np.zeros((m + 1, m, lanes), dtype=np.float64)
        self._g = np.zeros((m + 1, lanes), dtype=np.float64)
        self._g[0] = beta
        self._cs = np.zeros((m, lanes), dtype=np.float64)
        self._sn = np.zeros((m, lanes), dtype=np.float64)
        self.beta = beta.copy()

    def add_column(self, column: np.ndarray) -> np.ndarray:
        """Rotate a new ``(k+2, B)`` Hessenberg column block into all lanes.

        Returns the per-lane residual estimates ``|g_{k+1}|``.
        """
        j = self.k
        if j >= self.max_columns:
            raise RuntimeError("BatchedGivensQR is full; increase max_columns")
        r = np.array(column, dtype=np.float64)
        if r.shape != (j + 2, self.lanes):
            raise ValueError(
                f"column {j} must have shape {(j + 2, self.lanes)}, got {r.shape}")
        cs, sn = self._cs, self._sn
        with np.errstate(**_ERRSTATE):
            for i in range(j):
                c, s = cs[i], sn[i]
                r_i = r[i].copy()
                r_i1 = r[i + 1]
                r[i] = c * r_i + s * r_i1
                r[i + 1] = -s * r_i + c * r_i1
            c, s = _batched_givens(r[j], r[j + 1])
            cs[j] = c
            sn[j] = s
            r[j] = c * r[j] + s * r[j + 1]
            r[j + 1] = 0.0
            self._R[: j + 2, j] = r
            g_j = self._g[j].copy()
            self._g[j] = c * g_j
            self._g[j + 1] = -s * g_j
        self.k = j + 1
        return np.abs(self._g[j + 1])

    # ------------------------------------------------------------------ #
    def lane_R(self, lane: int, k: int | None = None) -> np.ndarray:
        """The ``k x k`` triangular factor of one lane (a copy-free view)."""
        k = self.k if k is None else k
        return self._R[:k, :k, lane]

    def lane_g(self, lane: int, k: int | None = None) -> np.ndarray:
        """The rotated right-hand side of one lane, length ``k+1``."""
        k = self.k if k is None else k
        return self._g[: k + 1, lane]

    def residual_estimates(self) -> np.ndarray:
        """Per-lane ``|g_{k+1}|`` — the monotone GMRES residual estimates."""
        return np.abs(self._g[self.k])

    def solve_standard(self) -> np.ndarray:
        """Back-substitute ``R y = g`` in every lane simultaneously.

        The lockstep twin of :func:`repro.core.least_squares.solve_triangular`
        (the STANDARD policy): no singularity handling, Inf/NaN propagate —
        the paper's policy 1 relies on IEEE-754 to surface corrupt systems.
        """
        k = self.k
        y = np.zeros((k, self.lanes), dtype=np.float64)
        R, g = self._R, self._g
        with np.errstate(**_ERRSTATE):
            for i in range(k - 1, -1, -1):
                acc = g[i] - np.einsum("jb,jb->b", R[i, i + 1: k], y[i + 1: k])
                y[i] = acc / R[i, i]
        return y


class BatchedArnoldi:
    """The Arnoldi process over ``B`` side-by-side Krylov bases.

    One instance owns the basis block of a single restart cycle, stored
    lanes-major (``(m+1, B, n)``) so each lane's vector is one contiguous
    row: the per-lane SpMVs read and write contiguous memory and the
    lockstep Modified Gram–Schmidt reduces along the fast axis.
    :meth:`step` applies the operator to every active lane and
    orthogonalizes the results together.  A per-coefficient hook lets the
    campaign driver inject faults into individual lanes and screen
    coefficients with a detector — the batched counterparts of the named
    injection sites of :func:`repro.core.arnoldi.arnoldi_step`.

    Parameters
    ----------
    matvec : callable
        Operator application for one lane (``(n,)`` to ``(n,)``) — the exact
        serial kernel, so each lane's SpMV is bit-identical to a serial run.
    r0 : numpy.ndarray
        Initial residual block, lanes-major ``(B, n)``; row ``t`` seeds lane
        ``t``.
    beta : numpy.ndarray
        Per-lane norms of ``r0`` (the caller computed them already).
    m : int
        Number of Arnoldi steps the basis must accommodate.
    precond_block : callable, optional
        Right preconditioner block application mapping ``(n, B)`` to
        ``(n, B)``; when given the operator applied is ``A M^{-1}``,
        matching the serial solver.
    """

    def __init__(self, matvec, r0: np.ndarray, beta: np.ndarray, m: int,
                 precond_block=None):
        lanes, n = r0.shape
        self.n = n
        self.lanes = lanes
        self.m = int(m)
        self._matvec = matvec
        self._precond_block = precond_block
        self.basis = np.zeros((self.m + 1, lanes, n), dtype=np.float64)
        with np.errstate(**_ERRSTATE):
            self.basis[0] = r0 / beta[:, None]
        self._scratch = np.empty((lanes, n), dtype=np.float64)

    def step(self, j: int, coefficient_hook=None, spmv_hook=None,
             active: np.ndarray | None = None):
        """Perform lockstep Arnoldi step ``j`` for every (active) lane.

        Parameters
        ----------
        j : int
            Step index (0-based); orthogonalizes ``A @ basis[j]``.
        coefficient_hook : callable, optional
            ``hook(kind, index, values)`` called once per orthogonalization
            coefficient row with ``kind="hessenberg"``/``index=i`` and once
            for the subdiagonal norms with ``kind="subdiag"``/``index=j+1``.
            Receives the freshly computed per-lane values (a ``(B,)`` array
            it may modify in place, e.g. to inject a fault into one lane or
            zero a detector-flagged lane) and returns the values to use.
        spmv_hook : callable, optional
            ``hook(j, V)`` called with the raw lanes-major operator
            application before orthogonalization — the batched counterpart
            of the serial ``spmv`` detector site (and called in the same
            order relative to the coefficient events).
        active : numpy.ndarray, optional
            Boolean lane mask; the SpMV is skipped for inactive lanes
            (their rows stay zero and the caller ignores them).

        Returns
        -------
        h_block : numpy.ndarray
            The ``(j+2, B)`` Hessenberg column block (post-hook values).
        """
        with np.errstate(**_ERRSTATE):
            rows = self.basis[j]
            lanes = (np.arange(self.lanes) if active is None
                     else np.flatnonzero(active))
            V = np.zeros((self.lanes, self.n), dtype=np.float64)
            if self._precond_block is None:
                for b in lanes:
                    V[b] = self._matvec(rows[b])
            else:
                # The preconditioner (the engine's heaviest per-lane kernel
                # after the SpMV) is applied to the active lanes only.
                Z = np.ascontiguousarray(
                    self._precond_block(rows[lanes].T).T)
                for pos, b in enumerate(lanes):
                    V[b] = self._matvec(Z[pos])
            if spmv_hook is not None:
                spmv_hook(j, V)
            W = V
            h_block = np.zeros((j + 2, self.lanes), dtype=np.float64)
            scratch = self._scratch
            for i in range(j + 1):
                q_i = self.basis[i]
                h = np.einsum("bn,bn->b", q_i, W)
                if coefficient_hook is not None:
                    h = coefficient_hook("hessenberg", i, h)
                h_block[i] = h
                np.multiply(q_i, h[:, None], out=scratch)
                np.subtract(W, scratch, out=W)
            norm_v = np.sqrt(np.einsum("bn,bn->b", W, W))
            if coefficient_hook is not None:
                norm_v = coefficient_hook("subdiag", j + 1, norm_v)
            h_block[j + 1] = norm_v
            # New basis block: lanes with a non-finite norm get the serial
            # engine's poisoned NaN column (arnoldi_step's "not a breakdown"
            # branch); finite-norm lanes are normalized as usual.  Breakdown
            # lanes (tiny finite norm) are the caller's business — it peels
            # them before the next step, so their rows are never read.
            finite = np.isfinite(norm_v)
            q_next = np.divide(W, norm_v[:, None], out=W)
            if not finite.all():
                q_next[~finite, :] = np.nan
            self.basis[j + 1] = q_next
        return h_block

    def zero_lanes(self, j: int, lanes: np.ndarray) -> None:
        """Zero basis row ``j`` of the given lanes (masked-out trials)."""
        if lanes.size:
            self.basis[j][lanes, :] = 0.0

    def update_block(self, Y: np.ndarray) -> np.ndarray:
        """Form the solution updates ``basis[:, :k] @ y`` for every lane.

        ``Y`` has shape ``(k, B)``; the result is the lanes-major ``(B, n)``
        block of per-lane GMRES solution updates.
        """
        k = Y.shape[0]
        out = np.zeros((self.lanes, self.n), dtype=np.float64)
        with np.errstate(**_ERRSTATE):
            for jj in range(k):
                np.multiply(self.basis[jj], Y[jj][:, None], out=self._scratch)
                np.add(out, self._scratch, out=out)
        return out


# ---------------------------------------------------------------------- #
# campaign-facing driver
# ---------------------------------------------------------------------- #
@dataclass
class BatchedTrialSetup:
    """Per-trial wiring for a batched nested solve.

    Attributes
    ----------
    injector : object
        The trial's :class:`~repro.faults.injector.FaultInjector` (or any
        object with ``corrupt_scalar``).  Consulted through the same
        protocol the serial solvers use, so its records are authoritative.
    hessenberg_target : int or None
        The aggregate inner iteration at which the injector's schedule can
        fire, or ``None`` when the schedule has no aggregate pin (the
        injector is then consulted at every lockstep-supported site of every
        iteration, exactly like the serial hooked path).  Named for the
        original (``hessenberg``-only) engine; it anchors prefix-sharing
        divergence for the ``spmv`` site the same way.
    """

    injector: object
    hessenberg_target: int | None = None


#: Sites the lockstep engine injects lane-exactly: per-coefficient scalars
#: (``hessenberg``) and the per-lane operator product (``spmv``).  The other
#: sites — ``precond`` (block apply has no lane-exact serial twin),
#: ``givens``/``orth``/``subdiag``/``basis`` — peel to the serial engine.
BATCHED_SITES = ("hessenberg", "spmv")


def batched_support_reason(params: FTGMRESParameters, site: str = "hessenberg"
                           ) -> str | None:
    """Why a campaign configuration cannot run on the lockstep engine.

    Returns ``None`` when the configuration is supported, otherwise a
    human-readable reason.  The supported space is the paper's experiment
    space: MGS orthogonalization inside and out, injection on the
    ``hessenberg`` and/or ``spmv`` sites, an inner detector that is either
    absent or the paper's :class:`HessenbergBoundDetector` (any response
    except ``raise``), and no outer detector.  Anything else belongs on the
    serial backend.
    """
    sites = tuple(part.strip() for part in str(site).split(",") if part.strip())
    bad = [name for name in sites if name not in BATCHED_SITES]
    if bad or not sites:
        return (f"injection site {site!r} is not lockstep-vectorizable "
                f"(only {list(BATCHED_SITES)} are)")
    inner, outer = params.inner, params.outer
    if inner.orthogonalization != "mgs":
        return f"inner orthogonalization {inner.orthogonalization!r} (only 'mgs')"
    if outer.orthogonalization != "mgs":
        return f"outer orthogonalization {outer.orthogonalization!r} (only 'mgs')"
    if outer.detector is not None:
        return "outer detectors are not supported by the batched engine"
    det = inner.detector
    if det is not None:
        if isinstance(det, str):
            return "string detector specs must be resolved before batching"
        if not isinstance(det, HessenbergBoundDetector):
            return (f"inner detector {type(det).__name__} is not vectorizable "
                    "(only HessenbergBoundDetector)")
        if inner.detector_response == "raise":
            return "detector_response='raise' aborts mid-batch; use the serial backend"
        if inner.detector_response not in VALID_RESPONSES:
            return f"unknown detector_response {inner.detector_response!r}"
    if inner.preconditioner is not None and not (
            isinstance(inner.preconditioner, Preconditioner)
            or callable(inner.preconditioner)
            or hasattr(inner.preconditioner, "shape")):
        return "inner preconditioner is not block-applicable"
    return None


def _resolve_block_preconditioner(precond, n: int):
    """A block-apply callable for whatever the inner solver accepts, or None."""
    if precond is None:
        return None
    if isinstance(precond, Preconditioner):
        return precond.apply_block
    if callable(precond):
        def column_loop(X, _apply=precond):
            Z = np.empty_like(X)
            for j in range(X.shape[1]):
                Z[:, j] = _apply(X[:, j])
            return Z
        return column_loop
    op = aslinearoperator(precond)
    if op.shape != (n, n):
        raise ValueError(f"preconditioner shape {op.shape} does not match system size {n}")
    return op.matmat


def _detector_flags(det: HessenbergBoundDetector, values: np.ndarray) -> np.ndarray:
    """Conservative vectorized prefilter for ``HessenbergBoundDetector``.

    Deliberately *wider* than the scalar predicate (a relative guard band
    below the bound): every value the prefilter passes goes through the real
    ``check_scalar``/``check_vector``, whose verdict is authoritative, so
    widening only costs a scalar re-check — whereas a prefilter that rounds
    the other way at the bound cusp would silently miss a detection the
    serial engine records.
    """
    flagged = np.abs(values) > det.effective_bound * (1.0 - 1e-12)
    if det.check_nonfinite:
        flagged |= ~np.isfinite(values)
    return flagged


def _clone_result(result: SolverResult) -> SolverResult:
    """An independent copy of a shared-prefix inner result for one lane.

    Serial campaigns build one result object per trial; virgin lanes riding
    the shared prefix column must not alias each other's mutable pieces.
    """
    history = ConvergenceHistory()
    history.residual_norms = list(result.history.residual_norms)
    events = EventLog()
    events.extend(result.events)
    return SolverResult(
        x=result.x.copy(),
        status=result.status,
        iterations=result.iterations,
        residual_norm=result.residual_norm,
        history=history,
        events=events,
        matvecs=result.matvecs,
    )


class _Trial:
    """Mutable per-trial bookkeeping inside one batched run."""

    __slots__ = ("setup", "lane", "events", "inner_results", "history",
                 "peeled", "finished", "result")

    def __init__(self, setup: BatchedTrialSetup, lane: int):
        self.setup = setup
        self.lane = lane
        self.events = EventLog()
        self.inner_results: list[SolverResult] = []
        self.history: list[float] = []
        self.peeled = False
        self.finished = False
        self.result: NestedSolverResult | None = None


class _BatchedNestedSolve:
    """One lockstep execution of B nested FT-GMRES trials."""

    def __init__(self, A, b, x0, params: FTGMRESParameters,
                 setups: list[BatchedTrialSetup]):
        self.op: LinearOperator = aslinearoperator(A)
        n = self.op.shape[0]
        if self.op.shape[0] != self.op.shape[1]:
            raise ValueError(f"batched solves require a square operator, got {self.op.shape}")
        self.n = n
        self.b = np.asarray(b, dtype=np.float64).ravel()
        self.x0 = (np.asarray(x0, dtype=np.float64).ravel() if x0 is not None
                   else np.zeros(n, dtype=np.float64))
        # Benign Arnoldi coefficients are bounded by ||A||_2, for which the
        # norm of the manufactured right-hand side is a same-order proxy;
        # anything CHAOS_FACTOR above it can only be an injected fault whose
        # cancellation would amplify reduction-order noise past the
        # equivalence contract (see CHAOS_FACTOR).
        self._chaos_threshold = CHAOS_FACTOR * max(1.0, float(np.linalg.norm(self.b)))
        self.params = params
        self.trials = [_Trial(setup, lane) for lane, setup in enumerate(setups)]
        self.B = len(self.trials)
        self.inner_budget = params.inner_iterations
        inner = params.inner
        self.inner_tol = float(inner.tol)
        self.inner_policy = LeastSquaresPolicy.coerce(inner.lsq_policy)
        self.inner_lsq_tol = inner.lsq_tol
        self.detector: HessenbergBoundDetector | None = inner.detector
        self.response = inner.detector_response
        self.precond_block = _resolve_block_preconditioner(inner.preconditioner, n)
        outer = params.outer
        self.outer_tol = float(outer.tol)
        self.max_outer = min(int(outer.max_outer), n)
        self.outer_policy = LeastSquaresPolicy.coerce(outer.lsq_policy)
        self.outer_lsq_tol = outer.lsq_tol

    # ------------------------------------------------------------------ #
    def _matvec_rows(self, X: np.ndarray, lanes=None) -> np.ndarray:
        """Apply the operator to the given lanes of a lanes-major block.

        Each lane goes through the exact serial ``matvec`` kernel on its
        contiguous row, so per-lane results are bit-identical to a serial
        solve; lanes not listed stay zero.
        """
        Y = np.zeros_like(X)
        rows = range(X.shape[0]) if lanes is None else lanes
        for b in rows:
            Y[b] = self.op.matvec(X[b])
        return Y

    def _peel(self, trial: _Trial) -> None:
        trial.peeled = True
        trial.result = None

    # ------------------------------------------------------------------ #
    def run(self) -> list[NestedSolverResult | None]:
        """Execute all trials; ``None`` entries mark peeled trials."""
        op, b, x0 = self.op, self.b, self.x0
        n, B = self.n, self.B

        norm_b = float(np.linalg.norm(b))
        target = self.outer_tol * norm_b if norm_b > 0.0 else self.outer_tol

        r = b - op.matvec(x0)
        beta = float(np.linalg.norm(r))
        for trial in self.trials:
            trial.history.append(beta)
        if beta <= target or not np.isfinite(beta):
            # Degenerate: the failure-free answer is the initial guess (or
            # the residual is poisoned).  The serial engine handles every
            # trial identically in O(1); let it.
            for trial in self.trials:
                self._peel(trial)
            return [trial.result for trial in self.trials]

        max_outer = self.max_outer
        m = self.inner_budget
        # Outer basis/flexible-basis blocks, one lanes-major (B, n) slab per
        # iteration; grown lazily so memory tracks the iterations used.
        Q: list[np.ndarray] = [np.repeat((r / beta)[None, :], B, axis=0)]
        Z: list[np.ndarray] = []
        h_cols: list[np.ndarray] = []
        qr = BatchedGivensQR(max_outer, np.full(B, beta))
        alive = np.ones(B, dtype=bool)
        # Prefix sharing: until a trial's fault fires, its trajectory is
        # *bit-identical* to the failure-free one (every lockstep kernel is
        # lane-independent and deterministic), so all still-virgin lanes ride
        # one shared representative column through the inner solves and only
        # diverged lanes pay for their own Krylov iterations.  A lane
        # diverges in the outer round whose inner solve spans its scheduled
        # aggregate iteration; lanes with no aggregate pin diverge at once.
        targets = np.full(B, -1, dtype=np.int64)
        for trial in self.trials:
            hess_target = trial.setup.hessenberg_target
            targets[trial.lane] = -1 if hess_target is None else int(hess_target)
        diverged = targets < 0

        for j in range(max_outer):
            if not alive.any():
                break
            offset = j * m
            diverged |= alive & (targets < offset + m)
            virgin = alive & ~diverged
            compute_idx = np.flatnonzero(alive & diverged)
            rep = -1
            if virgin.any():
                rep = int(np.flatnonzero(virgin)[0])
                compute_idx = np.append(compute_idx, rep)
            # ----- lockstep inner solves (the heavy step) ----------------
            rhs_block = Q[j][compute_idx]
            X_inner, inner_peel, inner_solver_results = self._inner_solve(
                rhs_block, compute_idx, j)

            Zj = np.zeros((B, n), dtype=np.float64)
            for pos, lane in enumerate(compute_idx):
                if lane == rep:
                    continue  # delivered with the virgin group below
                trial = self.trials[lane]
                if inner_peel[pos]:
                    self._peel(trial)
                    alive[lane] = False
                    continue
                Zj[lane] = self._deliver_inner(
                    trial, inner_solver_results[pos], X_inner[pos], j)
            if rep >= 0:
                pos_rep = compute_idx.shape[0] - 1
                virgin_lanes = np.flatnonzero(virgin)
                if inner_peel[pos_rep]:
                    # The shared trajectory left the common path; every
                    # virgin lane would do exactly the same.
                    for lane in virgin_lanes:
                        self._peel(self.trials[lane])
                        alive[lane] = False
                else:
                    shared = inner_solver_results[pos_rep]
                    z_rep = X_inner[pos_rep]
                    for lane in virgin_lanes:
                        result = shared if lane == rep else _clone_result(shared)
                        Zj[lane] = self._deliver_inner(
                            self.trials[lane], result, z_rep, j)
            Z.append(Zj)
            if not alive.any():
                break

            # ----- reliable operator application + lockstep MGS ----------
            # Compacted to the alive lanes: late outer rounds typically
            # carry only the few stagnating faulted trials, and the basis
            # gathers over the alive subset cost one extra pass while
            # shrinking every kernel to the lanes that still matter.
            act = np.flatnonzero(alive)
            with np.errstate(**_ERRSTATE):
                V = self._matvec_rows(Zj[act])
                W = V
                h_act = np.zeros((j + 2, act.size), dtype=np.float64)
                for i in range(j + 1):
                    q_i = Q[i][act]
                    h = np.einsum("bn,bn->b", q_i, W)
                    h_act[i] = h
                    W = W - q_i * h[:, None]
                norm_act = _row_norms(W)
            h_act[j + 1] = norm_act
            h_block = np.zeros((j + 2, B), dtype=np.float64)
            h_block[:, act] = h_act
            h_cols.append(h_block)
            resid_est = qr.add_column(h_block)
            k = j + 1
            for lane in act:
                self.trials[lane].history.append(float(resid_est[lane]))

            # ----- breakdown trichotomy (peel) and convergence (finish) --
            scale = np.maximum(np.max(np.abs(h_act[: j + 1]), axis=0), 1.0)
            breakdown = np.zeros(B, dtype=bool)
            breakdown[act] = norm_act <= BREAKDOWN_TOL * scale
            for lane in np.flatnonzero(breakdown):
                # Serial fgmres now runs the rank test and reports HAPPY_
                # BREAKDOWN or RANK_DEFICIENT; both are rare — peel.
                self._peel(self.trials[lane])
                alive[lane] = False
            finite_est = np.isfinite(resid_est)
            near_cusp = finite_est & alive & \
                (np.abs(resid_est - target) <= TARGET_GUARD_BAND * target)
            for lane in np.flatnonzero(near_cusp):
                # On the convergence-decision cusp, reduction-order noise
                # could flip this round's verdict vs serial — peel.
                self._peel(self.trials[lane])
                alive[lane] = False
            converged = finite_est & (resid_est <= target) & alive
            for lane in np.flatnonzero(converged):
                self._finish(self.trials[lane], k, SolverStatus.CONVERGED,
                             qr, Z, h_cols, beta, target)
                alive[lane] = False

            if j + 1 < max_outer and alive.any():
                q_next = np.zeros((B, n), dtype=np.float64)
                with np.errstate(**_ERRSTATE):
                    q_next[act] = W / norm_act[:, None]
                still = alive[act]
                if not still.all():
                    q_next[act[~still], :] = 0.0
                Q.append(q_next)

        # Budget exhausted: remaining trials end like serial MAX_ITERATIONS.
        for trial in self.trials:
            if not trial.peeled and not trial.finished:
                self._finish(trial, max_outer, SolverStatus.MAX_ITERATIONS,
                             qr, Z, h_cols, beta, target)
        return [trial.result for trial in self.trials]

    # ------------------------------------------------------------------ #
    def _deliver_inner(self, trial: _Trial, result: SolverResult,
                       z_col: np.ndarray, j: int) -> np.ndarray:
        """Record one inner-solve result exactly as the serial drivers do.

        Mirrors ``ft_gmres``'s inner-solver bookkeeping (append the result,
        merge its events) followed by ``fgmres``'s reliable screening of the
        returned vector.  Returns the (screened) flexible-basis column.
        """
        trial.inner_results.append(result)
        trial.events.extend(result.events)
        if not np.all(np.isfinite(z_col)):
            trial.events.record("inner_result_nonfinite", where="inner_solve",
                                outer_iteration=j)
            z_col = np.nan_to_num(z_col, nan=0.0, posinf=0.0, neginf=0.0)
        trial.events.record("inner_solve_complete", where="inner_solve",
                            outer_iteration=j)
        return z_col

    # ------------------------------------------------------------------ #
    def _finish(self, trial: _Trial, k: int, status: SolverStatus,
                qr: BatchedGivensQR, Z: list[np.ndarray], h_cols: list[np.ndarray],
                beta: float, target: float) -> None:
        """Form one trial's outer solution exactly as serial fgmres does."""
        lane = trial.lane
        if self.outer_policy is LeastSquaresPolicy.STANDARD:
            H = None
        else:
            H = np.zeros((k + 1, k), dtype=np.float64)
            for jj in range(k):
                H[: jj + 2, jj] = h_cols[jj][:, lane]
        y, lsq_info = solve_projected_lsq(
            qr.lane_R(lane, k), qr.lane_g(lane, k), policy=self.outer_policy,
            tol=self.outer_lsq_tol, H=H, beta=beta)
        if lsq_info.get("fallback"):
            trial.events.record("lsq_fallback", where="least_squares", outer_iteration=k)
        Zt = np.empty((self.n, k), dtype=np.float64, order="F")
        for jj in range(k):
            Zt[:, jj] = Z[jj][lane]
        x = self.x0 + Zt @ y
        r = self.b - self.op.matvec(x)
        residual_norm = float(np.linalg.norm(r))
        if status is SolverStatus.MAX_ITERATIONS:
            if np.isfinite(residual_norm) and \
                    abs(residual_norm - target) <= TARGET_GUARD_BAND * target:
                # Final-residual decision cusp: serial could classify this
                # trial the other way — peel instead of guessing.
                self._peel(trial)
                return
            if residual_norm <= target:
                status = SolverStatus.CONVERGED
        history = ConvergenceHistory()
        history.residual_norms = list(trial.history)
        trial.result = NestedSolverResult(
            x=x,
            status=status,
            outer_iterations=k,
            total_inner_iterations=sum(res.iterations for res in trial.inner_results),
            residual_norm=residual_norm,
            history=history,
            inner_results=trial.inner_results,
            events=trial.events,
        )
        trial.finished = True

    # ------------------------------------------------------------------ #
    def _inner_solve(self, rhs_block: np.ndarray, act_idx: np.ndarray, o: int):
        """One lockstep batch of inner GMRES solves (outer iteration ``o``).

        ``rhs_block`` is lanes-major ``(B, n)``.  Returns ``(X, peel,
        results)`` where ``X`` holds the per-lane solutions (lanes-major),
        ``peel`` marks lanes that left the common path, and ``results``
        holds per-lane :class:`SolverResult` (entries of peeled lanes are
        ``None``).
        """
        m = self.inner_budget
        tol = self.inner_tol
        offset = o * m
        lanes, n = rhs_block.shape
        trials = [self.trials[lane] for lane in act_idx]
        inner_events = [EventLog() for _ in trials]
        detector, response = self.detector, self.response

        peel = np.zeros(lanes, dtype=bool)
        chaotic = np.zeros(lanes, dtype=bool)
        results: list[SolverResult | None] = [None] * lanes

        norm_rhs = _row_norms(rhs_block)
        target = np.where(norm_rhs > 0.0, tol * norm_rhs, tol)
        # x0 = 0, so the (reliable) initial residual is the RHS itself.
        residual0 = norm_rhs
        histories = np.zeros((m + 1, lanes), dtype=np.float64)
        histories[0] = residual0
        peel |= residual0 <= target          # converged before iterating
        peel |= ~np.isfinite(residual0)      # poisoned RHS
        peel |= residual0 == 0.0             # serial stagnation branch
        alive = ~peel

        beta = residual0
        qr = BatchedGivensQR(m, beta)
        H_arr = (np.zeros((m + 1, m, lanes), dtype=np.float64)
                 if self.inner_policy is not LeastSquaresPolicy.STANDARD else None)
        arnoldi = BatchedArnoldi(self.op.matvec, rhs_block, beta, m,
                                 precond_block=self.precond_block)

        # Injection candidates per local iteration: trials whose schedule is
        # pinned to an aggregate iteration inside this inner solve, plus
        # trials with no aggregate pin (consulted at every coefficient, like
        # the serial hooked path).
        by_iteration: dict[int, list[int]] = {}
        always: list[int] = []
        for pos, trial in enumerate(trials):
            hess_target = trial.setup.hessenberg_target
            if hess_target is None:
                always.append(pos)
            elif offset <= hess_target < offset + m:
                by_iteration.setdefault(hess_target - offset, []).append(pos)

        chaos_threshold = self._chaos_threshold

        need_pre = detector is not None and response == "recompute"

        def hook_factory(j: int, candidates: list[int]):
            def hook(kind: str, index: int, values: np.ndarray) -> np.ndarray:
                pre = values.copy() if need_pre else None
                if kind == "hessenberg":
                    for pos in candidates:
                        if not alive[pos]:
                            continue
                        value = float(values[pos])
                        corrupted = trials[pos].setup.injector.corrupt_scalar(
                            "hessenberg", value,
                            outer_iteration=o, inner_solve_index=o,
                            inner_iteration=j,
                            aggregate_inner_iteration=offset + j,
                            mgs_index=index, mgs_length=j + 1)
                        if corrupted != value and not (np.isnan(corrupted)
                                                       and np.isnan(value)):
                            inner_events[pos].record(
                                "fault_injected", where="hessenberg",
                                outer_iteration=o, inner_iteration=j,
                                original=value, corrupted=float(corrupted),
                                mgs_index=index,
                                aggregate_inner_iteration=offset + j)
                        values[pos] = corrupted
                if detector is not None and (flagged := _detector_flags(detector, values)).any():
                    site = "hessenberg" if kind == "hessenberg" else "subdiag"
                    for pos in np.flatnonzero(flagged & alive):
                        value = float(values[pos])
                        verdict = detector.check_scalar(value, site=site)
                        if not verdict.flagged:
                            continue  # inside the prefilter band, below the bound
                        inner_events[pos].record(
                            "fault_detected", where=site,
                            outer_iteration=o, inner_iteration=j,
                            mgs_index=index, response=response,
                            aggregate_inner_iteration=offset + j,
                            **{**verdict.event_data(), "value": value})
                        if response == "zero":
                            values[pos] = 0.0
                        elif response == "clamp":
                            bound = verdict.bound if np.isfinite(verdict.bound) else 0.0
                            values[pos] = (float(np.sign(value) * bound)
                                           if np.isfinite(value) else 0.0)
                            if np.isfinite(value) and abs(value) > chaos_threshold:
                                # Clamping a huge fault leaves a bound-scale
                                # coefficient whose downstream cancellation
                                # still amplifies reduction-order noise past
                                # the equivalence contract — peel the lane.
                                chaotic[pos] = True
                        elif response == "recompute":
                            values[pos] = pre[pos]
                        elif response == "raise":
                            raise FaultDetectedError(verdict)
                        # "flag": keep the value.
                if kind == "hessenberg":
                    # Chaos gate: a surviving injected coefficient this far
                    # above the benign scale makes the lane's trajectory
                    # hypersensitive to reduction order — peel it to the
                    # serial reference instead of shipping ~1e-10-violating
                    # results.  (Filtering responses never reach here with a
                    # huge value; NaN/Inf propagate order-independently and
                    # stay in the batch.)
                    for pos in candidates:
                        if alive[pos]:
                            value = values[pos]
                            if np.isfinite(value) and abs(value) > chaos_threshold:
                                chaotic[pos] = True
                return values
            return hook

        def spmv_hook_factory(candidates: list[int]):
            # Lane-exact spmv injection: each candidate lane's raw operator
            # product (one contiguous row, computed by the exact serial
            # kernel) is offered to its own injector with the exact serial
            # context, *before* the detector screen — the same order as the
            # serial hooked Arnoldi step.  Schedules on other sites simply
            # decline, so consulting every candidate is safe.
            if not candidates and detector is None:
                return None

            def spmv_hook(j: int, V: np.ndarray) -> None:
                for pos in candidates:
                    if not alive[pos]:
                        continue
                    lane_v = V[pos]
                    corrupted = trials[pos].setup.injector.corrupt_vector(
                        "spmv", lane_v,
                        outer_iteration=o, inner_solve_index=o,
                        inner_iteration=j,
                        aggregate_inner_iteration=offset + j,
                        mgs_index=-1, mgs_length=0)
                    if corrupted is not lane_v and not np.array_equal(
                            corrupted, lane_v, equal_nan=True):
                        inner_events[pos].record(
                            "fault_injected", where="spmv",
                            outer_iteration=o, inner_iteration=j,
                            aggregate_inner_iteration=offset + j)
                        V[pos] = corrupted
                        with np.errstate(**_ERRSTATE):
                            peak = float(np.max(np.abs(corrupted)))
                        if np.isfinite(peak) and peak > chaos_threshold:
                            # Same chaos gate as huge injected coefficients:
                            # the cancellation of a huge vector component
                            # amplifies reduction-order noise past the
                            # equivalence contract — peel to serial.
                            chaotic[pos] = True
                if detector is not None:
                    self._screen_spmv(V, alive, inner_events, o, j)

            return spmv_hook

        for j in range(m):
            candidates = always + by_iteration.get(j, [])
            hook = (hook_factory(j, candidates)
                    if candidates or detector is not None else None)
            h_block = arnoldi.step(j, coefficient_hook=hook,
                                   spmv_hook=spmv_hook_factory(candidates),
                                   active=alive)
            if H_arr is not None:
                H_arr[: j + 2, j] = h_block
            resid_est = qr.add_column(h_block)
            histories[j + 1] = resid_est

            norm_v = h_block[j + 1]
            scale = np.maximum(np.max(np.abs(h_block[: j + 1]), axis=0), 1.0)
            with np.errstate(**_ERRSTATE):
                breakdown = np.isfinite(norm_v) & (norm_v <= HAPPY_BREAKDOWN_TOL * scale)
                finite_est = np.isfinite(resid_est)
                # Early convergence AND the guard band around it: a lane
                # whose estimate sits within reduction-order noise of the
                # target could converge a step earlier/later than serial.
                early = finite_est & (resid_est <= target)
                early |= finite_est & \
                    (np.abs(resid_est - target) <= TARGET_GUARD_BAND * target)
            newly_out = (breakdown | early | chaotic) & alive
            if newly_out.any():
                peel |= newly_out
                alive &= ~newly_out
                if not alive.any():
                    return (np.zeros((lanes, n), dtype=np.float64), peel, results)
                arnoldi.zero_lanes(j + 1, np.flatnonzero(~alive))

        # ----- projected least-squares solve and solution update ----------
        fallback = np.zeros(lanes, dtype=bool)
        finite_y = np.ones(lanes, dtype=bool)
        if self.inner_policy is LeastSquaresPolicy.STANDARD:
            Y = qr.solve_standard()
            finite_y = np.all(np.isfinite(Y), axis=0)
        else:
            Y = np.zeros((m, lanes), dtype=np.float64)
            for pos in np.flatnonzero(alive):
                y, info = solve_projected_lsq(
                    qr.lane_R(pos), qr.lane_g(pos), policy=self.inner_policy,
                    tol=self.inner_lsq_tol, H=H_arr[: m + 1, :m, pos],
                    beta=float(beta[pos]))
                Y[:, pos] = y
                fallback[pos] = bool(info.get("fallback"))
                finite_y[pos] = bool(info.get("finite", True))
        for pos in np.flatnonzero(alive):
            if fallback[pos]:
                inner_events[pos].record("lsq_fallback", where="least_squares",
                                         outer_iteration=o, inner_iteration=m)
            if not finite_y[pos]:
                inner_events[pos].record("lsq_nonfinite", where="least_squares",
                                         outer_iteration=o, inner_iteration=m)

        update = arnoldi.update_block(Y)
        if self.precond_block is not None:
            with np.errstate(**_ERRSTATE):
                live = np.flatnonzero(alive)
                preconditioned = np.zeros_like(update)
                preconditioned[live] = np.ascontiguousarray(
                    self.precond_block(update[live].T).T)
                update = preconditioned
        with np.errstate(**_ERRSTATE):
            X = update + 0.0  # x0 + update with x0 = 0, exactly as serial
            R_final = rhs_block - self._matvec_rows(X, lanes=np.flatnonzero(alive))
        residual_final = _row_norms(R_final)

        for pos in np.flatnonzero(alive):
            history = ConvergenceHistory()
            history.residual_norms = [float(v) for v in histories[:, pos]]
            results[pos] = SolverResult(
                x=X[pos].copy(),
                status=SolverStatus.MAX_ITERATIONS,
                iterations=m,
                residual_norm=float(residual_final[pos]),
                history=history,
                events=inner_events[pos],
                matvecs=m + 2,
            )
        return X, peel, results

    # ------------------------------------------------------------------ #
    def _screen_spmv(self, spmv: np.ndarray, alive: np.ndarray,
                     inner_events: list[EventLog], o: int, j: int) -> None:
        """Mirror the hooked Arnoldi step's detector check on ``A q_j``."""
        detector = self.detector
        norms = _row_norms(spmv)
        flagged = _detector_flags(detector, norms) & alive
        for pos in np.flatnonzero(flagged):
            verdict = detector.check_vector(spmv[pos], site="spmv")
            if not verdict.flagged:
                continue  # inside the prefilter band, below the bound
            inner_events[pos].record(
                "fault_detected", where="spmv", outer_iteration=o,
                inner_iteration=j, reason=verdict.reason,
                detector=verdict.detector, response=self.response)
            if self.response == "raise":
                raise FaultDetectedError(verdict)


def batched_ft_gmres(A, b, x0, params: FTGMRESParameters,
                     setups: list[BatchedTrialSetup]
                     ) -> list[NestedSolverResult | None]:
    """Run a batch of independent nested FT-GMRES trials in lockstep.

    Parameters
    ----------
    A, b, x0 : system
        Shared by every trial (a fault campaign solves one fixed system).
    params : FTGMRESParameters
        The nested-solver configuration, shared by every trial.  Must be
        supported by the lockstep engine — check with
        :func:`batched_support_reason` first.
    setups : list of BatchedTrialSetup
        Per-trial injector wiring; the batch width ``B`` is ``len(setups)``.

    Returns
    -------
    list of NestedSolverResult or None
        One entry per trial, in input order.  ``None`` marks a trial that
        left the lockstep common path (breakdown, early inner convergence);
        the caller must rerun it through the serial reference engine.
    """
    if not setups:
        return []
    return _BatchedNestedSolve(A, b, x0, params, setups).run()
