"""The Arnoldi process with fault-injection hooks and invariant checking.

This is the computational heart of GMRES (Algorithm 1, lines 3–14 of the
paper).  Each :func:`arnoldi_step` takes the current orthonormal basis,
applies the operator, orthogonalizes the new vector, and returns the new
Hessenberg column — while giving a fault injector the chance to corrupt the
intermediate quantities at named sites and giving a detector the chance to
check each orthogonalization coefficient against the paper's bound.

Injection sites (strings used by :mod:`repro.faults`):

========== ==============================================================
site        quantity
========== ==============================================================
``spmv``        the vector ``v = A q_j`` (line 4)
``precond``     the preconditioned vector ``z = M^{-1} q_j`` (consulted by
                the preconditioned solvers' operator closures, which call
                :meth:`ArnoldiContext.inject_vector` with the current step)
``hessenberg``  an orthogonalization coefficient ``h_ij`` (line 6)
``orth``        the orthogonalized (not yet normalized) vector
                ``v - sum_i h_ij q_i`` (line 8)
``subdiag``     the subdiagonal entry ``h_{j+1,j} = ||v||`` (line 9)
``basis``       the normalized new basis vector ``q_{j+1}`` (line 14)
``givens``      a Givens rotation coefficient ``c``/``s`` of the
                incremental QR update (consulted by the least-squares
                layer, see :mod:`repro.core.least_squares`)
========== ==============================================================

Every site receives the full iteration context (outer iteration, inner-solve
index, local and aggregate inner iteration, MGS position where applicable),
so schedules address any site with the same coordinates the paper's sweep
figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detectors import Detector
from repro.core.exceptions import FaultDetectedError
from repro.sparse.linear_operator import LinearOperator
from repro.utils.events import EventLog

__all__ = ["ArnoldiContext", "arnoldi_step", "arnoldi_process", "HAPPY_BREAKDOWN_TOL"]

#: Relative tolerance below which ``h_{j+1,j}`` is treated as zero
#: ("happy breakdown", line 10 of Algorithm 1).
HAPPY_BREAKDOWN_TOL = 1e-14

#: Detector response policies accepted by :class:`ArnoldiContext`.
VALID_RESPONSES = ("flag", "zero", "clamp", "recompute", "raise")


@dataclass
class ArnoldiContext:
    """Shared state threaded through Arnoldi steps.

    Attributes
    ----------
    injector : object or None
        A fault injector implementing ``corrupt_scalar(site, value, **ctx)``
        and ``corrupt_vector(site, vec, **ctx)`` (see
        :class:`repro.faults.injector.FaultInjector`).  ``None`` disables
        injection.
    detector : Detector or None
        Invariant checker applied to every Hessenberg coefficient.  ``None``
        disables detection.
    detector_response : str
        What to do when the detector flags a value:

        * ``"flag"``      — record the event and keep the corrupted value
          (detection only, no response; the paper's plots marked
          "would not be possible with the detector" come from comparing this
          mode against a responding mode);
        * ``"zero"``      — replace the flagged value with 0 (filtering);
        * ``"clamp"``     — replace with ``sign(value) * bound``;
        * ``"recompute"`` — recompute the coefficient from its operands
          (valid under the transient-SDC model, where inputs are untainted);
        * ``"raise"``     — raise :class:`FaultDetectedError` (halt the
          solve and report loudly).
    events : EventLog
        Structured event sink.
    outer_iteration : int
        Index of the enclosing outer (FGMRES) iteration, or -1.
    inner_solve_index : int
        Index of the enclosing inner solve, or -1.
    iteration_offset : int
        Added to the local iteration index to form the "aggregate inner
        iteration" coordinate used by the paper's sweep figures.
    matvecs : int
        Running count of operator applications.
    current_iteration : int
        The local iteration of the Arnoldi step currently executing
        (maintained by :func:`arnoldi_step`).  Lets code *called from inside*
        a step — preconditioner closures, bound operator wrappers — report
        real iteration context to the injector instead of a placeholder.
    """

    injector: object | None = None
    detector: Detector | None = None
    detector_response: str = "flag"
    events: EventLog = field(default_factory=EventLog)
    outer_iteration: int = -1
    inner_solve_index: int = -1
    iteration_offset: int = 0
    matvecs: int = 0
    current_iteration: int = -1

    def __post_init__(self) -> None:
        if self.detector_response not in VALID_RESPONSES:
            raise ValueError(
                f"detector_response must be one of {VALID_RESPONSES}, "
                f"got {self.detector_response!r}"
            )

    # ------------------------------------------------------------------ #
    # injection / detection plumbing
    # ------------------------------------------------------------------ #
    def _ctx_kwargs(self, iteration: int, mgs_index: int) -> dict:
        return {
            "outer_iteration": self.outer_iteration,
            "inner_solve_index": self.inner_solve_index,
            "inner_iteration": iteration,
            "aggregate_inner_iteration": self.iteration_offset + iteration,
            "mgs_index": mgs_index,
        }

    def current_context(self) -> dict:
        """The live injection context of the step currently executing.

        Used by black-box wrappers (:mod:`repro.faults.targets`) bound to a
        running solver so their injector consults see real iteration
        coordinates rather than raw call counts.
        """
        kwargs = self._ctx_kwargs(self.current_iteration, -1)
        kwargs["mgs_length"] = 0
        return kwargs

    def inject_scalar(self, site: str, value: float, iteration: int, mgs_index: int = -1,
                      mgs_length: int = 0) -> float:
        """Offer ``value`` to the injector; record an event if it was corrupted."""
        if self.injector is None:
            return value
        kwargs = self._ctx_kwargs(iteration, mgs_index)
        kwargs["mgs_length"] = mgs_length
        corrupted = self.injector.corrupt_scalar(site, value, **kwargs)
        if corrupted != value and not (np.isnan(corrupted) and np.isnan(value)):
            self.events.record(
                "fault_injected", where=site,
                outer_iteration=self.outer_iteration, inner_iteration=iteration,
                original=float(value), corrupted=float(corrupted), mgs_index=mgs_index,
                aggregate_inner_iteration=kwargs["aggregate_inner_iteration"],
            )
        return corrupted

    def inject_vector(self, site: str, vec: np.ndarray, iteration: int) -> np.ndarray:
        """Offer a vector to the injector; record an event if it was corrupted."""
        if self.injector is None:
            return vec
        kwargs = self._ctx_kwargs(iteration, -1)
        corrupted = self.injector.corrupt_vector(site, vec, **kwargs)
        if corrupted is not vec and not np.array_equal(corrupted, vec, equal_nan=True):
            self.events.record(
                "fault_injected", where=site,
                outer_iteration=self.outer_iteration, inner_iteration=iteration,
                aggregate_inner_iteration=kwargs["aggregate_inner_iteration"],
            )
            return corrupted
        return vec

    def screen_scalar(self, site: str, value: float, iteration: int, mgs_index: int,
                      recompute) -> float:
        """Run the detector on ``value`` and apply the response policy.

        Parameters
        ----------
        recompute : callable
            Zero-argument callable returning a freshly computed value; used
            by the ``"recompute"`` response.
        """
        if self.detector is None:
            return value
        verdict = self.detector.check_scalar(value, site=site)
        if not verdict.flagged:
            return value
        self.events.record(
            "fault_detected", where=site,
            outer_iteration=self.outer_iteration, inner_iteration=iteration,
            mgs_index=mgs_index, response=self.detector_response,
            aggregate_inner_iteration=self.iteration_offset + iteration,
            **{**verdict.event_data(), "value": float(value)},
        )
        if self.detector_response == "flag":
            return value
        if self.detector_response == "zero":
            return 0.0
        if self.detector_response == "clamp":
            bound = verdict.bound if np.isfinite(verdict.bound) else 0.0
            return float(np.sign(value) * bound) if np.isfinite(value) else 0.0
        if self.detector_response == "recompute":
            return float(recompute())
        raise FaultDetectedError(verdict)


# ---------------------------------------------------------------------- #
# single Arnoldi step
# ---------------------------------------------------------------------- #
def arnoldi_step(
    op: LinearOperator,
    basis: np.ndarray,
    j: int,
    ctx: ArnoldiContext,
    orthogonalization: str = "mgs",
    apply_operator=None,
    workspace: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None, bool]:
    """Perform the ``j``-th Arnoldi step (0-based).

    Parameters
    ----------
    op : LinearOperator
        The (possibly preconditioned) operator.
    basis : numpy.ndarray
        Array of shape ``(n, >= j+2)`` whose first ``j+1`` columns are the
        current orthonormal basis; column ``j+1`` is overwritten with the new
        basis vector when no breakdown occurs.
    j : int
        Step index; the step orthogonalizes ``A @ basis[:, j]``.
    ctx : ArnoldiContext
        Injection/detection context.
    orthogonalization : {"mgs", "cgs", "cgs2"}
        Modified Gram–Schmidt (the paper's choice), classical Gram–Schmidt,
        or re-orthogonalized classical Gram–Schmidt.
    apply_operator : callable, optional
        Override for the operator application (used by FGMRES, where the
        "operator" for column ``j`` is ``A @ M_j^{-1}``).  Receives the basis
        vector, returns the vector to orthogonalize.
    workspace : numpy.ndarray, optional
        Length-``n`` float64 scratch for the fast MGS path's axpy buffer.
        Callers that run many steps per solve (GMRES cycles) allocate it
        once instead of paying one ``np.empty_like`` per step; contents are
        clobbered.  Ignored by the hooked and CGS paths.

    Returns
    -------
    h_col : numpy.ndarray
        The ``j+2`` Hessenberg entries ``h_{1..j+2, j+1}`` (last entry is the
        subdiagonal norm).
    q_next : numpy.ndarray or None
        The new unit basis vector, or ``None`` on (happy) breakdown.
    breakdown : bool
        True when ``h_{j+1,j}`` is numerically zero.
    """
    if orthogonalization not in ("mgs", "cgs", "cgs2"):
        raise ValueError(
            f"orthogonalization must be 'mgs', 'cgs' or 'cgs2', got {orthogonalization!r}"
        )
    # Zero-overhead fast path: with no injector and no detector attached
    # (failure-free solves, and the reliable outer iteration of faulted
    # trials — faulted *inner* solves keep their injector attached even on
    # iterations where it never fires) the per-coefficient hook plumbing is
    # pure overhead, so it is skipped entirely.  Both branches perform the
    # identical sequence of floating-point operations — the fast path is
    # bit-for-bit identical to the hooked path with a null context
    # (asserted in the test suite).
    fast = ctx.injector is None and ctx.detector is None
    ctx.current_iteration = j

    q_j = basis[:, j]
    if apply_operator is None:
        v = op.matvec(q_j)
    else:
        v = np.asarray(apply_operator(q_j), dtype=np.float64)
    ctx.matvecs += 1
    if not fast:
        v = ctx.inject_vector("spmv", v, iteration=j)
        if ctx.detector is not None:
            verdict = ctx.detector.check_vector(v, site="spmv")
            if verdict.flagged:
                ctx.events.record(
                    "fault_detected", where="spmv", outer_iteration=ctx.outer_iteration,
                    inner_iteration=j, reason=verdict.reason, detector=verdict.detector,
                    response=ctx.detector_response,
                )
                if ctx.detector_response == "raise":
                    raise FaultDetectedError(verdict)

    h_col = np.zeros(j + 2, dtype=np.float64)
    Q = basis[:, : j + 1]

    if fast:
        v = v.copy()
        if orthogonalization == "mgs":
            # The dot products and updates go straight to BLAS; a reused
            # scratch buffer avoids one temporary allocation per coefficient
            # (and, when the caller supplies a per-solve workspace, per step).
            scratch = workspace if workspace is not None else np.empty_like(v)
            for i in range(j + 1):
                q_i = Q[:, i]
                h = np.dot(q_i, v)
                h_col[i] = h
                np.multiply(q_i, h, out=scratch)
                np.subtract(v, scratch, out=v)
        else:
            passes = 2 if orthogonalization == "cgs2" else 1
            for _ in range(passes):
                coeffs = Q.T @ v
                v = v - Q @ coeffs
                h_col[: j + 1] += coeffs
        norm_v = float(np.linalg.norm(v))
    elif orthogonalization == "mgs":
        v = v.copy()
        for i in range(j + 1):
            q_i = Q[:, i]
            h = float(np.dot(q_i, v))
            h = ctx.inject_scalar("hessenberg", h, iteration=j, mgs_index=i, mgs_length=j + 1)
            h = ctx.screen_scalar("hessenberg", h, iteration=j, mgs_index=i,
                                  recompute=lambda q_i=q_i, v=v: np.dot(q_i, v))
            h_col[i] = h
            v = v - h * q_i
    else:
        # Classical Gram-Schmidt: all coefficients from the original vector.
        passes = 2 if orthogonalization == "cgs2" else 1
        v = v.copy()
        for _ in range(passes):
            coeffs = Q.T @ v
            for i in range(j + 1):
                h = float(coeffs[i])
                h = ctx.inject_scalar("hessenberg", h, iteration=j, mgs_index=i,
                                      mgs_length=j + 1)
                h = ctx.screen_scalar("hessenberg", h, iteration=j, mgs_index=i,
                                      recompute=lambda i=i: np.dot(Q[:, i], v))
                coeffs[i] = h
            v = v - Q @ coeffs
            h_col[: j + 1] += coeffs

    if not fast:
        # The orthogonalized-but-unnormalized vector is its own site: a fault
        # here lands *after* the coefficients were computed cleanly, which is
        # a different propagation path than spmv or hessenberg corruption.
        v = ctx.inject_vector("orth", v, iteration=j)
        norm_v = float(np.linalg.norm(v))
        norm_v = ctx.inject_scalar("subdiag", norm_v, iteration=j, mgs_index=j + 1,
                                   mgs_length=j + 1)
        norm_v = ctx.screen_scalar("subdiag", norm_v, iteration=j, mgs_index=j + 1,
                                   recompute=lambda: np.linalg.norm(v))
    h_col[j + 1] = norm_v

    scale = max(np.abs(h_col[: j + 1]).max() if j + 1 > 0 else 0.0, 1.0)
    if not np.isfinite(norm_v) or norm_v <= HAPPY_BREAKDOWN_TOL * scale:
        if np.isfinite(norm_v):
            ctx.events.record("happy_breakdown", where="subdiag",
                              outer_iteration=ctx.outer_iteration, inner_iteration=j,
                              value=norm_v)
            return h_col, None, True
        # A non-finite norm is not a breakdown; return the poisoned vector so
        # the caller's NaN handling (or the detector) deals with it.
        q_next = np.full_like(v, np.nan)
        basis[:, j + 1] = q_next
        return h_col, q_next, False

    q_next = v / norm_v
    q_next = ctx.inject_vector("basis", q_next, iteration=j)
    basis[:, j + 1] = q_next
    return h_col, q_next, False


# ---------------------------------------------------------------------- #
# standalone Arnoldi factorization
# ---------------------------------------------------------------------- #
def arnoldi_process(
    A,
    v0: np.ndarray,
    m: int,
    orthogonalization: str = "mgs",
    ctx: ArnoldiContext | None = None,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Run ``m`` Arnoldi steps starting from ``v0``.

    Returns the basis ``Q`` (``n x (k+1)``), the Hessenberg matrix ``H``
    (``(k+1) x k``), and a breakdown flag, where ``k <= m`` is the number of
    completed steps.  Used directly by the Figure 2 structure experiment and
    by tests of the Arnoldi relation ``A Q_k = Q_{k+1} H_k``.
    """
    from repro.sparse.linear_operator import aslinearoperator

    op = aslinearoperator(A)
    v0 = np.asarray(v0, dtype=np.float64).ravel()
    n = op.shape[1]
    if v0.shape[0] != n:
        raise ValueError(f"v0 has length {v0.shape[0]}, expected {n}")
    beta = float(np.linalg.norm(v0))
    if beta == 0.0:
        raise ValueError("v0 must be nonzero")
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    m = min(m, n)
    ctx = ctx or ArnoldiContext()

    basis = np.zeros((n, m + 1), dtype=np.float64, order="F")
    basis[:, 0] = v0 / beta
    H = np.zeros((m + 1, m), dtype=np.float64)
    breakdown = False
    k = 0
    for j in range(m):
        h_col, q_next, breakdown = arnoldi_step(op, basis, j, ctx,
                                                orthogonalization=orthogonalization)
        H[: j + 2, j] = h_col
        k = j + 1
        if breakdown or q_next is None:
            break
    return basis[:, : k + 1], H[: k + 1, : k], breakdown
