"""Exception types raised by the core solvers."""

from __future__ import annotations

__all__ = ["ReproError", "FaultDetectedError", "RankDeficiencyError"]


class ReproError(RuntimeError):
    """Base class for all library-specific errors."""


class FaultDetectedError(ReproError):
    """Raised when a detector flags SDC and the response policy is ``"raise"``.

    Carries the :class:`repro.core.detectors.DetectionResult` that triggered
    it in ``detection``.
    """

    def __init__(self, detection, message: str | None = None):
        self.detection = detection
        super().__init__(message or f"silent data corruption detected: {detection.reason}")


class RankDeficiencyError(ReproError):
    """Raised when FGMRES detects a rank-deficient projected matrix.

    This corresponds to the third branch of the paper's trichotomy: the
    solver cannot make progress and reports the failure loudly instead of
    returning a silently wrong answer.
    """
