"""The upper Hessenberg matrix produced by the Arnoldi process.

GMRES builds ``H`` one column per iteration; :class:`HessenbergMatrix` stores
the growing matrix, maintains the incremental Givens-rotation QR
factorization that Saad and Schultz use to solve the projected least-squares
problem in O(k) extra work per iteration, and exposes the structural and
rank queries the paper relies on:

* the tridiagonal-vs-Hessenberg structure check behind Figure 2,
* the rank(-deficiency) test behind FGMRES's trichotomy (Section VI-C),
* the per-entry bound check used by the SDC detector.
"""

from __future__ import annotations

import numpy as np

from repro.core.least_squares import (
    IncrementalGivensQR,
    LeastSquaresPolicy,
    givens_rotation,
)

__all__ = ["HessenbergMatrix"]


class HessenbergMatrix:
    """A growing ``(k+1) x k`` upper Hessenberg matrix with incremental QR.

    Parameters
    ----------
    max_columns : int
        Maximum number of Arnoldi steps (restart length); storage is
        allocated once up front to avoid repeated reallocation in the solver
        hot loop.
    beta : float
        Norm of the initial residual; the projected least-squares right-hand
        side is ``beta * e_1``.
    """

    def __init__(self, max_columns: int, beta: float = 0.0):
        if max_columns <= 0:
            raise ValueError(f"max_columns must be positive, got {max_columns}")
        m = int(max_columns)
        self.max_columns = m
        self._H = np.zeros((m + 1, m), dtype=np.float64)
        # Incremental QR state lives in the least-squares layer: rotations
        # are reused across iterations, never recomputed.
        self._qr = IncrementalGivensQR(m, beta)
        self.beta = float(beta)

    # ------------------------------------------------------------------ #
    # column insertion and incremental QR
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of completed columns."""
        return self._qr.k

    def add_column(self, column: np.ndarray, givens_hook=None) -> float:
        """Append the ``k``-th Arnoldi column and update the QR factorization.

        Parameters
        ----------
        column : array_like
            The ``k+2`` values ``h_{1,k+1}, ..., h_{k+2,k+1}`` (i.e. the
            orthogonalization coefficients plus the subdiagonal norm) of the
            new column, where ``k`` is the current number of columns.
        givens_hook : callable, optional
            The ``"givens"`` injection site, forwarded to
            :meth:`IncrementalGivensQR.add_column` (``hook(c, s) -> (c, s)``
            on the new rotation).  ``None`` performs the identical
            floating-point operations with no hook overhead.

        Returns
        -------
        float
            The updated least-squares residual norm ``|g_{k+1}|`` — GMRES's
            monotone residual estimate.
        """
        j = self.k
        if j >= self.max_columns:
            raise RuntimeError("HessenbergMatrix is full; increase max_columns")
        column = np.asarray(column, dtype=np.float64).ravel()
        if column.shape[0] != j + 2:
            raise ValueError(
                f"column {j} must have {j + 2} entries, got {column.shape[0]}"
            )
        self._H[: j + 2, j] = column
        return self._qr.add_column(column, givens_hook=givens_hook)

    #: Retained for backwards compatibility; the canonical implementation is
    #: :func:`repro.core.least_squares.givens_rotation`.
    _givens = staticmethod(givens_rotation)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def H(self) -> np.ndarray:
        """The current ``(k+1) x k`` Hessenberg matrix (a copy-free view)."""
        return self._H[: self.k + 1, : self.k]

    @property
    def R(self) -> np.ndarray:
        """Upper-triangular factor of the QR factorization, shape ``k x k``."""
        return self._qr.R

    @property
    def g(self) -> np.ndarray:
        """The rotated right-hand side ``Q^T (beta e1)``, length ``k+1``."""
        return self._qr.g

    def solve_y(self, policy=LeastSquaresPolicy.STANDARD, tol: float | None = None
                ) -> tuple[np.ndarray, dict]:
        """Solve for the update coefficients from the maintained factorization.

        The STANDARD policy back-substitutes the incrementally maintained
        triangular system (no re-factorization, Inf/NaN propagation intact);
        the rank-revealing policies are handed the full Hessenberg matrix, as
        the solvers did before (see :func:`solve_projected_lsq`).
        """
        policy = LeastSquaresPolicy.coerce(policy)
        H = self.H if policy is not LeastSquaresPolicy.STANDARD else None
        return self._qr.solve(policy=policy, tol=tol, H=H, beta=self.beta)

    @property
    def square(self) -> np.ndarray:
        """The leading ``k x k`` square block ``H(1:k, 1:k)``."""
        return self._H[: self.k, : self.k]

    def entry(self, i: int, j: int) -> float:
        """``H[i, j]`` with bounds checking (0-based)."""
        if not (0 <= i <= self.k and 0 <= j < self.k):
            raise IndexError(f"entry ({i}, {j}) outside current {self.k + 1}x{self.k} Hessenberg")
        return float(self._H[i, j])

    def least_squares_residual(self) -> float:
        """Current GMRES residual estimate ``|g_{k+1}|``."""
        return self._qr.residual_estimate()

    # ------------------------------------------------------------------ #
    # analysis used by the paper
    # ------------------------------------------------------------------ #
    def max_abs_entry(self) -> float:
        """Largest magnitude among all stored Hessenberg entries."""
        if self.k == 0:
            return 0.0
        return float(np.abs(self.H).max())

    def violates_bound(self, bound: float) -> bool:
        """True if any stored entry exceeds the theoretical bound."""
        return self.max_abs_entry() > float(bound)

    def bandwidth(self, tol: float = 1e-10) -> int:
        """Number of nonzero superdiagonals (0 means tridiagonal or lower).

        For an SPD input matrix the Arnoldi Hessenberg matrix is tridiagonal
        (one superdiagonal); for a general nonsymmetric matrix it is full
        upper Hessenberg.  This is the quantity visualized in Figure 2.
        """
        H = self.H
        if self.k == 0:
            return 0
        scale = max(np.abs(H).max(), 1.0)
        band = 0
        for j in range(self.k):
            rows = np.flatnonzero(np.abs(H[: j + 2, j]) > tol * scale)
            if rows.size:
                band = max(band, j - int(rows.min()))
        return band

    def is_tridiagonal(self, tol: float = 1e-10) -> bool:
        """True if the stored Hessenberg matrix is numerically tridiagonal."""
        return self.bandwidth(tol=tol) <= 1

    def smallest_singular_value(self) -> float:
        """Smallest singular value of the square block ``H(1:k, 1:k)``."""
        if self.k == 0:
            return 0.0
        s = np.linalg.svd(self.square, compute_uv=False)
        return float(s[-1])

    def numerical_rank(self, tol: float | None = None) -> int:
        """Numerical rank of ``H(1:k, 1:k)``.

        Parameters
        ----------
        tol : float, optional
            Singular values below ``tol * sigma_max`` count as zero.  The
            default is ``k * eps``, matching ``numpy.linalg.matrix_rank``.
        """
        if self.k == 0:
            return 0
        square = self.square
        if not np.all(np.isfinite(square)):
            finite = np.nan_to_num(square, nan=0.0, posinf=0.0, neginf=0.0)
            square = finite
        s = np.linalg.svd(square, compute_uv=False)
        if s.size == 0 or s[0] == 0.0:
            return 0
        if tol is None:
            tol = self.k * np.finfo(np.float64).eps
        return int(np.count_nonzero(s > tol * s[0]))

    def is_rank_deficient(self, tol: float | None = None) -> bool:
        """True if ``H(1:k, 1:k)`` is numerically rank deficient.

        This is the third branch of FGMRES's trichotomy.  (We use a small
        dense SVD rather than an updatable rank-revealing ULV decomposition;
        the paper notes Stewart's O(k^2) update as the production choice, but
        k is at most the restart length so the O(k^3) SVD is negligible next
        to the SpMV and orthogonalization costs.)
        """
        return self.numerical_rank(tol=tol) < self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HessenbergMatrix(k={self.k}, max_columns={self.max_columns})"
