"""FT-GMRES: the paper's fault-tolerant inner–outer (nested) solver.

The outer iteration is Flexible GMRES executed reliably; the inner solves
are plain GMRES executed *unreliably* inside a sandbox (Section IV): they may
experience silent data corruption, and they only promise to return something
in finite time.  The outer iteration "rolls forward" through whatever the
inner solves return and drives convergence with reliably computed residuals.

The experiment harness injects exactly one SDC event per nested solve into
one Hessenberg coefficient of one inner solve, which is how Figures 3 and 4
of the paper are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fgmres import FGMRESParameters, fgmres
from repro.core.gmres import GMRESParameters, gmres
from repro.core.status import NestedSolverResult, SolverResult, SolverStatus
from repro.sparse.linear_operator import aslinearoperator
from repro.utils.events import EventLog

__all__ = ["FTGMRESParameters", "ft_gmres"]


@dataclass
class FTGMRESParameters:
    """Configuration of the nested FT-GMRES solver.

    Attributes
    ----------
    outer : FGMRESParameters
        Options for the reliable outer FGMRES iteration.
    inner : GMRESParameters
        Options for the unreliable inner GMRES solves.  The paper runs every
        inner solve for a fixed 25 iterations regardless of progress, which
        corresponds to ``tol=0.0, maxiter=25`` (the default here).
    """

    outer: FGMRESParameters = field(default_factory=lambda: FGMRESParameters(tol=1e-8,
                                                                             max_outer=100))
    inner: GMRESParameters = field(default_factory=lambda: GMRESParameters(tol=0.0, maxiter=25))

    @property
    def inner_iterations(self) -> int:
        """The per-inner-solve iteration budget."""
        return self.inner.maxiter if self.inner.maxiter is not None else 25


def ft_gmres(
    A,
    b,
    x0=None,
    *,
    params: FTGMRESParameters | None = None,
    outer_tol: float | None = None,
    max_outer: int | None = None,
    inner_iterations: int | None = None,
    injector=None,
    sandbox=None,
    events: EventLog | None = None,
    profile=None,
) -> NestedSolverResult:
    """Solve ``A x = b`` with the fault-tolerant nested FT-GMRES iteration.

    Parameters
    ----------
    A : matrix or operator
        System operator (used by both the inner and the outer iteration).
    b : array_like
        Right-hand side.
    x0 : array_like, optional
        Initial guess for the outer iteration.
    params : FTGMRESParameters, optional
        Full configuration.  The convenience keywords below override the
        corresponding fields when given.
    outer_tol : float, optional
        Outer relative convergence tolerance.
    max_outer : int, optional
        Maximum number of outer iterations.
    inner_iterations : int, optional
        Fixed iteration count of every inner GMRES solve (paper: 25).
    injector : FaultInjector, optional
        Fault injector passed to the *inner* solves only — the outer
        iteration always runs reliably, which is the sandbox model.
    sandbox : Sandbox, optional
        Explicit sandbox marking the unreliable region.  When omitted but an
        injector is supplied, a fresh sandbox is created; the injector is
        activated only while an inner solve is running inside it.
    events : EventLog, EventSink, or callable, optional
        Merged event destination for the whole nested solve (any
        :class:`~repro.results.events.EventSink` streams the events: outer
        events as they happen, each inner solve's events when it completes).
    profile : KernelProfile, optional
        Accumulate per-phase kernel time (spmv/precond/orth/lsq) of every
        *inner* solve into this :class:`~repro.utils.profile.KernelProfile`.
        ``None`` (default) performs no timing; profiled runs are bit-identical
        to unprofiled ones (see :func:`repro.core.gmres.gmres`).

    Returns
    -------
    NestedSolverResult
    """
    params = params or FTGMRESParameters()
    if outer_tol is not None:
        params = FTGMRESParameters(outer=params.outer.replace(tol=outer_tol), inner=params.inner)
    if max_outer is not None:
        params = FTGMRESParameters(outer=params.outer.replace(max_outer=max_outer),
                                   inner=params.inner)
    if inner_iterations is not None:
        params = FTGMRESParameters(outer=params.outer,
                                   inner=params.inner.replace(maxiter=inner_iterations))

    if sandbox is None and injector is not None:
        from repro.faults.sandbox import Sandbox

        sandbox = Sandbox(name="ft-gmres-inner")
    if sandbox is not None and injector is not None and hasattr(injector, "attach_sandbox"):
        injector.attach_sandbox(sandbox)

    events = EventLog.ensure(events)
    op = aslinearoperator(A)
    n = op.shape[0]
    inner_budget = params.inner_iterations
    inner_results: list[SolverResult] = []

    inner_kwargs = params.inner.as_kwargs()
    inner_kwargs["tol"] = params.inner.tol
    inner_kwargs["maxiter"] = inner_budget
    # The paper's inner solves never restart: one Arnoldi cycle of
    # `inner_iterations` steps per invocation.
    inner_kwargs["restart"] = inner_budget

    def inner_solver(q_j: np.ndarray, outer_iteration: int) -> np.ndarray:
        """One unreliable inner solve: approximately solve ``A z = q_j``."""
        inner_events = EventLog()
        offset = outer_iteration * inner_budget

        def run() -> SolverResult:
            return gmres(
                A,
                q_j,
                injector=injector,
                events=inner_events,
                profile=profile,
                outer_iteration=outer_iteration,
                inner_solve_index=outer_iteration,
                iteration_offset=offset,
                **inner_kwargs,
            )

        if sandbox is not None:
            with sandbox:
                result = run()
        else:
            result = run()
        inner_results.append(result)
        events.extend(inner_events)
        return result.x

    outer = params.outer
    outer_result = fgmres(
        A,
        b,
        inner_solver=inner_solver,
        x0=x0,
        tol=outer.tol,
        max_outer=outer.max_outer,
        orthogonalization=outer.orthogonalization,
        lsq_policy=outer.lsq_policy,
        lsq_tol=outer.lsq_tol,
        rank_tol=outer.rank_tol,
        detector=outer.detector,
        detector_response=outer.detector_response,
        bound_method=outer.bound_method,
        # The nested solver's injector goes to the *inner* solves only; the
        # outer iteration is the reliable phase.  An injector attached to the
        # outer parameters themselves is an explicit opt-in to corrupt the
        # (normally reliable) outer iteration.
        injector=getattr(outer, "injector", None),
        events=events,
    )

    total_inner = sum(r.iterations for r in inner_results)
    return NestedSolverResult(
        x=outer_result.x,
        status=outer_result.status,
        outer_iterations=outer_result.iterations,
        total_inner_iterations=total_inner,
        residual_norm=outer_result.residual_norm,
        history=outer_result.history,
        inner_results=inner_results,
        events=events,
        profile=profile,
    )
