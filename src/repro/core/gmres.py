"""GMRES with SDC detection, fault-injection hooks and restart.

This implements Algorithm 1 of the paper (Saad & Schultz GMRES with Modified
Gram–Schmidt), extended with:

* optional right preconditioning (so the same routine can serve as the
  preconditioned inner solver of FT-GMRES),
* the Hessenberg-bound detector inserted exactly where the paper prescribes
  (after each orthogonalization coefficient and after the subdiagonal norm),
* the three projected least-squares policies of Section VI-D,
* named fault-injection sites so the experiment harness can corrupt
  individual coefficients,
* restart (GMRES(m)) for long solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter as _perf_counter

import numpy as np

from repro.core.arnoldi import ArnoldiContext, arnoldi_step
from repro.core.detectors import Detector
from repro.core.hessenberg import HessenbergMatrix
from repro.core.least_squares import LeastSquaresPolicy
from repro.core.status import ConvergenceHistory, SolverResult, SolverStatus
from repro.registry import resolve_detector, resolve_preconditioner_apply
from repro.sparse.linear_operator import LinearOperator, aslinearoperator
from repro.utils.events import EventLog
from repro.utils.validation import as_dense_vector, check_square

__all__ = ["GMRESParameters", "gmres"]


@dataclass
class GMRESParameters:
    """Bundled GMRES options (used to configure the inner solver of FT-GMRES).

    Every field mirrors the keyword argument of :func:`gmres` with the same
    name; see that function for semantics.
    """

    tol: float = 1e-8
    maxiter: int | None = None
    restart: int | None = None
    preconditioner: object | None = None
    orthogonalization: str = "mgs"
    lsq_policy: LeastSquaresPolicy | str = LeastSquaresPolicy.STANDARD
    lsq_tol: float | None = None
    detector: Detector | str | None = None
    detector_response: str = "flag"
    bound_method: str = "frobenius"

    def replace(self, **changes) -> "GMRESParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def as_kwargs(self) -> dict:
        """The parameters as a keyword dictionary for :func:`gmres`."""
        return {
            "tol": self.tol,
            "maxiter": self.maxiter,
            "restart": self.restart,
            "preconditioner": self.preconditioner,
            "orthogonalization": self.orthogonalization,
            "lsq_policy": self.lsq_policy,
            "lsq_tol": self.lsq_tol,
            "detector": self.detector,
            "detector_response": self.detector_response,
            "bound_method": self.bound_method,
        }


def gmres(
    A,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    maxiter: int | None = None,
    restart: int | None = None,
    preconditioner=None,
    orthogonalization: str = "mgs",
    lsq_policy=LeastSquaresPolicy.STANDARD,
    lsq_tol: float | None = None,
    detector: Detector | str | None = None,
    detector_response: str = "flag",
    bound_method: str = "frobenius",
    injector=None,
    events: EventLog | None = None,
    profile=None,
    outer_iteration: int = -1,
    inner_solve_index: int = -1,
    iteration_offset: int = 0,
) -> SolverResult:
    """Solve ``A x = b`` with (restarted, right-preconditioned) GMRES.

    Parameters
    ----------
    A : matrix or operator
        Anything accepted by :func:`repro.sparse.aslinearoperator`.
    b : array_like
        Right-hand side.
    x0 : array_like, optional
        Initial guess (default: zero vector).
    tol : float
        Relative convergence tolerance on ``||b - A x|| / ||b||``.  Use
        ``tol=0`` to force a fixed number of iterations (the paper's inner
        solves always run their full 25 iterations).
    maxiter : int, optional
        Total iteration budget across restart cycles.  Defaults to ``n``.
    restart : int, optional
        Restart length ``m``.  ``None`` means no restart (full GMRES up to
        ``maxiter``).
    preconditioner : Preconditioner, callable, matrix, registry spec, or None
        Right preconditioner ``M^{-1}`` applied as ``A M^{-1}``.  String/dict
        specs (``"ilu0"``, ``{"name": "ssor", "omega": 1.2}``) resolve
        through :mod:`repro.registry` against ``A``.
    orthogonalization : {"mgs", "cgs", "cgs2"}
        Orthogonalization variant; the paper uses Modified Gram–Schmidt.
    lsq_policy : LeastSquaresPolicy or str
        Policy for the projected least-squares solve (Section VI-D).
    lsq_tol : float, optional
        Singular-value truncation tolerance for the rank-revealing policies.
    detector : Detector, registry spec, or None
        SDC detector applied to every Hessenberg coefficient.  The string
        ``"bound"`` builds a :class:`HessenbergBoundDetector` from ``A``
        using ``bound_method``; any other registered detector spec
        (``"nonfinite"``, ``{"name": "norm_growth", "factor": 1e4}``, ...)
        also resolves here.
    detector_response : {"flag", "zero", "clamp", "recompute", "raise"}
        Response applied when the detector flags a value.
    bound_method : {"frobenius", "two_norm", "exact"}
        Norm used when ``detector="bound"``.
    injector : FaultInjector, optional
        Fault injector with access to the named sites (see
        :mod:`repro.core.arnoldi`).
    events : EventLog, EventSink, or callable, optional
        Event destination.  An :class:`EventLog` is used directly; any other
        :class:`~repro.results.events.EventSink` (or bare callable) receives
        every event as it is recorded, streamed through a fresh log.  A new
        log is created when omitted; the log ends up on the result either
        way.
    profile : KernelProfile, optional
        Accumulate per-phase wall time (spmv/precond/orth/lsq) into this
        :class:`~repro.utils.profile.KernelProfile`.  ``None`` (the default)
        skips all timing — the hot loop performs no clock reads — and the
        profiled path performs the identical floating-point operations, so
        results match bit for bit either way.  When set, the profile lands
        on the result and a ``kernel_profile`` event is recorded.
    outer_iteration, inner_solve_index, iteration_offset : int
        Bookkeeping for nested (FT-GMRES) use: they position this solve's
        iterations on the "aggregate inner iteration" axis of the paper's
        figures.

    Returns
    -------
    SolverResult
    """
    op: LinearOperator = aslinearoperator(A)
    n = check_square(op.shape, "A")
    b = as_dense_vector(b, n, "b")
    x = as_dense_vector(x0, n, "x0") if x0 is not None else np.zeros(n, dtype=np.float64)

    if maxiter is None:
        maxiter = n
    if maxiter <= 0:
        raise ValueError(f"maxiter must be positive, got {maxiter}")
    m = restart if restart is not None else maxiter
    if m <= 0:
        raise ValueError(f"restart must be positive, got {restart}")
    m = min(m, maxiter)
    policy = LeastSquaresPolicy.coerce(lsq_policy)
    det = resolve_detector(detector, A=A, bound_method=bound_method)
    apply_precond = resolve_preconditioner_apply(preconditioner, n=n, A=A)

    events = EventLog.ensure(events)
    history = ConvergenceHistory()
    ctx = ArnoldiContext(
        injector=injector,
        detector=det,
        detector_response=detector_response,
        events=events,
        outer_iteration=outer_iteration,
        inner_solve_index=inner_solve_index,
        iteration_offset=iteration_offset,
    )

    norm_b = float(np.linalg.norm(b))
    target = tol * norm_b if norm_b > 0.0 else tol

    # The hooked paths consult the injector at the "precond" (preconditioned
    # vector) and "givens" (rotation coefficients) sites with the live
    # iteration context.  Both hooks are None on the fault-free fast path,
    # which then performs the identical floating-point operations.
    # Black-box wrappers (repro.faults.targets) are recognized and routed
    # through the live context: their injectors then see real iteration
    # coordinates instead of raw call counts (which non-Arnoldi matvecs —
    # initial/true residuals — would silently shift).
    mv_in_context = getattr(op, "matvec_in_context", None)
    apply_in_context = getattr(preconditioner, "apply_in_context", None)
    if apply_in_context is not None:
        def apply_precond(q, _mi=apply_in_context, _ctx=ctx):
            return _mi(q, _ctx.current_context())
    precond_apply = apply_precond
    if apply_precond is not None and injector is not None:
        def precond_apply(q, _mi=apply_precond, _ctx=ctx):
            z = np.asarray(_mi(q), dtype=np.float64)
            return _ctx.inject_vector("precond", z, iteration=_ctx.current_iteration)
    givens_hook = None
    if injector is not None:
        def givens_hook(c, s, _ctx=ctx):
            it = _ctx.current_iteration
            c = _ctx.inject_scalar("givens", c, iteration=it, mgs_index=0, mgs_length=2)
            s = _ctx.inject_scalar("givens", s, iteration=it, mgs_index=1, mgs_length=2)
            return c, s

    if mv_in_context is not None:
        # Arnoldi matvecs go through the wrapper with live coordinates;
        # residual matvecs (host-side, reliable in the sandbox model) use
        # the wrapped clean operator.
        def base_matvec(q, _mv=mv_in_context, _ctx=ctx):
            return _mv(q, _ctx.current_context())
        residual_matvec = op.operator.matvec
    else:
        base_matvec = op.matvec
        residual_matvec = op.matvec

    if profile is None:
        if precond_apply is None and mv_in_context is None:
            operator_apply = None  # arnoldi_step will call op.matvec directly
        elif precond_apply is None:
            operator_apply = base_matvec
        else:
            def operator_apply(q, _op=base_matvec, _mi=precond_apply):
                return _op(_mi(q))
    else:
        # Timed closures pass values through unchanged (conforming float64
        # vectors survive arnoldi_step's asarray untouched), so profiling
        # never perturbs the arithmetic.
        timed_matvec = profile.timed("spmv", base_matvec)
        if precond_apply is None:
            operator_apply = timed_matvec
        else:
            def operator_apply(q, _op=timed_matvec,
                               _mi=profile.timed("precond", precond_apply)):
                return _op(_mi(q))

    total_iterations = 0
    status = SolverStatus.MAX_ITERATIONS
    residual_norm = float("nan")
    # Per-solve MGS scratch: arnoldi_step would otherwise allocate an
    # n-vector every iteration (see its ``workspace`` parameter).
    mgs_scratch = np.empty(n, dtype=np.float64)

    # Initial residual (reliable).
    r = b - residual_matvec(x)
    ctx.matvecs += 1
    residual_norm = float(np.linalg.norm(r))
    history.append(residual_norm)
    if residual_norm <= target:
        return SolverResult(x, SolverStatus.CONVERGED, 0, residual_norm, history, events,
                            ctx.matvecs, profile=profile)

    while total_iterations < maxiter:
        beta = float(np.linalg.norm(r))
        if not np.isfinite(beta) or beta == 0.0:
            status = SolverStatus.STAGNATED if beta == 0.0 else SolverStatus.MAX_ITERATIONS
            break
        cycle_len = min(m, maxiter - total_iterations)
        # Fortran order makes every basis column contiguous, which is what
        # the BLAS-level dot/axpy kernels of the orthogonalization want.
        basis = np.zeros((n, cycle_len + 1), dtype=np.float64, order="F")
        basis[:, 0] = r / beta
        hess = HessenbergMatrix(cycle_len, beta)

        k = 0
        cycle_status = None
        for j in range(cycle_len):
            if profile is not None:
                hooked_before = profile.spmv_time + profile.precond_time
                step_start = _perf_counter()
            h_col, q_next, breakdown = arnoldi_step(
                op, basis, j, ctx, orthogonalization=orthogonalization,
                apply_operator=operator_apply, workspace=mgs_scratch,
            )
            if profile is not None:
                # Orthogonalization time is the step minus what the timed
                # operator closures already booked to spmv/precond.
                hooked = (profile.spmv_time + profile.precond_time) - hooked_before
                profile.add("orth", _perf_counter() - step_start - hooked)
                lsq_start = _perf_counter()
            resid_est = hess.add_column(h_col, givens_hook=givens_hook)
            if profile is not None:
                profile.add("lsq", _perf_counter() - lsq_start)
            total_iterations += 1
            k = j + 1
            history.append(resid_est)
            if breakdown:
                cycle_status = SolverStatus.HAPPY_BREAKDOWN
                break
            if np.isfinite(resid_est) and resid_est <= target:
                cycle_status = SolverStatus.CONVERGED
                break

        # Form the solution update from this cycle.
        if k > 0:
            if profile is not None:
                lsq_start = _perf_counter()
            y, lsq_info = hess.solve_y(policy=policy, tol=lsq_tol)
            if profile is not None:
                profile.add("lsq", _perf_counter() - lsq_start)
            if lsq_info.get("fallback"):
                events.record("lsq_fallback", where="least_squares",
                              outer_iteration=outer_iteration, inner_iteration=total_iterations)
            if not lsq_info.get("finite", True):
                events.record("lsq_nonfinite", where="least_squares",
                              outer_iteration=outer_iteration, inner_iteration=total_iterations)
            update = basis[:, :k] @ y
            if apply_precond is not None:
                update = apply_precond(update)
            with np.errstate(invalid="ignore", over="ignore"):
                x = x + update

        # True residual for the next cycle / convergence confirmation.
        with np.errstate(invalid="ignore", over="ignore"):
            r = b - residual_matvec(x)
        ctx.matvecs += 1
        residual_norm = float(np.linalg.norm(r))

        if cycle_status is SolverStatus.HAPPY_BREAKDOWN:
            # In exact, fault-free arithmetic a happy breakdown means the exact
            # solution was found.  Under SDC the subdiagonal can collapse
            # spuriously (e.g. a huge corrupted coefficient makes the new basis
            # vector a duplicate), so verify the claim against the reliably
            # computed residual before declaring success; otherwise keep
            # iterating (restart) if budget remains, or report stagnation.
            breakdown_target = max(target, 1e-13 * norm_b)
            if residual_norm <= breakdown_target:
                status = SolverStatus.HAPPY_BREAKDOWN
                break
            events.record("spurious_breakdown", where="gmres",
                          outer_iteration=outer_iteration,
                          inner_iteration=total_iterations,
                          residual_norm=residual_norm)
            if total_iterations >= maxiter:
                status = SolverStatus.STAGNATED
                break
            continue
        if cycle_status is SolverStatus.CONVERGED and residual_norm <= max(target, 0.0) * (1 + 1e-8):
            status = SolverStatus.CONVERGED
            break
        if cycle_status is SolverStatus.CONVERGED:
            # The Givens estimate said converged but the true residual
            # disagrees (possible under SDC): keep iterating if budget allows.
            if total_iterations >= maxiter:
                status = SolverStatus.MAX_ITERATIONS
                break
            continue
        if total_iterations >= maxiter:
            status = SolverStatus.MAX_ITERATIONS
            break

    if profile is not None:
        events.record("kernel_profile", where="gmres",
                      outer_iteration=outer_iteration,
                      inner_iteration=total_iterations,
                      profile=profile.to_dict())
    return SolverResult(
        x=x,
        status=status,
        iterations=total_iterations,
        residual_norm=residual_norm,
        history=history,
        events=events,
        matvecs=ctx.matvecs,
        profile=profile,
    )
