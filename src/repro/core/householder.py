"""Householder-reflector Arnoldi: the third orthogonalization variant.

The paper notes (Section V-B) that its Hessenberg-entry bound "is invariant of
the orthogonalization algorithm chosen" — Modified Gram–Schmidt, Classical
Gram–Schmidt, or Householder transformations.  The Gram–Schmidt variants live
in :mod:`repro.core.arnoldi`; this module provides the Householder variant as
a standalone factorization so the claim can be verified empirically (see
``tests/test_core_householder.py``) and so users who need the extra numerical
robustness of Householder orthogonalization (fully orthogonal basis even for
ill-conditioned Krylov spaces) can build on it.

The implementation follows Walker's formulation (SIAM J. Sci. Stat. Comput.,
1988): reflectors ``P_0 ... P_k`` are accumulated so that

    P_k ... P_0 [v0, A q_1, ..., A q_k]  =  upper trapezoidal,

the basis vectors are ``q_j = P_0 ... P_j e_j``, and the Hessenberg columns
are read off the reflected vectors.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.linear_operator import aslinearoperator

__all__ = ["householder_arnoldi"]


def _householder_vector(x: np.ndarray) -> tuple[np.ndarray, float]:
    """Return ``(w, beta)`` such that ``(I - beta w w^T) x = -sign(x0)*||x|| e_1``.

    ``beta`` is zero when ``x`` is (numerically) zero, in which case the
    reflector is the identity.
    """
    x = np.asarray(x, dtype=np.float64)
    norm_x = np.linalg.norm(x)
    w = x.copy()
    if norm_x == 0.0:
        return w, 0.0
    sign = 1.0 if x[0] >= 0.0 else -1.0
    w[0] += sign * norm_x
    norm_w = np.linalg.norm(w)
    if norm_w == 0.0:  # pragma: no cover - only for x = -sign*norm*e1 exactly
        return w, 0.0
    w /= norm_w
    return w, 2.0


def _apply_reflectors(w_list, betas, vec, start: int, stop: int, forward: bool) -> np.ndarray:
    """Apply reflectors ``P_start ... P_{stop-1}`` (or reversed) to ``vec`` in place."""
    indices = range(start, stop) if forward else range(stop - 1, start - 1, -1)
    for i in indices:
        beta = betas[i]
        if beta == 0.0:
            continue
        w = w_list[i]
        # Reflector i acts on components i: (w is stored full-length, zero above i).
        vec = vec - beta * w * np.dot(w, vec)
    return vec


def householder_arnoldi(A, v0: np.ndarray, m: int) -> tuple[np.ndarray, np.ndarray, bool]:
    """Run ``m`` Arnoldi steps using Householder orthogonalization.

    Parameters
    ----------
    A : matrix or operator
        Square operator.
    v0 : array_like
        Nonzero start vector.
    m : int
        Number of Arnoldi steps (capped at the matrix dimension).

    Returns
    -------
    Q : numpy.ndarray
        Orthonormal basis of the Krylov space, shape ``(n, k+1)`` with
        ``k <= m`` completed steps.
    H : numpy.ndarray
        The ``(k+1) x k`` upper Hessenberg matrix satisfying
        ``A Q[:, :k] = Q H`` (up to rounding).
    breakdown : bool
        True if an invariant subspace was found before ``m`` steps.

    Notes
    -----
    Each Hessenberg column produced here satisfies the same bound
    ``|h_ij| <= ||A||_2 <= ||A||_F`` as the Gram–Schmidt variants, because
    the reflectors are orthogonal: the column is an orthogonal transformation
    of ``A q_j``, whose norm is at most ``||A||_2``.
    """
    op = aslinearoperator(A)
    n = op.shape[1]
    v0 = np.asarray(v0, dtype=np.float64).ravel()
    if v0.shape[0] != n:
        raise ValueError(f"v0 has length {v0.shape[0]}, expected {n}")
    if np.linalg.norm(v0) == 0.0:
        raise ValueError("v0 must be nonzero")
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    m = min(m, n)

    w_list: list[np.ndarray] = []
    betas: list[float] = []
    Q = np.zeros((n, m + 1), dtype=np.float64)
    H = np.zeros((m + 1, m), dtype=np.float64)

    # Reflector 0 maps v0 to a multiple of e_0; q_0 = P_0 e_0.
    z = v0.copy()
    breakdown = False
    k = 0
    for j in range(m + 1):
        if j == n:
            # The Krylov space has filled R^n: there is no (n+1)-st basis
            # vector or reflector, and the final Hessenberg column is the
            # fully reflected z with an implicit zero subdiagonal entry.
            H[:n, j - 1] = z[:n]
            k = m
            break
        # Build reflector j from the trailing part of z (components j:).
        w = np.zeros(n, dtype=np.float64)
        tail = z[j:]
        w_tail, beta = _householder_vector(tail)
        w[j:] = w_tail
        w_list.append(w)
        betas.append(beta)

        # The reflected vector: entries 0..j of P_j z are the Hessenberg column
        # for the previous step (for j = 0 it is just beta * e_0, the start).
        reflected = z - beta * w * np.dot(w, z) if beta != 0.0 else z.copy()
        if j > 0:
            H[: j + 1, j - 1] = reflected[: j + 1]

        # Basis vector q_j = P_0 ... P_j e_j.
        e_j = np.zeros(n, dtype=np.float64)
        e_j[j] = 1.0
        q_j = _apply_reflectors(w_list, betas, e_j, 0, j + 1, forward=False)
        Q[:, j] = q_j

        if j == m:
            k = m
            break
        # Check for breakdown: after the first step the subdiagonal entry
        # h_{j+1, j} is |reflected[j+1..]| collapsed into reflected[j] by the
        # next reflector; a zero tail of the *next* z signals an invariant
        # subspace, detected below once z is formed.
        z = op.matvec(q_j)
        # Apply all existing reflectors P_j ... P_0 to A q_j.
        z = _apply_reflectors(w_list, betas, z, 0, j + 1, forward=True)
        if np.linalg.norm(z[j + 1:]) <= 1e-14 * max(np.linalg.norm(z), 1.0):
            # The next column has no component outside the current space.
            end = min(j + 2, n)
            H[:end, j] = z[:end]
            k = j + 1
            breakdown = True
            break
        k = j + 1

    # Note: unlike the Gram-Schmidt variants, the Householder basis vectors
    # carry the reflectors' sign convention (subdiagonal entries may be
    # negative).  The factorization A Q_k = Q_{k+1} H_k and the entry bound
    # |h_ij| <= ||A||_2 are unaffected.
    return Q[:, : k + 1], H[: k + 1, : k], breakdown
