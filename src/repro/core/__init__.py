"""Core Krylov solvers and the paper's SDC-detection machinery.

Public entry points:

* :func:`repro.core.gmres.gmres` — GMRES (optionally restarted) with the
  Hessenberg-bound detector, fault-injection hooks, and selectable projected
  least-squares policy.
* :func:`repro.core.fgmres.fgmres` — Flexible GMRES with a per-iteration
  preconditioner/inner-solver, rank-revealing breakdown handling
  (the paper's "trichotomy").
* :func:`repro.core.ftgmres.ft_gmres` — the paper's nested FT-GMRES solver:
  reliable FGMRES outside, unreliable GMRES inside a sandbox.
* :class:`repro.core.detectors.HessenbergBoundDetector` — the cheap invariant
  check ``|h_ij| <= ||A||_F``.
"""

from repro.core.status import SolverStatus, SolverResult, NestedSolverResult, ConvergenceHistory
from repro.core.hessenberg import HessenbergMatrix
from repro.core.arnoldi import ArnoldiContext, arnoldi_step, arnoldi_process
from repro.core.householder import householder_arnoldi
from repro.core.least_squares import (
    IncrementalGivensQR,
    LeastSquaresPolicy,
    solve_projected_lsq,
    solve_triangular,
    solve_rank_revealing,
)
from repro.core.detectors import (
    Detector,
    DetectionResult,
    HessenbergBoundDetector,
    NonFiniteDetector,
    NormGrowthDetector,
    CompositeDetector,
    NullDetector,
)
from repro.core.gmres import gmres, GMRESParameters
from repro.core.fgmres import fgmres, FGMRESParameters
from repro.core.ftgmres import ft_gmres, FTGMRESParameters
from repro.core.batched import (
    BatchedArnoldi,
    BatchedGivensQR,
    BatchedTrialSetup,
    batched_ft_gmres,
    batched_support_reason,
)

__all__ = [
    "SolverStatus",
    "SolverResult",
    "NestedSolverResult",
    "ConvergenceHistory",
    "HessenbergMatrix",
    "ArnoldiContext",
    "arnoldi_step",
    "arnoldi_process",
    "householder_arnoldi",
    "IncrementalGivensQR",
    "LeastSquaresPolicy",
    "solve_projected_lsq",
    "solve_triangular",
    "solve_rank_revealing",
    "Detector",
    "DetectionResult",
    "HessenbergBoundDetector",
    "NonFiniteDetector",
    "NormGrowthDetector",
    "CompositeDetector",
    "NullDetector",
    "gmres",
    "GMRESParameters",
    "fgmres",
    "FGMRESParameters",
    "ft_gmres",
    "FTGMRESParameters",
    "BatchedArnoldi",
    "BatchedGivensQR",
    "BatchedTrialSetup",
    "batched_ft_gmres",
    "batched_support_reason",
]
