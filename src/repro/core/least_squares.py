"""The projected least-squares problem and its robustness policies.

Every GMRES iteration ends by solving

    min_y || H_k y - beta e_1 ||_2

for the solution-update coefficients ``y`` (Eq. (4) of the paper).  Saad and
Schultz solve it through the incremental Givens QR factorization and a
triangular back-substitution.  That back-substitution can produce unbounded
coefficients when the triangular factor is (nearly) singular — which a fault
in the Arnoldi process can cause.  Section VI-D of the paper therefore
defines three policies, implemented here:

1. ``STANDARD``        — plain triangular solve (Saad & Schultz).
2. ``HYBRID``          — triangular solve, falling back to the rank-revealing
                         solve only when the result contains Inf or NaN.
3. ``RANK_REVEALING``  — always solve through a truncated SVD, yielding the
                         minimum-norm solution with singular values below a
                         tolerance discarded.

The paper recommends policy 1 or 3; policy 2 "conceals the natural error
detection" of IEEE-754 without bounding the error, and the experiments here
let you verify that claim (see ``benchmarks/bench_ablation_lsq.py``).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = [
    "LeastSquaresPolicy",
    "solve_triangular",
    "solve_rank_revealing",
    "solve_projected_lsq",
]


class LeastSquaresPolicy(Enum):
    """Policy for solving the projected least-squares problem."""

    STANDARD = "standard"
    HYBRID = "hybrid"
    RANK_REVEALING = "rank_revealing"

    @classmethod
    def coerce(cls, value) -> "LeastSquaresPolicy":
        """Accept a policy instance or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown least-squares policy {value!r}; "
                f"expected one of {[p.value for p in cls]}"
            ) from exc


def solve_triangular(R: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Back-substitution for an upper-triangular system ``R y = rhs``.

    No singularity handling whatsoever — a zero pivot produces Inf/NaN, which
    is exactly the behaviour the HYBRID policy relies on for its fallback
    test and the behaviour the paper attributes to the standard approach.
    """
    R = np.asarray(R, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    k = R.shape[1]
    if R.shape[0] < k or rhs.shape[0] < k:
        raise ValueError(f"inconsistent triangular system: R {R.shape}, rhs {rhs.shape}")
    y = np.zeros(k, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for i in range(k - 1, -1, -1):
            acc = rhs[i] - np.dot(R[i, i + 1 : k], y[i + 1 : k])
            y[i] = acc / R[i, i]
    return y


def solve_rank_revealing(M: np.ndarray, rhs: np.ndarray, tol: float | None = None
                         ) -> tuple[np.ndarray, int]:
    """Minimum-norm least-squares solution of ``M y ≈ rhs`` via truncated SVD.

    Parameters
    ----------
    M : numpy.ndarray
        The (small) projected matrix — either the ``(k+1) x k`` Hessenberg
        matrix or the ``k x k`` triangular factor.
    rhs : numpy.ndarray
        Right-hand side of matching length.
    tol : float, optional
        Relative truncation tolerance: singular values below
        ``tol * sigma_max`` are discarded.  Defaults to
        ``max(M.shape) * eps``, the usual numerical-rank tolerance.

    Returns
    -------
    y : numpy.ndarray
        The minimum-norm solution restricted to the retained singular space.
    rank : int
        Number of singular values retained.

    Notes
    -----
    Non-finite entries in ``M`` or ``rhs`` are replaced by zero before the
    SVD: LAPACK's SVD does not accept NaN/Inf, and the paper's policy 3 is
    meant to produce a *bounded* update no matter how badly the inputs were
    corrupted.  The replacement is recorded in the returned rank only
    implicitly (the corrupted directions carry no information either way).
    """
    M = np.asarray(M, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if M.ndim != 2 or rhs.shape[0] != M.shape[0]:
        raise ValueError(f"inconsistent least-squares system: M {M.shape}, rhs {rhs.shape}")
    if not np.all(np.isfinite(M)):
        M = np.nan_to_num(M, nan=0.0, posinf=0.0, neginf=0.0)
    if not np.all(np.isfinite(rhs)):
        rhs = np.nan_to_num(rhs, nan=0.0, posinf=0.0, neginf=0.0)
    if M.shape[1] == 0:
        return np.zeros(0, dtype=np.float64), 0
    U, s, Vt = np.linalg.svd(M, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        return np.zeros(M.shape[1], dtype=np.float64), 0
    if tol is None:
        tol = max(M.shape) * np.finfo(np.float64).eps
    keep = s > tol * s[0]
    rank = int(np.count_nonzero(keep))
    if rank == 0:
        return np.zeros(M.shape[1], dtype=np.float64), 0
    coeffs = (U[:, keep].T @ rhs) / s[keep]
    y = Vt[keep, :].T @ coeffs
    return y, rank


def solve_projected_lsq(
    R: np.ndarray,
    g: np.ndarray,
    policy=LeastSquaresPolicy.STANDARD,
    tol: float | None = None,
    H: np.ndarray | None = None,
    beta: float | None = None,
) -> tuple[np.ndarray, dict]:
    """Solve for GMRES's solution-update coefficients under a chosen policy.

    Parameters
    ----------
    R : numpy.ndarray
        The ``k x k`` upper-triangular factor from the incremental Givens QR.
    g : numpy.ndarray
        The rotated right-hand side (length ``k`` or ``k+1``; only the first
        ``k`` entries are used by the triangular solve).
    policy : LeastSquaresPolicy or str
        Which of the three policies to apply.
    tol : float, optional
        Truncation tolerance for the rank-revealing solves.
    H : numpy.ndarray, optional
        The full ``(k+1) x k`` Hessenberg matrix.  When provided, the
        rank-revealing policy solves the original problem
        ``min ||H y - beta e1||`` directly (equivalent in exact arithmetic to
        solving with ``R``; the paper applies the technique to ``R`` after
        the Givens rotations, which is what happens when ``H`` is omitted).
    beta : float, optional
        Initial residual norm, required when ``H`` is given.

    Returns
    -------
    y : numpy.ndarray
        The update coefficients (length ``k``).
    info : dict
        Diagnostics: ``{"policy", "fallback", "rank", "finite"}`` where
        ``fallback`` is True when the HYBRID policy had to switch to the
        rank-revealing solve.
    """
    policy = LeastSquaresPolicy.coerce(policy)
    R = np.asarray(R, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64).ravel()
    k = R.shape[1]
    rhs = g[:k]
    info = {"policy": policy.value, "fallback": False, "rank": k, "finite": True}

    if policy is LeastSquaresPolicy.STANDARD:
        y = solve_triangular(R, rhs)
        info["finite"] = bool(np.all(np.isfinite(y)))
        return y, info

    if policy is LeastSquaresPolicy.HYBRID:
        y = solve_triangular(R, rhs)
        if np.all(np.isfinite(y)):
            return y, info
        info["fallback"] = True
        y, rank = _rank_revealing_dispatch(R, rhs, H, beta, tol)
        info["rank"] = rank
        info["finite"] = bool(np.all(np.isfinite(y)))
        return y, info

    # RANK_REVEALING
    y, rank = _rank_revealing_dispatch(R, rhs, H, beta, tol)
    info["rank"] = rank
    info["finite"] = bool(np.all(np.isfinite(y)))
    return y, info


def _rank_revealing_dispatch(R, rhs, H, beta, tol) -> tuple[np.ndarray, int]:
    """Solve rank-revealing either on the triangular factor or the full H."""
    if H is not None:
        if beta is None:
            raise ValueError("beta must be provided when solving with the full Hessenberg matrix")
        e1 = np.zeros(H.shape[0], dtype=np.float64)
        e1[0] = float(beta)
        return solve_rank_revealing(H, e1, tol=tol)
    return solve_rank_revealing(R, rhs, tol=tol)
