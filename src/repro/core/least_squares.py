"""The projected least-squares problem and its robustness policies.

Every GMRES iteration ends by solving

    min_y || H_k y - beta e_1 ||_2

for the solution-update coefficients ``y`` (Eq. (4) of the paper).  Saad and
Schultz solve it through the incremental Givens QR factorization and a
triangular back-substitution.  That back-substitution can produce unbounded
coefficients when the triangular factor is (nearly) singular — which a fault
in the Arnoldi process can cause.  Section VI-D of the paper therefore
defines three policies, implemented here:

1. ``STANDARD``        — plain triangular solve (Saad & Schultz).
2. ``HYBRID``          — triangular solve, falling back to the rank-revealing
                         solve only when the result contains Inf or NaN.
3. ``RANK_REVEALING``  — always solve through a truncated SVD, yielding the
                         minimum-norm solution with singular values below a
                         tolerance discarded.

The paper recommends policy 1 or 3; policy 2 "conceals the natural error
detection" of IEEE-754 without bounding the error, and the experiments here
let you verify that claim (see ``benchmarks/bench_ablation_lsq.py``).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = [
    "LeastSquaresPolicy",
    "IncrementalGivensQR",
    "solve_triangular",
    "solve_rank_revealing",
    "solve_projected_lsq",
]


class LeastSquaresPolicy(Enum):
    """Policy for solving the projected least-squares problem."""

    STANDARD = "standard"
    HYBRID = "hybrid"
    RANK_REVEALING = "rank_revealing"

    @classmethod
    def coerce(cls, value) -> "LeastSquaresPolicy":
        """Accept a policy instance or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown least-squares policy {value!r}; "
                f"expected one of {[p.value for p in cls]}"
            ) from exc


def givens_rotation(a: float, b: float) -> tuple[float, float]:
    """Compute a Givens rotation ``(c, s)`` such that ``[c s; -s c] [a; b] = [r; 0]``.

    The formulation avoids overflow for huge corrupted entries (the
    ``1e+150``-scaled faults of the paper) by normalizing by the larger
    magnitude first.  Non-finite inputs yield a NaN rotation so downstream
    arithmetic stays non-finite (the solver's IEEE-754 detection sees it)
    rather than raising.
    """
    if b == 0.0:
        return 1.0, 0.0
    if a == 0.0:
        return 0.0, 1.0
    if not (np.isfinite(a) and np.isfinite(b)):
        return float("nan"), float("nan")
    if abs(b) > abs(a):
        t = a / b
        s = 1.0 / np.sqrt(1.0 + t * t)
        return s * t, s
    t = b / a
    c = 1.0 / np.sqrt(1.0 + t * t)
    return c, c * t


class IncrementalGivensQR:
    """Incremental Givens QR of a growing ``(k+1) x k`` upper Hessenberg matrix.

    This is the factorization Saad and Schultz use to solve the projected
    least-squares problem in O(k) extra work per iteration: each new Arnoldi
    column is rotated by all previous Givens rotations, one new rotation
    zeroes its subdiagonal entry, and the rotated right-hand side ``g`` keeps
    both the residual estimate (``|g_{k+1}|``) and the triangular system
    ``R y = g_{1:k}`` current.  Nothing is ever re-factored: the rotations
    are *reused* across iterations, and :meth:`solve` works directly off the
    maintained ``R`` and ``g``.

    Parameters
    ----------
    max_columns : int
        Maximum number of columns (restart length); storage is allocated
        once up front.
    beta : float
        Norm of the initial residual; the right-hand side is ``beta * e_1``.
    """

    def __init__(self, max_columns: int, beta: float = 0.0):
        if max_columns <= 0:
            raise ValueError(f"max_columns must be positive, got {max_columns}")
        m = int(max_columns)
        self.max_columns = m
        self.k = 0  # number of completed columns
        self._R = np.zeros((m + 1, m), dtype=np.float64)
        self._g = np.zeros(m + 1, dtype=np.float64)
        self._g[0] = float(beta)
        # The rotation recurrence is scalar and sequential, so the rotations
        # are kept as plain Python floats (identical IEEE-754 arithmetic,
        # none of the NumPy scalar-indexing overhead in the hot loop).
        self._cs: list[float] = [0.0] * m
        self._sn: list[float] = [0.0] * m
        self.beta = float(beta)

    # ------------------------------------------------------------------ #
    @property
    def R(self) -> np.ndarray:
        """Upper-triangular factor, shape ``k x k`` (copy-free view)."""
        return self._R[: self.k, : self.k]

    @property
    def g(self) -> np.ndarray:
        """The rotated right-hand side ``Q^T (beta e1)``, length ``k+1``."""
        return self._g[: self.k + 1]

    def residual_estimate(self) -> float:
        """GMRES's monotone least-squares residual estimate ``|g_{k+1}|``."""
        return abs(float(self._g[self.k]))

    # ------------------------------------------------------------------ #
    def add_column(self, column, givens_hook=None) -> float:
        """Rotate a new Hessenberg column into the factorization.

        Parameters
        ----------
        column : array_like
            The ``k+2`` entries of column ``k`` (orthogonalization
            coefficients plus the subdiagonal norm).
        givens_hook : callable, optional
            The ``"givens"`` injection site: called as ``hook(c, s)`` with
            the freshly computed rotation coefficients and must return the
            (possibly corrupted) pair that is then stored, applied to the
            column, and applied to the right-hand side.  ``None`` (the
            default) skips the hook entirely — the fault-free fast path
            performs the identical floating-point operations.

        Returns
        -------
        float
            The updated residual estimate ``|g_{k+1}|``.
        """
        j = self.k
        if j >= self.max_columns:
            raise RuntimeError("IncrementalGivensQR is full; increase max_columns")
        cs, sn = self._cs, self._sn
        r = [float(v) for v in column]
        if len(r) != j + 2:
            raise ValueError(f"column {j} must have {j + 2} entries, got {len(r)}")

        # Reuse the previous rotations on the new column.
        for i in range(j):
            c, s = cs[i], sn[i]
            r_i, r_i1 = r[i], r[i + 1]
            r[i] = c * r_i + s * r_i1
            r[i + 1] = -s * r_i + c * r_i1

        # Compute and apply the new rotation that zeroes r[j+1].
        c, s = givens_rotation(r[j], r[j + 1])
        if givens_hook is not None:
            # A corrupted rotation poisons the triangular factor AND the
            # rotated right-hand side — exactly how a faulty rotation update
            # propagates in the real algorithm (it no longer zeroes r[j+1]
            # exactly, but the factorization stores 0 there regardless, which
            # is the silent part of the corruption).
            c, s = givens_hook(float(c), float(s))
            c, s = float(c), float(s)
        cs[j], sn[j] = c, s
        r[j] = c * r[j] + s * r[j + 1]
        r[j + 1] = 0.0
        self._R[: j + 2, j] = r

        # Apply the new rotation to the right-hand side g.
        g_j = float(self._g[j])
        self._g[j] = c * g_j
        self._g[j + 1] = -s * g_j

        self.k = j + 1
        return abs(float(self._g[j + 1]))

    # ------------------------------------------------------------------ #
    def solve(self, policy=LeastSquaresPolicy.STANDARD, tol: float | None = None,
              H: np.ndarray | None = None, beta: float | None = None
              ) -> tuple[np.ndarray, dict]:
        """Solve the projected least-squares problem from the maintained state.

        Equivalent to ``solve_projected_lsq(self.R, self.g, ...)`` — the
        factorization is never recomputed; ``H``/``beta`` are only consulted
        by the rank-revealing policies (see :func:`solve_projected_lsq`).
        """
        return solve_projected_lsq(
            self.R, self.g, policy=policy, tol=tol, H=H,
            beta=self.beta if beta is None else beta,
        )


def solve_triangular(R: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Back-substitution for an upper-triangular system ``R y = rhs``.

    No singularity handling whatsoever — a zero pivot produces Inf/NaN, which
    is exactly the behaviour the HYBRID policy relies on for its fallback
    test and the behaviour the paper attributes to the standard approach.
    """
    R = np.asarray(R, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    k = R.shape[1]
    if R.shape[0] < k or rhs.shape[0] < k:
        raise ValueError(f"inconsistent triangular system: R {R.shape}, rhs {rhs.shape}")
    y = np.zeros(k, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for i in range(k - 1, -1, -1):
            acc = rhs[i] - np.dot(R[i, i + 1 : k], y[i + 1 : k])
            y[i] = acc / R[i, i]
    return y


def solve_rank_revealing(M: np.ndarray, rhs: np.ndarray, tol: float | None = None
                         ) -> tuple[np.ndarray, int]:
    """Minimum-norm least-squares solution of ``M y ≈ rhs`` via truncated SVD.

    Parameters
    ----------
    M : numpy.ndarray
        The (small) projected matrix — either the ``(k+1) x k`` Hessenberg
        matrix or the ``k x k`` triangular factor.
    rhs : numpy.ndarray
        Right-hand side of matching length.
    tol : float, optional
        Relative truncation tolerance: singular values below
        ``tol * sigma_max`` are discarded.  Defaults to
        ``max(M.shape) * eps``, the usual numerical-rank tolerance.

    Returns
    -------
    y : numpy.ndarray
        The minimum-norm solution restricted to the retained singular space.
    rank : int
        Number of singular values retained.

    Notes
    -----
    Non-finite entries in ``M`` or ``rhs`` are replaced by zero before the
    SVD: LAPACK's SVD does not accept NaN/Inf, and the paper's policy 3 is
    meant to produce a *bounded* update no matter how badly the inputs were
    corrupted.  The replacement is recorded in the returned rank only
    implicitly (the corrupted directions carry no information either way).
    """
    M = np.asarray(M, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if M.ndim != 2 or rhs.shape[0] != M.shape[0]:
        raise ValueError(f"inconsistent least-squares system: M {M.shape}, rhs {rhs.shape}")
    if not np.all(np.isfinite(M)):
        M = np.nan_to_num(M, nan=0.0, posinf=0.0, neginf=0.0)
    if not np.all(np.isfinite(rhs)):
        rhs = np.nan_to_num(rhs, nan=0.0, posinf=0.0, neginf=0.0)
    if M.shape[1] == 0:
        return np.zeros(0, dtype=np.float64), 0
    U, s, Vt = np.linalg.svd(M, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        return np.zeros(M.shape[1], dtype=np.float64), 0
    if tol is None:
        tol = max(M.shape) * np.finfo(np.float64).eps
    # Discard directions below the relative tolerance, and subnormal singular
    # values outright: dividing by them overflows, and the whole point of
    # policy 3 is a *bounded* update.
    keep = (s > tol * s[0]) & (s >= np.finfo(np.float64).tiny)
    rank = int(np.count_nonzero(keep))
    if rank == 0:
        return np.zeros(M.shape[1], dtype=np.float64), 0
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        coeffs = (U[:, keep].T @ rhs) / s[keep]
        y = Vt[keep, :].T @ coeffs
    if not np.all(np.isfinite(y)):
        # Last-resort guard (huge rhs over tiny-but-normal singular values):
        # zero the unrepresentable directions rather than return Inf/NaN.
        y = np.nan_to_num(y, nan=0.0, posinf=0.0, neginf=0.0)
    return y, rank


def solve_projected_lsq(
    R: np.ndarray,
    g: np.ndarray,
    policy=LeastSquaresPolicy.STANDARD,
    tol: float | None = None,
    H: np.ndarray | None = None,
    beta: float | None = None,
) -> tuple[np.ndarray, dict]:
    """Solve for GMRES's solution-update coefficients under a chosen policy.

    Parameters
    ----------
    R : numpy.ndarray
        The ``k x k`` upper-triangular factor from the incremental Givens QR.
    g : numpy.ndarray
        The rotated right-hand side (length ``k`` or ``k+1``; only the first
        ``k`` entries are used by the triangular solve).
    policy : LeastSquaresPolicy or str
        Which of the three policies to apply.
    tol : float, optional
        Truncation tolerance for the rank-revealing solves.
    H : numpy.ndarray, optional
        The full ``(k+1) x k`` Hessenberg matrix.  When provided, the
        rank-revealing policy solves the original problem
        ``min ||H y - beta e1||`` directly (equivalent in exact arithmetic to
        solving with ``R``; the paper applies the technique to ``R`` after
        the Givens rotations, which is what happens when ``H`` is omitted).
    beta : float, optional
        Initial residual norm, required when ``H`` is given.

    Returns
    -------
    y : numpy.ndarray
        The update coefficients (length ``k``).
    info : dict
        Diagnostics: ``{"policy", "fallback", "rank", "finite"}`` where
        ``fallback`` is True when the HYBRID policy had to switch to the
        rank-revealing solve.
    """
    policy = LeastSquaresPolicy.coerce(policy)
    R = np.asarray(R, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64).ravel()
    k = R.shape[1]
    rhs = g[:k]
    info = {"policy": policy.value, "fallback": False, "rank": k, "finite": True}

    if policy is LeastSquaresPolicy.STANDARD:
        y = solve_triangular(R, rhs)
        info["finite"] = bool(np.all(np.isfinite(y)))
        return y, info

    if policy is LeastSquaresPolicy.HYBRID:
        y = solve_triangular(R, rhs)
        if np.all(np.isfinite(y)):
            return y, info
        info["fallback"] = True
        y, rank = _rank_revealing_dispatch(R, rhs, H, beta, tol)
        info["rank"] = rank
        info["finite"] = bool(np.all(np.isfinite(y)))
        return y, info

    # RANK_REVEALING
    y, rank = _rank_revealing_dispatch(R, rhs, H, beta, tol)
    info["rank"] = rank
    info["finite"] = bool(np.all(np.isfinite(y)))
    return y, info


def _rank_revealing_dispatch(R, rhs, H, beta, tol) -> tuple[np.ndarray, int]:
    """Solve rank-revealing either on the triangular factor or the full H."""
    if H is not None:
        if beta is None:
            raise ValueError("beta must be provided when solving with the full Hessenberg matrix")
        e1 = np.zeros(H.shape[0], dtype=np.float64)
        e1[0] = float(beta)
        return solve_rank_revealing(H, e1, tol=tol)
    return solve_rank_revealing(R, rhs, tol=tol)
