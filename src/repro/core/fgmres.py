"""Flexible GMRES (FGMRES) — Algorithm 2 of the paper (after Saad 1993).

FGMRES allows the preconditioner to change every iteration, which is what
makes the inner–outer FT-GMRES construction possible: a *faulty* inner solve
is simply "a different preconditioner".  Two additions relative to standard
GMRES matter for fault tolerance and are implemented here:

* the solution update is formed from the ``Z`` basis (the preconditioned
  vectors ``z_j = M_j^{-1} q_j``), not from ``Q``;
* when the subdiagonal entry ``h_{j+1,j}`` is (numerically) zero the solver
  must distinguish a happy breakdown from a rank-deficient projected matrix
  (Saad's Proposition 2.2): the paper's "trichotomy".  We check the rank of
  ``H(1:j,1:j)`` with a small SVD and report ``RANK_DEFICIENT`` loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.detectors import Detector
from repro.core.hessenberg import HessenbergMatrix
from repro.core.least_squares import LeastSquaresPolicy
from repro.core.status import ConvergenceHistory, SolverResult, SolverStatus
from repro.registry import resolve_detector
from repro.sparse.linear_operator import LinearOperator, aslinearoperator
from repro.utils.events import EventLog
from repro.utils.validation import as_dense_vector, check_square

__all__ = ["FGMRESParameters", "fgmres"]

#: Relative threshold below which ``h_{j+1,j}`` triggers the breakdown logic.
BREAKDOWN_TOL = 1e-12


@dataclass
class FGMRESParameters:
    """Bundled options for the outer FGMRES iteration.

    Attributes mirror the keyword arguments of :func:`fgmres`.
    """

    tol: float = 1e-8
    max_outer: int = 50
    orthogonalization: str = "mgs"
    lsq_policy: LeastSquaresPolicy | str = LeastSquaresPolicy.RANK_REVEALING
    lsq_tol: float | None = None
    rank_tol: float | None = None
    detector: Detector | str | None = None
    detector_response: str = "flag"
    bound_method: str = "frobenius"
    injector: object | None = None

    def replace(self, **changes) -> "FGMRESParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def fgmres(
    A,
    b,
    inner_solver: Callable[[np.ndarray, int], np.ndarray] | None = None,
    x0=None,
    *,
    tol: float = 1e-8,
    max_outer: int = 50,
    orthogonalization: str = "mgs",
    lsq_policy=LeastSquaresPolicy.RANK_REVEALING,
    lsq_tol: float | None = None,
    rank_tol: float | None = None,
    detector: Detector | str | None = None,
    detector_response: str = "flag",
    bound_method: str = "frobenius",
    injector=None,
    events: EventLog | None = None,
    inner_callback: Callable[[int, np.ndarray, np.ndarray], None] | None = None,
) -> SolverResult:
    """Solve ``A x = b`` with Flexible GMRES.

    Parameters
    ----------
    A : matrix or operator
        System operator.
    b : array_like
        Right-hand side.
    inner_solver : callable, optional
        The per-iteration preconditioner: ``inner_solver(q_j, j)`` returns
        ``z_j ≈ A^{-1} q_j``.  It may be a full iterative solve (FT-GMRES),
        a stationary preconditioner's ``apply``, or ``None`` (identity, in
        which case FGMRES reduces to plain GMRES).
    x0 : array_like, optional
        Initial guess.
    tol : float
        Relative convergence tolerance on ``||b - A x|| / ||b||``.
    max_outer : int
        Maximum number of outer iterations (also the Krylov dimension: the
        outer iteration is not restarted, matching the paper's setup).
    orthogonalization : {"mgs", "cgs", "cgs2"}
        Orthogonalization of the *outer* basis (always executed reliably).
    lsq_policy : LeastSquaresPolicy or str
        Policy for the projected least-squares solve.  The paper recommends
        the rank-revealing policy for the fault-tolerant outer solver, which
        is therefore the default here (plain GMRES defaults to STANDARD).
    lsq_tol : float, optional
        Truncation tolerance for the rank-revealing least-squares solve.
    rank_tol : float, optional
        Tolerance for the rank test in the breakdown trichotomy.
    detector : Detector, registry spec, or None
        Invariant detector for the *outer* Hessenberg entries.  String/dict
        specs (``"bound"``, ``"bound:two_norm"``) resolve through
        :mod:`repro.registry` against ``A``.  Note that the
        outer bound involves ``||A z_j||`` rather than ``||A||`` because
        ``z_j`` is not a unit vector; when a detector is supplied here it is
        applied to ``h_ij / ||z_j||`` so the paper's bound still applies.
    detector_response : str
        Response policy for outer detections (same vocabulary as GMRES).
    bound_method : {"frobenius", "two_norm", "exact"}
        Norm used when ``detector`` is a spec that computes a bound from ``A``.
    injector : FaultInjector, optional
        Fault injector consulted at the outer iteration's named sites:
        ``"spmv"`` (operator product), ``"hessenberg"`` (each
        orthogonalization coefficient), ``"orth"`` (orthogonalized
        un-normalized vector), ``"subdiag"`` (subdiagonal norm) and
        ``"givens"`` (rotation coefficients).  The outer iteration here is
        both the outer and the aggregate coordinate of the schedule context.
        FT-GMRES deliberately does **not** pass its injector here — its outer
        solver is the reliable phase — so this is for standalone FGMRES
        fault studies.  ``None`` (the default) keeps the hook-free fast path.
    events : EventLog, EventSink, or callable, optional
        Event destination (any :class:`~repro.results.events.EventSink`
        streams the events as they are recorded).
    inner_callback : callable, optional
        ``inner_callback(j, q_j, z_j)`` invoked after every inner solve;
        used by FT-GMRES to harvest inner results.

    Returns
    -------
    SolverResult
        ``iterations`` counts outer iterations.
    """
    op: LinearOperator = aslinearoperator(A)
    n = check_square(op.shape, "A")
    b = as_dense_vector(b, n, "b")
    x = as_dense_vector(x0, n, "x0") if x0 is not None else np.zeros(n, dtype=np.float64)
    if max_outer <= 0:
        raise ValueError(f"max_outer must be positive, got {max_outer}")
    max_outer = min(max_outer, n)
    policy = LeastSquaresPolicy.coerce(lsq_policy)
    if orthogonalization not in ("mgs", "cgs", "cgs2"):
        raise ValueError(f"unknown orthogonalization {orthogonalization!r}")
    detector = resolve_detector(detector, A=A, bound_method=bound_method)

    events = EventLog.ensure(events)
    history = ConvergenceHistory()

    # Outer-iteration injection helpers.  The outer iteration j doubles as
    # the aggregate coordinate: a standalone FGMRES solve has no inner
    # iterations, so schedules addressed in aggregate terms fire at outer
    # step j.  Both helpers are None on the fault-free path, which performs
    # the identical floating-point operations with no hook overhead.
    _inj_scalar = _inj_vector = None
    if injector is not None:
        def _inj_scalar(site, value, j, mgs_index=-1, mgs_length=0):
            corrupted = injector.corrupt_scalar(
                site, value, outer_iteration=j, inner_solve_index=-1,
                inner_iteration=j, aggregate_inner_iteration=j,
                mgs_index=mgs_index, mgs_length=mgs_length,
            )
            if corrupted != value and not (np.isnan(corrupted) and np.isnan(value)):
                events.record(
                    "fault_injected", where=site, outer_iteration=j,
                    inner_iteration=j, original=float(value),
                    corrupted=float(corrupted), mgs_index=mgs_index,
                    aggregate_inner_iteration=j,
                )
            return float(corrupted)

        def _inj_vector(site, vec, j):
            corrupted = injector.corrupt_vector(
                site, vec, outer_iteration=j, inner_solve_index=-1,
                inner_iteration=j, aggregate_inner_iteration=j,
                mgs_index=-1, mgs_length=0,
            )
            if corrupted is not vec and not np.array_equal(corrupted, vec, equal_nan=True):
                events.record(
                    "fault_injected", where=site, outer_iteration=j,
                    inner_iteration=j, aggregate_inner_iteration=j,
                )
                return corrupted
            return vec

    norm_b = float(np.linalg.norm(b))
    target = tol * norm_b if norm_b > 0.0 else tol

    r = b - op.matvec(x)
    matvecs = 1
    beta = float(np.linalg.norm(r))
    history.append(beta)
    if beta <= target:
        return SolverResult(x, SolverStatus.CONVERGED, 0, beta, history, events, matvecs)

    # Fortran order: basis columns are the unit of access in the
    # orthogonalization and update kernels, so keep them contiguous.
    Q = np.zeros((n, max_outer + 1), dtype=np.float64, order="F")
    Z = np.zeros((n, max_outer), dtype=np.float64, order="F")
    Q[:, 0] = r / beta
    hess = HessenbergMatrix(max_outer, beta)

    status = SolverStatus.MAX_ITERATIONS
    k = 0
    for j in range(max_outer):
        q_j = Q[:, j]
        # ----- inner solve (the "apply current preconditioner" step) -------
        if inner_solver is None:
            z_j = q_j.copy()
        else:
            z_j = np.asarray(inner_solver(q_j, j), dtype=np.float64).ravel()
            if z_j.shape[0] != n:
                raise ValueError(
                    f"inner solver returned a vector of length {z_j.shape[0]}, expected {n}"
                )
        # The sandbox model promises only that the inner solve returns
        # *something*; a non-finite result would poison the reliable outer
        # phase, so the outer solver screens it (this is "computing the
        # residual reliably" in sandbox terms).
        if not np.all(np.isfinite(z_j)):
            events.record("inner_result_nonfinite", where="inner_solve", outer_iteration=j)
            z_j = np.nan_to_num(z_j, nan=0.0, posinf=0.0, neginf=0.0)
        Z[:, j] = z_j
        events.record("inner_solve_complete", where="inner_solve", outer_iteration=j)
        if inner_callback is not None:
            inner_callback(j, q_j, z_j)

        # ----- reliable operator application and orthogonalization ---------
        v = op.matvec(z_j)
        matvecs += 1
        if _inj_vector is not None:
            v = _inj_vector("spmv", v, j)
        z_norm = float(np.linalg.norm(z_j))
        h_col = np.zeros(j + 2, dtype=np.float64)
        # With no detector or injector attached the per-coefficient hooks are
        # pure overhead (they return the value unchanged), so the common
        # failure-free configuration skips them entirely — mirroring the
        # no-hook Arnoldi branch.  Both branches perform the identical
        # floating-point operations (asserted bit-for-bit in the tests).
        if orthogonalization == "mgs":
            w = v.copy()
            if detector is None and injector is None:
                for i in range(j + 1):
                    h = float(np.dot(Q[:, i], w))
                    h_col[i] = h
                    w -= h * Q[:, i]
            else:
                for i in range(j + 1):
                    h = float(np.dot(Q[:, i], w))
                    if _inj_scalar is not None:
                        h = _inj_scalar("hessenberg", h, j, mgs_index=i, mgs_length=j + 1)
                    h = _screen_outer(h, z_norm, detector, detector_response, events, j, i)
                    h_col[i] = h
                    w -= h * Q[:, i]
        else:
            passes = 2 if orthogonalization == "cgs2" else 1
            w = v.copy()
            for _ in range(passes):
                coeffs = Q[:, : j + 1].T @ w
                if detector is not None or injector is not None:
                    for i in range(j + 1):
                        h = float(coeffs[i])
                        if _inj_scalar is not None:
                            h = _inj_scalar("hessenberg", h, j, mgs_index=i, mgs_length=j + 1)
                        coeffs[i] = _screen_outer(h, z_norm, detector,
                                                  detector_response, events, j, i)
                w = w - Q[:, : j + 1] @ coeffs
                h_col[: j + 1] += coeffs

        if _inj_vector is not None:
            w = _inj_vector("orth", w, j)
        h_sub = float(np.linalg.norm(w))
        if _inj_scalar is not None:
            h_sub = _inj_scalar("subdiag", h_sub, j, mgs_index=j + 1, mgs_length=j + 2)
        h_col[j + 1] = h_sub
        givens_hook = None
        if _inj_scalar is not None:
            def givens_hook(c, s, _j=j):
                c = _inj_scalar("givens", c, _j, mgs_index=0, mgs_length=2)
                s = _inj_scalar("givens", s, _j, mgs_index=1, mgs_length=2)
                return c, s
        resid_est = hess.add_column(h_col, givens_hook=givens_hook)
        k = j + 1
        history.append(resid_est)

        # ----- breakdown trichotomy (Section VI-C) --------------------------
        scale = max(float(np.abs(h_col[: j + 1]).max()) if j + 1 > 0 else 0.0, 1.0)
        if h_sub <= BREAKDOWN_TOL * scale:
            if hess.is_rank_deficient(tol=rank_tol):
                events.record("rank_deficient", where="hessenberg", outer_iteration=j,
                              smallest_singular_value=hess.smallest_singular_value())
                status = SolverStatus.RANK_DEFICIENT
            else:
                events.record("happy_breakdown", where="hessenberg", outer_iteration=j)
                status = SolverStatus.HAPPY_BREAKDOWN
            break

        Q[:, j + 1] = w / h_sub

        if np.isfinite(resid_est) and resid_est <= target:
            status = SolverStatus.CONVERGED
            break

    # ----- solution update from the flexible basis Z ------------------------
    if k > 0:
        y, lsq_info = hess.solve_y(policy=policy, tol=lsq_tol)
        if lsq_info.get("fallback"):
            events.record("lsq_fallback", where="least_squares", outer_iteration=k)
        x = x + Z[:, :k] @ y

    r = b - op.matvec(x)
    matvecs += 1
    residual_norm = float(np.linalg.norm(r))

    if status is SolverStatus.MAX_ITERATIONS and residual_norm <= target:
        status = SolverStatus.CONVERGED
    if status is SolverStatus.RANK_DEFICIENT:
        events.record("failure_reported", where="fgmres", outer_iteration=k)

    return SolverResult(
        x=x,
        status=status,
        iterations=k,
        residual_norm=residual_norm,
        history=history,
        events=events,
        matvecs=matvecs,
    )


def _screen_outer(h: float, z_norm: float, detector: Detector | None, response: str,
                  events: EventLog, outer_iteration: int, mgs_index: int) -> float:
    """Apply the (optional) detector to an outer Hessenberg coefficient.

    The outer coefficients satisfy ``|h_ij| <= ||A z_j||_2 <= ||A||_2 ||z_j||``,
    so the paper's unit-vector bound applies to ``h / ||z_j||``.
    """
    if detector is None:
        return h
    scaled = h / z_norm if z_norm > 0.0 else h
    verdict = detector.check_scalar(scaled, site="outer_hessenberg")
    if not verdict.flagged:
        return h
    events.record("fault_detected", where="outer_hessenberg", outer_iteration=outer_iteration,
                  mgs_index=mgs_index, response=response,
                  **{**verdict.event_data(), "value": h})
    if response == "zero":
        return 0.0
    if response == "clamp":
        bound = verdict.bound * z_norm if np.isfinite(verdict.bound) else 0.0
        return float(np.sign(h) * bound) if np.isfinite(h) else 0.0
    if response == "raise":
        from repro.core.exceptions import FaultDetectedError

        raise FaultDetectedError(verdict)
    # "flag" and "recompute" (nothing to recompute reliably here) keep the value.
    return h
