"""Typed, frozen, JSON-round-trippable configuration specs.

This module is the declarative half of the public API: a solve or a whole
fault campaign is described by plain data — :class:`SolveSpec`,
:class:`ExecutionSpec`, :class:`CampaignSpec` — that serializes to JSON
(``to_dict``/``to_json``), deserializes with validation
(``from_dict``/``from_json``), and resolves to built components through
:mod:`repro.registry` only at execution time.  The imperative half lives in
:mod:`repro.api` (``solve``/``run_campaign``).

The specs *subsume* the legacy parameter bundles: :meth:`SolveSpec.to_ftgmres_parameters`
and friends produce exactly the ``GMRESParameters``/``FGMRESParameters``/
``FTGMRESParameters`` the solvers have always consumed, so the spec-driven
path and the legacy keyword path execute identically (asserted bit-for-bit
in the equivalence suite).

Validation errors are :class:`SpecError` (a ``ValueError``) and always name
the offending field, including its dotted path inside nested specs
(``"solver.inner.maxiter"``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping, TypeVar

_SpecT = TypeVar("_SpecT", bound="_SpecBase")

__all__ = [
    "SpecError",
    "SolveSpec",
    "ExecutionSpec",
    "CampaignSpec",
    "ServiceSpec",
    "apply_overrides",
    "parse_override_value",
    "spec_hash",
    "SOLVER_METHODS",
    "ORTHOGONALIZATIONS",
    "DETECTOR_RESPONSES",
    "BOUND_METHODS",
    "LSQ_POLICIES",
    "MGS_POSITIONS",
    "FAULT_PERSISTENCES",
]

#: Valid values of the enum-like spec fields (the execution layer re-derives
#: its behavior from these same vocabularies, so they cannot drift).
SOLVER_METHODS = ("gmres", "fgmres", "ft_gmres", "cg")
ORTHOGONALIZATIONS = ("mgs", "cgs", "cgs2")
DETECTOR_RESPONSES = ("flag", "zero", "clamp", "recompute", "raise")
BOUND_METHODS = ("frobenius", "two_norm", "exact")
LSQ_POLICIES = ("standard", "hybrid", "rank_revealing")
MGS_POSITIONS = ("first", "last")
FAULT_PERSISTENCES = ("transient", "sticky", "persistent")


class SpecError(ValueError):
    """A spec validation failure, carrying the offending field's dotted path."""

    def __init__(self, field_path: str, message: str) -> None:
        self.field = field_path
        super().__init__(f"{field_path}: {message}")


# ---------------------------------------------------------------------- #
# validation helpers
# ---------------------------------------------------------------------- #
def _check_choice(field_path: str, value: Any, choices: Iterable[Any], *,
                  allow_none: bool = False) -> Any:
    if value is None and allow_none:
        return None
    if value not in choices:
        raise SpecError(field_path, f"expected one of {list(choices)}, got {value!r}")
    return value


def _check_int(field_path: str, value: Any, *, minimum: int | None = None,
               allow_none: bool = False) -> int | None:
    if value is None and allow_none:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(field_path, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SpecError(field_path, f"must be >= {minimum}, got {value}")
    return value


def _check_float(field_path: str, value: Any, *, minimum: float | None = None,
                 allow_none: bool = False) -> float | None:
    if value is None and allow_none:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(field_path, f"expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise SpecError(field_path, f"must be >= {minimum}, got {value}")
    return value


def _check_component(field_path: str, value: Any, *,
                     allow_none: bool = True) -> Any:
    """A component spec field: string, dict-with-name, built instance, or None."""
    if value is None:
        if not allow_none:
            raise SpecError(field_path, "may not be null")
        return None
    if isinstance(value, str):
        if not value.strip():
            raise SpecError(field_path, "component name may not be empty")
        return value
    if isinstance(value, dict):
        if "name" not in value:
            raise SpecError(field_path,
                            f"dict component spec needs a 'name' key, got {sorted(value)}")
        return dict(value)
    # Built instances (Preconditioner, Detector, ...) pass through; they are
    # resolved by identity and serialized via their ``to_spec`` method.
    return value


def _jsonable_component(field_path: str, value: Any) -> Any:
    """Serialize a component field: specs verbatim, instances via ``to_spec``."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {k: _jsonable_component(f"{field_path}.{k}", v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable_component(f"{field_path}[{i}]", v) for i, v in enumerate(value)]
    to_spec = getattr(value, "to_spec", None)
    if to_spec is not None:
        return to_spec()
    raise SpecError(field_path,
                    f"{type(value).__name__} instance is not JSON-serializable "
                    f"(it has no to_spec()); use a string/dict component spec instead")


def _reject_unknown_keys(cls: type, data: Mapping[str, Any],
                         prefix: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        path = f"{prefix}{unknown[0]}" if prefix else unknown[0]
        raise SpecError(path,
                        f"unknown field (valid fields of {cls.__name__}: {sorted(known)})")


def _field_default(cls: type, name: str) -> Any:
    for f in fields(cls):
        if f.name == name:
            return (f.default_factory() if f.default_factory is not dataclasses.MISSING
                    else f.default)
    raise AttributeError(f"{cls.__name__} has no field {name!r}")  # pragma: no cover


def _construct_with_prefix(cls: Callable[..., _SpecT], data: Mapping[str, Any],
                           prefix: str) -> _SpecT:
    """Instantiate a spec, re-raising SpecErrors with the dotted prefix."""
    try:
        return cls(**data)
    except SpecError as exc:
        if prefix and not exc.field.startswith(prefix):
            raise SpecError(f"{prefix}{exc.field}",
                            str(exc).split(": ", 1)[1]) from None
        raise


class _SpecBase:
    """Shared JSON plumbing for the frozen spec dataclasses."""

    def replace(self: _SpecT, **changes: Any) -> _SpecT:
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)  # type: ignore[type-var]

    def to_json(self, *, indent: int | None = 2) -> str:
        """The spec as a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_dict(self) -> dict[str, Any]:  # overridden by every subclass
        raise NotImplementedError  # pragma: no cover

    @classmethod
    def from_dict(cls, data: dict) -> "_SpecBase":  # overridden by subclasses
        raise NotImplementedError  # pragma: no cover

    @classmethod
    def from_json(cls, text: str) -> "_SpecBase":
        """Parse a spec from a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(cls.__name__.lower(), f"invalid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise SpecError(cls.__name__.lower(),
                            f"expected a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)

    def _compact_dict(self, *, skip: Iterable[str] = ()) -> dict[str, Any]:
        """Fields that differ from the class defaults, JSON-ready.

        Keeping serialized specs *compact* (defaults omitted) makes config
        files diffable and keeps ``from_dict(to_dict(spec)) == spec`` exact:
        omitted fields re-fill with the same defaults they were compared to.
        """
        out = {}
        for f in fields(self):
            if f.name in skip:
                continue
            value = getattr(self, f.name)
            default = (f.default_factory() if f.default_factory is not dataclasses.MISSING
                       else f.default)
            if value == default:
                continue
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            else:
                value = _jsonable_component(f.name, value)
            out[f.name] = value
        return out


# ---------------------------------------------------------------------- #
# SolveSpec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveSpec(_SpecBase):
    """Declarative configuration of one linear solve.

    One spec type covers all the solver families (``method`` selects among
    the registered solvers: ``"gmres"``, ``"fgmres"``, ``"ft_gmres"``,
    ``"cg"``); fields that do not apply to the chosen method must stay at
    their defaults (validated, with the offending field named).

    Component fields (``preconditioner``, ``detector``) hold registry specs —
    strings like ``"ilu0"`` / ``"bound:two_norm"`` or dicts like
    ``{"name": "ssor", "omega": 1.2}`` — or, for in-code use, already-built
    instances (these pass through by identity but are only JSON-serializable
    when they implement ``to_spec()``).

    ``inner`` nests the inner-solve spec of the nested ``"ft_gmres"`` method
    (default: the paper's fixed 25-iteration unconverged GMRES).
    """

    method: str = "gmres"
    tol: float = 1e-8
    maxiter: int | None = None
    restart: int | None = None
    max_outer: int | None = None
    preconditioner: Any = None
    orthogonalization: str = "mgs"
    lsq_policy: str | None = None
    lsq_tol: float | None = None
    rank_tol: float | None = None
    detector: Any = None
    #: ``None`` means "the solver's default" (``"flag"``); keeping the unset
    #: state distinct lets campaign composition honor an explicit ``"flag"``.
    detector_response: str | None = None
    bound_method: str = "frobenius"
    inner: "SolveSpec | None" = None

    def __post_init__(self) -> None:
        _check_choice("method", self.method, SOLVER_METHODS)
        _check_float("tol", self.tol, minimum=0.0)
        _check_int("maxiter", self.maxiter, minimum=1, allow_none=True)
        _check_int("restart", self.restart, minimum=1, allow_none=True)
        _check_int("max_outer", self.max_outer, minimum=1, allow_none=True)
        _check_component("preconditioner", self.preconditioner)
        _check_choice("orthogonalization", self.orthogonalization, ORTHOGONALIZATIONS)
        _check_choice("lsq_policy", self.lsq_policy, LSQ_POLICIES, allow_none=True)
        _check_float("lsq_tol", self.lsq_tol, minimum=0.0, allow_none=True)
        _check_float("rank_tol", self.rank_tol, minimum=0.0, allow_none=True)
        _check_component("detector", self.detector)
        _check_choice("detector_response", self.detector_response, DETECTOR_RESPONSES,
                      allow_none=True)
        _check_choice("bound_method", self.bound_method, BOUND_METHODS)

        if self.method == "gmres":
            self._forbid("max_outer", "rank_tol", "inner")
        elif self.method == "fgmres":
            self._forbid("restart", "maxiter", "preconditioner", "inner")
        elif self.method == "ft_gmres":
            self._forbid("restart", "maxiter", "preconditioner")
            if self.inner is not None:
                if not isinstance(self.inner, SolveSpec):
                    raise SpecError("inner", f"expected a SolveSpec or dict, "
                                             f"got {type(self.inner).__name__}")
                if self.inner.method != "gmres":
                    raise SpecError("inner.method",
                                    "the FT-GMRES inner solver is GMRES; "
                                    f"got {self.inner.method!r}")
        elif self.method == "cg":
            self._forbid("restart", "max_outer", "rank_tol", "inner",
                         "lsq_policy", "lsq_tol", "detector", "orthogonalization",
                         "detector_response", "bound_method")

    def _forbid(self, *names: str) -> None:
        for name in names:
            if getattr(self, name) != _field_default(SolveSpec, name):
                raise SpecError(name, f"does not apply to method {self.method!r}")

    # ------------------------------------------------------------------ #
    @classmethod
    def coerce(cls, spec: Any = None, **overrides: Any) -> "SolveSpec":
        """Build a SolveSpec from a spec, a dict, a method name, or kwargs."""
        if spec is None:
            return cls.from_dict(overrides) if overrides else cls()
        if isinstance(spec, cls):
            if isinstance(overrides.get("inner"), dict):
                overrides["inner"] = cls.from_dict(overrides["inner"], _prefix="inner.")
            return spec.replace(**overrides) if overrides else spec
        if isinstance(spec, str):
            return cls.from_dict({"method": spec, **overrides})
        if isinstance(spec, dict):
            return cls.from_dict({**spec, **overrides})
        raise SpecError("spec", f"expected a SolveSpec, dict, or method name, "
                                f"got {type(spec).__name__}")

    @classmethod
    def from_dict(cls, data: dict, *, _prefix: str = "") -> "SolveSpec":
        """Validated construction from a plain dict (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise SpecError(_prefix or "solve", f"expected a dict, got {type(data).__name__}")
        _reject_unknown_keys(cls, data, _prefix)
        data = dict(data)
        inner = data.get("inner")
        if isinstance(inner, dict):
            data["inner"] = cls.from_dict(inner, _prefix=f"{_prefix}inner.")
        return _construct_with_prefix(cls, data, _prefix)

    def to_dict(self) -> dict[str, Any]:
        """A compact JSON-ready dict (defaults omitted, ``method`` always kept)."""
        out = self._compact_dict()  # a non-default inner serializes recursively
        out["method"] = self.method
        return out

    # ------------------------------------------------------------------ #
    # conversions onto the legacy parameter bundles (the execution layer)
    # ------------------------------------------------------------------ #
    def gmres_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.core.gmres.gmres`."""
        assert self.method == "gmres", self.method
        return {
            "tol": self.tol,
            "maxiter": self.maxiter,
            "restart": self.restart,
            "preconditioner": self.preconditioner,
            "orthogonalization": self.orthogonalization,
            "lsq_policy": self.lsq_policy if self.lsq_policy is not None else "standard",
            "lsq_tol": self.lsq_tol,
            "detector": self.detector,
            "detector_response": (self.detector_response
                                  if self.detector_response is not None else "flag"),
            "bound_method": self.bound_method,
        }

    def fgmres_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.core.fgmres.fgmres`."""
        assert self.method in ("fgmres", "ft_gmres"), self.method
        return {
            "tol": self.tol,
            "max_outer": self.max_outer if self.max_outer is not None else _FGMRES_MAX_OUTER,
            "orthogonalization": self.orthogonalization,
            "lsq_policy": (self.lsq_policy if self.lsq_policy is not None
                           else "rank_revealing"),
            "lsq_tol": self.lsq_tol,
            "rank_tol": self.rank_tol,
            "detector": self.detector,
            "detector_response": (self.detector_response
                                  if self.detector_response is not None else "flag"),
            "bound_method": self.bound_method,
        }

    def cg_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.baselines.cg.cg`."""
        assert self.method == "cg", self.method
        return {"tol": self.tol, "maxiter": self.maxiter,
                "preconditioner": self.preconditioner}

    def to_gmres_parameters(self):
        """The equivalent legacy :class:`~repro.core.gmres.GMRESParameters`."""
        from repro.core.gmres import GMRESParameters

        kwargs = self.gmres_kwargs()
        return GMRESParameters(**kwargs)

    def to_fgmres_parameters(self):
        """The equivalent legacy :class:`~repro.core.fgmres.FGMRESParameters`.

        When ``max_outer`` is unset the default depends on the method, just
        like the legacy bundles: a plain ``fgmres`` spec gets the
        ``FGMRESParameters`` default (50); an ``ft_gmres`` spec's outer
        iteration gets the ``FTGMRESParameters`` default (100).
        """
        from repro.core.fgmres import FGMRESParameters

        kwargs = self.fgmres_kwargs()
        if self.max_outer is None and self.method == "ft_gmres":
            kwargs["max_outer"] = _FTGMRES_MAX_OUTER
        return FGMRESParameters(**kwargs)

    def to_ftgmres_parameters(self):
        """The equivalent legacy :class:`~repro.core.ftgmres.FTGMRESParameters`."""
        from repro.core.ftgmres import FTGMRESParameters

        assert self.method == "ft_gmres", self.method
        inner_spec = self.inner if self.inner is not None else _PAPER_INNER
        return FTGMRESParameters(outer=self.to_fgmres_parameters(),
                                 inner=inner_spec.to_gmres_parameters())


#: Method-specific fallback defaults mirrored from the legacy dataclasses.
_FGMRES_MAX_OUTER = 50    # FGMRESParameters.max_outer default
_FTGMRES_MAX_OUTER = 100  # FTGMRESParameters' outer default
#: The paper's inner solve: fixed 25 GMRES iterations, no convergence test.
_PAPER_INNER = SolveSpec(method="gmres", tol=0.0, maxiter=25)


# ---------------------------------------------------------------------- #
# ExecutionSpec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionSpec(_SpecBase):
    """How a campaign's independent trials are scheduled.

    ``backend=None`` auto-selects (``"batched"`` when ``batch_size`` is set,
    ``"sharded"`` when ``shards`` is set, ``"process"`` when ``workers > 1``,
    else ``"serial"``).  Knob/backend combinations are validated *up front*
    — ``batch_size`` only applies to the batched backend, ``workers``/
    ``chunksize`` only to the pool backends, ``shards``/``max_retries``/
    ``heartbeat_interval`` only to the sharded supervisor — with errors that
    say which knob to drop or which backend to pick (see
    :func:`repro.exec.executor.validate_backend_knobs`).

    ``kernels`` selects the sparse kernel tier (``"numpy"``/``"scipy"``/
    ``"numba"``/``"auto"``; see :mod:`repro.sparse.kernels`).  Like every
    other execution knob it is excluded from the campaign fingerprint —
    runs checkpoint/resume across tiers — and it sits at the bottom of the
    selection precedence ``spec < REPRO_KERNELS < explicit flag``.
    """

    backend: str | None = None
    workers: int | None = None
    chunksize: int | None = None
    batch_size: int | None = None
    kernels: str | None = None
    #: Per-trial time budget in seconds.  Enforcement depends on the backend:
    #: the ``sharded`` supervisor (and the ``process`` backend, which routes
    #: through it whenever a timeout is set) *hard*-enforces the budget —
    #: a worker whose current trial exceeds it is SIGKILL-ed and the trial
    #: recorded as ``status="error"`` — while ``serial``/``thread``/
    #: ``batched`` only apply the soft after-the-fact check from PR 7 (the
    #: solve is never interrupted mid-flight, so a stuck kernel still wedges
    #: those backends).  Like every execution knob it is excluded from the
    #: campaign fingerprint.
    trial_timeout: float | None = None
    #: Shard (worker-process) count for the ``sharded`` backend.  Setting it
    #: with ``backend=None`` auto-selects ``"sharded"``.
    shards: int | None = None
    #: How many times a trial may crash its sharded worker before it is
    #: quarantined as a poison ``"error"`` record (sharded backend only).
    max_retries: int | None = None
    #: Seconds between supervisor liveness polls of the shard heartbeat
    #: files (sharded backend only).
    heartbeat_interval: float | None = None

    def __post_init__(self) -> None:
        from repro.exec.executor import BACKENDS, validate_backend_knobs
        from repro.sparse.kernels import KERNEL_CHOICES

        _check_choice("backend", self.backend, BACKENDS, allow_none=True)
        _check_int("workers", self.workers, minimum=0, allow_none=True)
        _check_int("chunksize", self.chunksize, minimum=1, allow_none=True)
        _check_int("batch_size", self.batch_size, minimum=1, allow_none=True)
        _check_choice("kernels", self.kernels, KERNEL_CHOICES, allow_none=True)
        _check_float("trial_timeout", self.trial_timeout, minimum=0.0, allow_none=True)
        if self.trial_timeout is not None and self.trial_timeout <= 0.0:
            raise SpecError("trial_timeout", f"must be > 0, got {self.trial_timeout}")
        _check_int("shards", self.shards, minimum=1, allow_none=True)
        _check_int("max_retries", self.max_retries, minimum=1, allow_none=True)
        _check_float("heartbeat_interval", self.heartbeat_interval,
                     minimum=0.0, allow_none=True)
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0.0:
            raise SpecError("heartbeat_interval",
                            f"must be > 0, got {self.heartbeat_interval}")
        try:
            validate_backend_knobs(self.backend, workers=self.workers,
                                   chunksize=self.chunksize,
                                   batch_size=self.batch_size,
                                   shards=self.shards,
                                   max_retries=self.max_retries,
                                   heartbeat_interval=self.heartbeat_interval)
        except ValueError as exc:
            if isinstance(exc, SpecError):
                raise
            raise SpecError("backend", str(exc)) from None

    @classmethod
    def from_dict(cls, data: dict, *, _prefix: str = "") -> "ExecutionSpec":
        if not isinstance(data, dict):
            raise SpecError(_prefix or "exec", f"expected a dict, got {type(data).__name__}")
        _reject_unknown_keys(cls, data, _prefix)
        return _construct_with_prefix(cls, data, _prefix)

    def to_dict(self) -> dict[str, Any]:
        return self._compact_dict()

    def executor_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :class:`repro.exec.executor.CampaignExecutor`."""
        return {"backend": self.backend, "workers": self.workers,
                "chunksize": self.chunksize, "batch_size": self.batch_size,
                "shards": self.shards, "max_retries": self.max_retries,
                "heartbeat_interval": self.heartbeat_interval}


# ---------------------------------------------------------------------- #
# CampaignSpec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignSpec(_SpecBase):
    """Declarative configuration of a whole fault-injection campaign.

    The field defaults here are *the* campaign defaults: both
    :class:`~repro.faults.campaign.FaultCampaign` and
    :func:`~repro.faults.campaign.sweep_injection_locations` derive their
    keyword defaults from this class, so the numbers cannot drift apart.

    ``problem`` is a gallery spec (``"poisson:30"``,
    ``{"name": "circuit", "n_nodes": 800}``) or ``None`` when the problem
    object is supplied in code.  ``solver`` optionally overrides the nested
    solver's base configuration (a :class:`SolveSpec` of method
    ``"ft_gmres"``); the campaign-level fields (``inner_iterations``,
    ``max_outer``, ``outer_tol``, ``detector``, ``detector_response``)
    always win over it, exactly like the legacy
    ``inner_params``/``outer_params`` arguments they generalize.
    """

    problem: Any = None
    inner_iterations: int = 25
    max_outer: int = 100
    outer_tol: float = 1e-8
    fault_classes: Any = "paper"
    mgs_position: str = "first"
    detector: Any = None
    detector_response: str = "zero"
    site: str = "hessenberg"
    #: Rate-based injection: ``None`` keeps the paper's one-fault-per-trial
    #: location sweep; an integer ``k`` switches every trial to a
    #: :class:`~repro.faults.schedule.FaultRateSchedule` firing ``k`` faults
    #: per nested solve, anchored at the trial's sweep location.
    fault_rate: int | None = None
    #: How long the injected "hardware" fault lasts at each scheduled point
    #: (``"transient"``/``"sticky"``/``"persistent"``; per-site windows).
    fault_persistence: str = "transient"
    stride: int = 1
    locations: tuple | None = None
    solver: SolveSpec | None = None
    exec: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        _check_component("problem", self.problem)
        _check_int("inner_iterations", self.inner_iterations, minimum=1)
        _check_int("max_outer", self.max_outer, minimum=1)
        _check_float("outer_tol", self.outer_tol, minimum=0.0)
        if not (self.fault_classes == "paper" or isinstance(self.fault_classes, dict)):
            raise SpecError("fault_classes",
                            f"expected 'paper' or a dict of label -> fault-model "
                            f"spec, got {self.fault_classes!r}")
        _check_choice("mgs_position", self.mgs_position, MGS_POSITIONS)
        _check_component("detector", self.detector)
        _check_choice("detector_response", self.detector_response, DETECTOR_RESPONSES)
        if not isinstance(self.site, str) or not self.site:
            raise SpecError("site", f"expected a non-empty string, got {self.site!r}")
        from repro.faults.schedule import KNOWN_SITES

        for part in self.site.split(","):
            name = part.strip()
            if name != "*" and name not in KNOWN_SITES:
                raise SpecError("site",
                                f"unknown injection site {name!r}; expected one of "
                                f"{list(KNOWN_SITES)}, '*', or a comma-separated list")
        _check_int("fault_rate", self.fault_rate, minimum=1, allow_none=True)
        _check_choice("fault_persistence", self.fault_persistence, FAULT_PERSISTENCES)
        _check_int("stride", self.stride, minimum=1)
        if self.locations is not None:
            if not isinstance(self.locations, (list, tuple)):
                raise SpecError("locations",
                                f"expected a list of integers, got "
                                f"{type(self.locations).__name__}")
            locs = tuple(_check_int(f"locations[{i}]", loc, minimum=0)
                         for i, loc in enumerate(self.locations))
            object.__setattr__(self, "locations", locs)
        if self.solver is not None:
            if not isinstance(self.solver, SolveSpec):
                raise SpecError("solver", f"expected a SolveSpec or dict, "
                                          f"got {type(self.solver).__name__}")
            if self.solver.method != "ft_gmres":
                raise SpecError("solver.method",
                                "campaigns run the nested FT-GMRES solver; "
                                f"got {self.solver.method!r}")
        if not isinstance(self.exec, ExecutionSpec):
            raise SpecError("exec", f"expected an ExecutionSpec or dict, "
                                    f"got {type(self.exec).__name__}")

    # ------------------------------------------------------------------ #
    @classmethod
    def coerce(cls, spec: Any = None, **overrides: Any) -> "CampaignSpec":
        """Build a CampaignSpec from a spec, a dict, or keyword fields."""
        if spec is None:
            return cls.from_dict(overrides) if overrides else cls()
        if isinstance(spec, cls):
            if isinstance(overrides.get("solver"), dict):
                overrides["solver"] = SolveSpec.from_dict(overrides["solver"],
                                                          _prefix="solver.")
            if isinstance(overrides.get("exec"), dict):
                overrides["exec"] = ExecutionSpec.from_dict(overrides["exec"],
                                                            _prefix="exec.")
            if isinstance(overrides.get("locations"), list):
                overrides["locations"] = tuple(overrides["locations"])
            return spec.replace(**overrides) if overrides else spec
        if isinstance(spec, dict):
            return cls.from_dict({**spec, **overrides})
        raise SpecError("spec", f"expected a CampaignSpec or dict, "
                                f"got {type(spec).__name__}")

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Validated construction from a plain dict (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise SpecError("campaign", f"expected a dict, got {type(data).__name__}")
        _reject_unknown_keys(cls, data, "")
        data = dict(data)
        solver = data.get("solver")
        if isinstance(solver, dict):
            data["solver"] = SolveSpec.from_dict(solver, _prefix="solver.")
        execution = data.get("exec")
        if isinstance(execution, dict):
            data["exec"] = ExecutionSpec.from_dict(execution, _prefix="exec.")
        if isinstance(data.get("locations"), list):
            data["locations"] = tuple(data["locations"])
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """A compact JSON-ready dict (defaults omitted)."""
        out = self._compact_dict(skip=("fault_classes",))
        if self.fault_classes != "paper":
            out["fault_classes"] = {
                str(label): _jsonable_component(f"fault_classes[{label!r}]", model)
                for label, model in self.fault_classes.items()
            }
        return out

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CampaignSpec":
        """Read a campaign spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            spec = cls.from_json(handle.read())
            assert isinstance(spec, CampaignSpec)
            return spec

    def dump(self, path: str | os.PathLike) -> None:
        """Write the campaign spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


# ---------------------------------------------------------------------- #
# ServiceSpec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServiceSpec(_SpecBase):
    """Configuration of the long-running campaign service (``repro serve``).

    The service (:mod:`repro.service`) binds an HTTP/JSONL API to
    ``host:port`` (``port=0`` binds an ephemeral port; the bound address is
    recorded in ``<store>/_jobs/daemon.json``), runs at most ``max_jobs``
    campaigns concurrently, and polls its scheduler every ``poll_interval``
    seconds.  On shutdown (SIGTERM/SIGINT) running campaigns get
    ``drain_grace`` seconds to drain at a trial boundary before they are
    killed; either way their jobs re-queue and a restarted daemon resumes
    exactly the missing trials.

    Like every execution-layer knob, none of these fields participate in
    job or campaign fingerprints.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    max_jobs: int = 2
    poll_interval: float = 0.05
    drain_grace: float = 10.0

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host.strip():
            raise SpecError("host", f"expected a non-empty string, got {self.host!r}")
        _check_int("port", self.port, minimum=0)
        if self.port > 65535:
            raise SpecError("port", f"must be <= 65535, got {self.port}")
        _check_int("max_jobs", self.max_jobs, minimum=1)
        _check_float("poll_interval", self.poll_interval, minimum=0.0)
        if self.poll_interval <= 0.0:
            raise SpecError("poll_interval", f"must be > 0, got {self.poll_interval}")
        _check_float("drain_grace", self.drain_grace, minimum=0.0)

    @classmethod
    def coerce(cls, spec: Any = None, **overrides: Any) -> "ServiceSpec":
        """Build a ServiceSpec from a spec, a dict, or keyword fields."""
        if spec is None:
            return cls.from_dict(overrides) if overrides else cls()
        if isinstance(spec, cls):
            return spec.replace(**overrides) if overrides else spec
        if isinstance(spec, dict):
            return cls.from_dict({**spec, **overrides})
        raise SpecError("service", f"expected a ServiceSpec or dict, "
                                   f"got {type(spec).__name__}")

    @classmethod
    def from_dict(cls, data: dict, *, _prefix: str = "") -> "ServiceSpec":
        if not isinstance(data, dict):
            raise SpecError(_prefix or "service",
                            f"expected a dict, got {type(data).__name__}")
        _reject_unknown_keys(cls, data, _prefix)
        return _construct_with_prefix(cls, data, _prefix)

    def to_dict(self) -> dict[str, Any]:
        return self._compact_dict()


# ---------------------------------------------------------------------- #
# provenance hashing
# ---------------------------------------------------------------------- #
def spec_hash(spec: Any) -> str:
    """A short stable hash identifying a spec (or any JSON-able dict).

    The hash is over the *canonical* JSON form (compact ``to_dict`` output,
    keys sorted), so two specs that compare equal hash equal regardless of
    how they were written down.  Used as the provenance stamp on results and
    as the resume-compatibility check of the run store.
    """
    import hashlib

    data = spec.to_dict() if hasattr(spec, "to_dict") else spec
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# dotted-path overrides (the CLI's --set)
# ---------------------------------------------------------------------- #
def parse_override_value(text: str) -> Any:
    """Parse a ``--set`` value: JSON literal when possible, else the raw string.

    ``--set exec.backend=batched`` needs no quoting (``batched`` is not valid
    JSON, so the raw string survives); ``--set solver.inner.maxiter=25``
    parses as an integer; ``--set detector=null`` clears a field.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def apply_overrides(spec: _SpecT, assignments: Mapping[str, Any]) -> _SpecT:
    """Apply ``{"dotted.path": value}`` overrides to a (frozen) spec tree.

    Each dotted path names a field, descending through nested specs
    (``exec.backend``, ``solver.inner.maxiter``).  Intermediate specs that
    are ``None`` are created with their defaults so a path like
    ``solver.inner.maxiter`` works on a spec that never mentioned a solver.
    Returns a new spec; raises :class:`SpecError` naming the bad segment.
    """
    for path, value in assignments.items():
        spec = _apply_one(spec, path.split("."), path, value)
    return spec


#: Default constructors for nested spec fields that may be None.
_NESTED_DEFAULTS = {
    ("CampaignSpec", "solver"): lambda: SolveSpec(method="ft_gmres"),
    ("CampaignSpec", "exec"): ExecutionSpec,
    ("SolveSpec", "inner"): lambda: _PAPER_INNER,
}


def _apply_one(spec: Any, segments: list[str], full_path: str,
               value: Any) -> Any:
    name = segments[0]
    if not dataclasses.is_dataclass(spec):
        raise SpecError(full_path, f"cannot descend into {type(spec).__name__}")
    if name not in {f.name for f in fields(spec)}:
        raise SpecError(full_path,
                        f"{type(spec).__name__} has no field {name!r} "
                        f"(valid: {sorted(f.name for f in fields(spec))})")
    if len(segments) == 1:
        if isinstance(value, list):
            value = tuple(value)
        return spec.replace(**{name: value})
    child = getattr(spec, name)
    if child is None:
        factory = _NESTED_DEFAULTS.get((type(spec).__name__, name))
        if factory is None:
            raise SpecError(full_path, f"{name!r} is not a nested spec")
        child = factory()
    new_child = _apply_one(child, segments[1:], full_path, value)
    return spec.replace(**{name: new_child})
