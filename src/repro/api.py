"""The config-first public API: ``solve`` and ``run_campaign``.

Two facades cover the library's whole execution surface:

* :func:`solve` — one linear solve, any registered solver family
  (``gmres``, ``fgmres``, ``ft_gmres``, ``cg``), configured by a
  :class:`~repro.specs.SolveSpec` (or an equivalent dict / keyword set);
* :func:`run_campaign` — a whole fault-injection campaign, configured by a
  :class:`~repro.specs.CampaignSpec`, scheduled over any execution backend.

Both consume *specs*: frozen, validated, JSON-round-trippable configuration
objects whose component fields (preconditioner, detector, fault models,
gallery problem, backend) resolve through :mod:`repro.registry`.  Both
return results sharing the common ``to_dict()``/``summary()`` schema
(:class:`~repro.core.status.SolverResult`,
:class:`~repro.core.status.NestedSolverResult`,
:class:`~repro.faults.campaign.TrialRecord`,
:class:`~repro.faults.campaign.CampaignResult`).

The facades are thin by design: they delegate to the same legacy entry
points (``gmres``/``fgmres``/``ft_gmres``/``FaultCampaign``) users have
always called, so a spec-driven solve is bit-identical to the equivalent
keyword call (asserted in the equivalence suite).

>>> from repro import api
>>> from repro.gallery.problems import poisson_problem
>>> p = poisson_problem(10)
>>> result = api.solve(p.A, p.b, {"method": "gmres", "tol": 1e-10,
...                               "preconditioner": "jacobi"})
>>> result.summary()["converged"]
True
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.status import NestedSolverResult, SolverResult
from repro.faults.campaign import CampaignResult, FaultCampaign, TrialRecord
from repro.registry import ResolveContext, registry, resolve_problem, resolve_sink
from repro.results.events import ensure_sink
from repro.results.query import TrialQuery
from repro.results.store import RunManifest, RunStore, RunStoreError
from repro.specs import (CampaignSpec, ExecutionSpec, ServiceSpec, SolveSpec,
                         SpecError)

__all__ = [
    "solve",
    "run_campaign",
    "iter_trials",
    "serve",
    "SolveSpec",
    "ExecutionSpec",
    "CampaignSpec",
    "ServiceSpec",
    "SpecError",
    "SolverResult",
    "NestedSolverResult",
    "TrialRecord",
    "CampaignResult",
    "TrialQuery",
    "RunStore",
    "RunStoreError",
]


def solve(A: Any, b: Any, spec: Any = None, *, x0: Any = None,
          injector: Any = None, events: Any = None,
          **overrides: Any) -> SolverResult | NestedSolverResult:
    """Solve ``A x = b`` as described by a solve spec.

    Parameters
    ----------
    A : matrix or operator
        The system operator.
    b : array_like
        Right-hand side.
    spec : SolveSpec, dict, or str, optional
        The solve configuration.  A string is a solver method name
        (``"gmres"``, ``"ft_gmres"``, ...); a dict is validated through
        :meth:`SolveSpec.from_dict`; ``None`` uses the defaults.
    x0 : array_like, optional
        Initial guess.
    injector : FaultInjector, optional
        Fault injector (``gmres`` and the ``ft_gmres`` inner solves only).
    events : EventLog, optional
        Event sink shared with the caller.
    **overrides
        Individual :class:`SolveSpec` fields overriding ``spec``, e.g.
        ``solve(A, b, "ft_gmres", tol=1e-10, detector="bound")``.

    Returns
    -------
    SolverResult or NestedSolverResult
        ``ft_gmres`` returns the nested result; everything else the flat
        one.  Both expose the common ``summary()``/``to_dict()`` schema.
    """
    spec = SolveSpec.coerce(spec, **overrides)
    entry = registry.entry("solver", spec.method)
    return entry.factory(ResolveContext(A=A), A=A, b=b, x0=x0, spec=spec,
                         injector=injector, events=events)


def run_campaign(problem: Any = None, spec: Any = None, *,
                 progress: Callable[[int, int], None] | None = None,
                 sink: Any = None, store: Any = None,
                 run_id: str | None = None, resume: bool = False,
                 chaos: Any = None, **overrides: Any) -> CampaignResult:
    """Run a fault-injection campaign as described by a campaign spec.

    Parameters
    ----------
    problem : TestProblem, str, or dict, optional
        The system to sweep: a built problem, or a gallery registry spec
        (``"poisson:30"``, ``{"name": "circuit", "n_nodes": 800}``).  May be
        omitted when ``spec.problem`` carries the gallery spec instead —
        a campaign defined purely as a JSON file runs with
        ``run_campaign(spec=CampaignSpec.load(path))``.
    spec : CampaignSpec or dict, optional
        The campaign configuration (defaults: the paper's).
    progress : callable, optional
        ``progress(done, total)`` callback (thin adapter over the event bus).
    sink : EventSink, callable, or registered sink spec, optional
        Receives campaign lifecycle events as the campaign runs
        (``"jsonl:runs/"``, ``"console"``, a
        :class:`~repro.results.events.CollectingSink`, ...).
    store : RunStore or path, optional
        Persist the run: every completed trial is appended to
        ``<store>/<run_id>/trials.jsonl`` (flushed per trial), under a
        manifest carrying the full spec, its hash, the problem seed, and the
        repro version.  A crash at trial N loses at most the trial being
        written.
    run_id : str, optional
        Name of the stored run.  Defaults to
        ``"<problem name>-<fingerprint8>"`` — deterministic in (spec,
        problem), so a rerun of the same campaign finds its own store entry.
    resume : bool
        Continue an interrupted stored run: verifies the spec fingerprint,
        recovers a torn JSONL tail, re-runs only the missing trials, and
        returns the merged result — trial-identical to an uninterrupted run
        (the batched backend per its documented 1e-10 residual contract).
        A resumed run that is already complete returns immediately with
        zero new solves.  ``resume=True`` on a run that does not exist yet
        simply starts it.
    chaos : ChaosPolicy, optional
        Infrastructure fault injection for the supervised backends
        (``"sharded"``, and ``"process"`` with a ``trial_timeout``) — test
        and CI instrumentation that kills/hangs shard workers and tears
        store appends (see :mod:`repro.faults.chaos`).  Ignored by the
        unsupervised backends.

    Returns
    -------
    CampaignResult
        Trials in canonical order for every backend (common
        ``to_dict()``/``summary()`` schema), stamped with provenance
        (``repro_version``, ``seed``, ``spec_hash``).
    """
    spec = CampaignSpec.coerce(spec, **overrides)
    if problem is not None and not hasattr(problem, "A"):
        problem = resolve_problem(problem)
    campaign = FaultCampaign.from_spec(spec, problem=problem)
    # A sink built here from a registered spec is owned here and closed on
    # the way out; caller-supplied instances stay the caller's to close.
    owns_sink = isinstance(sink, (str, dict, tuple))
    sink = ensure_sink(resolve_sink(sink))
    try:
        if store is None:
            if resume or run_id is not None:
                raise RunStoreError("resume=/run_id= require store=")
            return campaign.run(
                locations=(list(spec.locations) if spec.locations is not None
                           else None),
                stride=spec.stride,
                progress=progress,
                sink=sink,
                chaos=chaos,
                **spec.exec.executor_kwargs(),
            )
        return _run_stored_campaign(campaign, spec, RunStore.coerce(store),
                                    run_id=run_id, resume=resume,
                                    progress=progress, sink=sink, chaos=chaos)
    finally:
        if owns_sink and sink is not None:
            sink.close()


def iter_trials(problem: Any = None, spec: Any = None,
                **overrides: Any) -> Iterator[TrialRecord]:
    """Stream a campaign's trial records as the backends complete them.

    A lazy generator over the serial backend (each record is yielded before
    the next trial starts); windowed over the thread/process/batched
    backends (records arrive per completed chunk/batch, in completion
    order).  Each record is provenance-stamped.  Closing the generator early
    shuts the execution backend down cleanly.

    Arguments are as for :func:`run_campaign` (minus the store/observer
    machinery — for persistent streaming, use ``run_campaign(store=...)``;
    for the full result object, use :func:`run_campaign`).

    Yields
    ------
    TrialRecord
    """
    spec = CampaignSpec.coerce(spec, **overrides)
    if problem is not None and not hasattr(problem, "A"):
        problem = resolve_problem(problem)
    campaign = FaultCampaign.from_spec(spec, problem=problem)
    plan = campaign.plan(
        locations=list(spec.locations) if spec.locations is not None else None,
        stride=spec.stride)
    exec_kwargs = spec.exec.executor_kwargs()
    for _, record in campaign.iter_records(plan.specs, **exec_kwargs):
        yield record


def serve(store: Any, spec: Any = None, **overrides: Any) -> int:
    """Run the campaign service daemon over a run store (blocking).

    The imperative facade of :mod:`repro.service`: accepts CampaignSpecs
    over HTTP/JSONL (``POST /jobs``), schedules up to ``max_jobs`` of them
    concurrently through :func:`run_campaign`'s store/resume path, and
    streams live events to subscribers.  ``spec`` is a
    :class:`~repro.specs.ServiceSpec` (or dict / keyword fields — ``host``,
    ``port``, ``max_jobs``, ``poll_interval``, ``drain_grace``).

    Blocks until stopped (SIGTERM/SIGINT drains running campaigns and
    re-queues them for the next daemon); returns the process exit status.
    Equivalent to the ``repro serve`` CLI subcommand.
    """
    from repro.service.server import ServiceDaemon

    return ServiceDaemon(RunStore.coerce(store),
                         ServiceSpec.coerce(spec, **overrides)).serve()


# ---------------------------------------------------------------------- #
# store-backed execution (checkpoint / resume)
# ---------------------------------------------------------------------- #
def _run_stored_campaign(campaign: FaultCampaign, spec: CampaignSpec,
                         store: RunStore, *, run_id: str | None, resume: bool,
                         progress: Callable[[int, int], None] | None,
                         sink: Any, chaos: Any = None) -> CampaignResult:
    """Execute a campaign with trial-granularity checkpointing in a store."""
    fingerprint = campaign.provenance["spec_hash"]
    if run_id is None:
        run_id = f"{campaign.problem.name}-{fingerprint[:8]}"

    completed: list[tuple[int, Any]] = []
    if resume and store.exists(run_id):
        manifest = store.manifest(run_id)
        if manifest.spec_hash != fingerprint:
            raise RunStoreError(
                f"run {run_id!r} was produced by a different campaign "
                f"(stored spec hash {manifest.spec_hash}, this campaign "
                f"{fingerprint}); choose another run_id")
        recovered = store.recover(run_id)  # also truncates torn tails
        # Error-supersede dedupe per index, then drop error records (worker
        # crash, timeout, poison): those indices count as *not done*, so the
        # resumed run re-executes exactly the casualties.  The re-run's
        # record supersedes the stored error record on read — in either
        # file order, since a resume may land the new record in a
        # lower-numbered shard than the stale error.
        completed = [(index, record)
                     for index, record in store._latest_records(run_id, recovered)
                     if getattr(record, "status", None) != "error"]
        plan = campaign.plan(
            locations=manifest.locations,
            baseline=(manifest.failure_free_outer,
                      manifest.failure_free_residual))
    else:
        if store.exists(run_id):
            raise RunStoreError(
                f"run {run_id!r} already exists in {store.root}; pass "
                f"resume=True to continue it or choose another run_id")
        plan = campaign.plan(
            locations=list(spec.locations) if spec.locations is not None else None,
            stride=spec.stride)
        manifest = RunManifest(
            run_id=run_id,
            spec=spec.replace(problem=None).to_dict(),
            spec_hash=fingerprint,
            problem_name=campaign.problem.name,
            repro_version=campaign.provenance["repro_version"],
            seed=campaign.provenance["seed"],
            mgs_position=campaign.mgs_position,
            inner_iterations=campaign.inner_iterations,
            detector_enabled=campaign.detector is not None,
            failure_free_outer=plan.failure_free_outer,
            failure_free_residual=plan.failure_free_residual,
            locations=list(plan.locations),
            fault_classes=list(campaign.fault_classes),
            total_trials=len(plan.specs),
            created_at=_utc_now(),
        )

    done_indices = {index for index, _ in completed}
    remaining = [s for s in plan.specs if s.index not in done_indices]

    sharded = (spec.exec.backend == "sharded" or
               (spec.exec.backend is None and spec.exec.shards is not None))
    if remaining and sharded:
        # Supervised execution: the shard workers persist their own records
        # durably (crash-survivably) into <run>/shard-<k>/ — a flat writer
        # here would double-store every trial.  The manifest still goes
        # down first so an interrupted run can identify itself on resume.
        store.write_manifest(manifest, resume=bool(completed) or resume)
        result = campaign.run_plan(
            plan, specs=remaining, progress=progress, sink=sink,
            completed=completed, event_data={"run_id": run_id},
            run_dir=store.run_path(run_id), chaos=chaos,
            on_supervisor_state=lambda state: store.update_manifest_extra(
                run_id, supervisor=state),
            **spec.exec.executor_kwargs())
    elif remaining:
        writer = store.create_run(manifest, resume=bool(completed) or resume)
        try:
            result = campaign.run_plan(
                plan, specs=remaining, progress=progress, sink=sink,
                # Persist first, observe second (run_plan's contract): an
                # interrupt raised by a sink never loses a completed trial.
                on_record=writer.append, completed=completed,
                event_data={"run_id": run_id}, chaos=chaos,
                **spec.exec.executor_kwargs())
        finally:
            writer.close()
    else:
        if not store.exists(run_id):
            # A zero-trial campaign still persists its manifest.
            store.create_run(manifest, resume=resume).close()
        result = campaign.run_plan(plan, specs=(), progress=progress,
                                   sink=sink, completed=completed,
                                   event_data={"run_id": run_id})
    store.finalize(run_id)
    # Compact shard directories into the flat layout now that the run is
    # complete (a no-op for unsharded runs); an interrupted run never gets
    # here, so its shard files stay put for resume.
    store.merge_shards(run_id)
    return result


def _utc_now() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
