"""The config-first public API: ``solve`` and ``run_campaign``.

Two facades cover the library's whole execution surface:

* :func:`solve` — one linear solve, any registered solver family
  (``gmres``, ``fgmres``, ``ft_gmres``, ``cg``), configured by a
  :class:`~repro.specs.SolveSpec` (or an equivalent dict / keyword set);
* :func:`run_campaign` — a whole fault-injection campaign, configured by a
  :class:`~repro.specs.CampaignSpec`, scheduled over any execution backend.

Both consume *specs*: frozen, validated, JSON-round-trippable configuration
objects whose component fields (preconditioner, detector, fault models,
gallery problem, backend) resolve through :mod:`repro.registry`.  Both
return results sharing the common ``to_dict()``/``summary()`` schema
(:class:`~repro.core.status.SolverResult`,
:class:`~repro.core.status.NestedSolverResult`,
:class:`~repro.faults.campaign.TrialRecord`,
:class:`~repro.faults.campaign.CampaignResult`).

The facades are thin by design: they delegate to the same legacy entry
points (``gmres``/``fgmres``/``ft_gmres``/``FaultCampaign``) users have
always called, so a spec-driven solve is bit-identical to the equivalent
keyword call (asserted in the equivalence suite).

>>> from repro import api
>>> from repro.gallery.problems import poisson_problem
>>> p = poisson_problem(10)
>>> result = api.solve(p.A, p.b, {"method": "gmres", "tol": 1e-10,
...                               "preconditioner": "jacobi"})
>>> result.summary()["converged"]
True
"""

from __future__ import annotations

from repro.core.status import NestedSolverResult, SolverResult
from repro.faults.campaign import CampaignResult, FaultCampaign, TrialRecord
from repro.registry import ResolveContext, registry, resolve_problem
from repro.specs import CampaignSpec, ExecutionSpec, SolveSpec, SpecError

__all__ = [
    "solve",
    "run_campaign",
    "SolveSpec",
    "ExecutionSpec",
    "CampaignSpec",
    "SpecError",
    "SolverResult",
    "NestedSolverResult",
    "TrialRecord",
    "CampaignResult",
]


def solve(A, b, spec=None, *, x0=None, injector=None, events=None, **overrides):
    """Solve ``A x = b`` as described by a solve spec.

    Parameters
    ----------
    A : matrix or operator
        The system operator.
    b : array_like
        Right-hand side.
    spec : SolveSpec, dict, or str, optional
        The solve configuration.  A string is a solver method name
        (``"gmres"``, ``"ft_gmres"``, ...); a dict is validated through
        :meth:`SolveSpec.from_dict`; ``None`` uses the defaults.
    x0 : array_like, optional
        Initial guess.
    injector : FaultInjector, optional
        Fault injector (``gmres`` and the ``ft_gmres`` inner solves only).
    events : EventLog, optional
        Event sink shared with the caller.
    **overrides
        Individual :class:`SolveSpec` fields overriding ``spec``, e.g.
        ``solve(A, b, "ft_gmres", tol=1e-10, detector="bound")``.

    Returns
    -------
    SolverResult or NestedSolverResult
        ``ft_gmres`` returns the nested result; everything else the flat
        one.  Both expose the common ``summary()``/``to_dict()`` schema.
    """
    spec = SolveSpec.coerce(spec, **overrides)
    entry = registry.entry("solver", spec.method)
    return entry.factory(ResolveContext(A=A), A=A, b=b, x0=x0, spec=spec,
                         injector=injector, events=events)


def run_campaign(problem=None, spec=None, *, progress=None, **overrides) -> CampaignResult:
    """Run a fault-injection campaign as described by a campaign spec.

    Parameters
    ----------
    problem : TestProblem, str, or dict, optional
        The system to sweep: a built problem, or a gallery registry spec
        (``"poisson:30"``, ``{"name": "circuit", "n_nodes": 800}``).  May be
        omitted when ``spec.problem`` carries the gallery spec instead —
        a campaign defined purely as a JSON file runs with
        ``run_campaign(spec=CampaignSpec.load(path))``.
    spec : CampaignSpec or dict, optional
        The campaign configuration (defaults: the paper's).
    progress : callable, optional
        ``progress(done, total)`` callback, forwarded to the executor.
    **overrides
        Individual :class:`CampaignSpec` fields overriding ``spec``, e.g.
        ``run_campaign(problem, stride=5, detector="bound")``.

    Returns
    -------
    CampaignResult
        Trials in canonical order for every backend (common
        ``to_dict()``/``summary()`` schema).
    """
    spec = CampaignSpec.coerce(spec, **overrides)
    if problem is not None and not hasattr(problem, "A"):
        problem = resolve_problem(problem)
    campaign = FaultCampaign.from_spec(spec, problem=problem)
    return campaign.run(
        locations=list(spec.locations) if spec.locations is not None else None,
        stride=spec.stride,
        progress=progress,
        **spec.exec.executor_kwargs(),
    )
