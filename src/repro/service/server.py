"""The ``repro serve`` daemon: HTTP/JSONL API over the run store.

Stdlib only (:mod:`http.server` + :mod:`socketserver`): a
``ThreadingHTTPServer`` answers requests from a background thread while the
:class:`~repro.service.scheduler.CampaignScheduler` ticks in the main
thread.  All state lives in the store — job records under ``_jobs/``, trial
results in the ordinary run layout — so the daemon itself is disposable:
SIGKILL it, restart it, and every job resumes from its persisted trials.

Endpoints
---------
====== ========================  =============================================
POST   ``/jobs``                 submit a CampaignSpec (JSON body); 201 on a
                                 new job, 200 when deduped onto an existing
                                 one (job_id = campaign fingerprint)
GET    ``/jobs``                 list all jobs with live trial progress
GET    ``/jobs/<id>``            one job record
DELETE ``/jobs/<id>``            request cancel (SIGTERM drain at a trial
                                 boundary); 202, idempotent
GET    ``/jobs/<id>/result``     the completed CampaignResult (409 until
                                 the job completes)
GET    ``/jobs/<id>/events``     chunked JSONL stream: full replay of the
                                 run's events, then live tail until the job
                                 is terminal
GET    ``/events``               chunked JSONL stream of job lifecycle
                                 updates (the daemon's broadcast bus)
GET    ``/health``               daemon liveness + job-state counts
====== ========================  =============================================

Shutdown: SIGTERM/SIGINT drains every running campaign at a trial boundary
(via the workers' cooperative handler or the sharded supervisor's
``SupervisorDrained`` path), re-queues their jobs, removes the pidfile, and
re-delivers the signal so the process exits with the conventional nonzero
status (143 for SIGTERM) — the same idiom as the supervisor.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.results.events import Event
from repro.results.store import RunStore, RunStoreError
from repro.service.scheduler import (
    TERMINAL_STATES,
    CampaignScheduler,
    JobError,
    JobStore,
    register_fork_cleanup,
)
from repro.service.streams import BroadcastSink, run_events_path, tail_jsonl
from repro.specs import CampaignSpec, ServiceSpec, SpecError
from repro.utils.io import atomic_write_json

__all__ = ["ServiceDaemon", "ServiceStartupError", "DAEMON_FILE", "read_daemon_info"]

#: The daemon pidfile inside ``<store>/_jobs/`` — existence + a live pid is
#: the single-daemon-per-store guard, and its ``port`` field is how clients
#: (and tests binding port 0) discover the bound address.
DAEMON_FILE = "daemon.json"

_JOB_PATH_RE = re.compile(r"^/jobs/([A-Za-z0-9._-]+)(/events|/result)?$")


class ServiceStartupError(RuntimeError):
    """The daemon cannot start (another daemon owns the store, bind failed)."""


def read_daemon_info(store) -> dict | None:
    """The running daemon's ``{pid, host, port, ...}`` for a store, if any."""
    path = os.path.join(RunStore.coerce(store).root, "_jobs", DAEMON_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


class ServiceDaemon:
    """The long-running campaign service bound to one run store."""

    def __init__(self, store, spec: ServiceSpec | dict | None = None, **overrides):
        self.store = RunStore.coerce(store)
        self.spec = ServiceSpec.coerce(spec, **overrides)
        self.jobs = JobStore(self.store)
        self.bus = BroadcastSink()
        self.scheduler = CampaignScheduler(
            self.jobs, max_jobs=self.spec.max_jobs,
            drain_grace=self.spec.drain_grace, on_update=self._publish)
        self.httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._signalled: int | None = None
        self._old_handlers: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    def _publish(self, record) -> None:
        self.bus.emit(Event(kind="job_update", where="service",
                            data=record.to_dict()))

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real port)."""
        if self.httpd is None:
            return (self.spec.host, self.spec.port)
        return self.httpd.server_address[:2]

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit (thread/signal safe)."""
        self._stop.set()

    def job_progress(self, run_id: str) -> dict | None:
        """Live ``{"trials_done", "total_trials"}`` of a job's run, if started."""
        try:
            if not self.store.exists(run_id):
                return None
            manifest = self.store.manifest(run_id)
            done = len(self.store.completed_indices(run_id))
        except RunStoreError:
            return None
        return {"trials_done": done, "total_trials": manifest.total_trials}

    # ------------------------------------------------------------------ #
    def _daemon_path(self) -> str:
        return os.path.join(self.jobs.dir, DAEMON_FILE)

    def _claim_store(self) -> None:
        info = read_daemon_info(self.store)
        if info and info.get("pid"):
            try:
                os.kill(int(info["pid"]), 0)
            except (OSError, ValueError):
                pass  # stale pidfile from a killed daemon; take over
            else:
                raise ServiceStartupError(
                    f"another daemon (pid {info['pid']}) already serves "
                    f"{self.store.root} on "
                    f"http://{info.get('host')}:{info.get('port')}")

    def _write_daemon_info(self) -> None:
        host, port = self.address
        atomic_write_json(self._daemon_path(),
                          {"pid": os.getpid(), "host": host, "port": port,
                           "max_jobs": self.spec.max_jobs,
                           "version": __version__,
                           "started_at": time.time()},
                          indent=2)

    def _remove_daemon_info(self) -> None:
        info = read_daemon_info(self.store)
        if info is None or info.get("pid") == os.getpid():
            try:
                os.remove(self._daemon_path())
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def _start_http(self) -> None:
        handler = type("BoundServiceHandler", (_ServiceHandler,),
                       {"daemon": self})
        try:
            self.httpd = ThreadingHTTPServer((self.spec.host, self.spec.port),
                                             handler)
        except OSError as exc:
            raise ServiceStartupError(
                f"cannot bind {self.spec.host}:{self.spec.port}: {exc}") from None
        self.httpd.daemon_threads = True
        # Forked campaign workers must not hold the listening socket open —
        # an orphan (daemon SIGKILLed) would block the restarted daemon's
        # bind.  The registry is fork-copied, so the child closes its copy.
        register_fork_cleanup(self.httpd.socket.close)
        self._http_thread = threading.Thread(target=self.httpd.serve_forever,
                                             name="repro-serve-http",
                                             daemon=True)
        self._http_thread.start()

    def _install_handlers(self) -> None:
        def _on_signal(signum, frame):
            self._signalled = signum
            self._stop.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._old_handlers[signum] = signal.signal(signum, _on_signal)
            except ValueError:  # not the main thread (embedded use)
                pass

    def _restore_handlers(self) -> None:
        for signum, old in self._old_handlers.items():
            try:
                signal.signal(signum, old)
            except (ValueError, TypeError):
                pass
        self._old_handlers.clear()

    # ------------------------------------------------------------------ #
    def serve(self, *, quiet: bool = False) -> int:
        """Run the daemon until stopped; returns the process exit status.

        Blocking.  On SIGTERM/SIGINT the signal is re-delivered after the
        drain, so callers normally never see the return; embedded users
        (tests) can :meth:`request_stop` and get 0 back.
        """
        self._claim_store()
        self._install_handlers()
        try:
            self._start_http()
            self._write_daemon_info()
            host, port = self.address
            if not quiet:
                print(f"[repro serve] listening on http://{host}:{port} "
                      f"(store {self.store.root}, max_jobs "
                      f"{self.spec.max_jobs})", flush=True)
            self.scheduler.recover()
            while not self._stop.is_set():
                self.scheduler.tick()
                self._stop.wait(self.spec.poll_interval)
            drained = self.scheduler.drain()
            if not quiet:
                print(f"[repro serve] drained {drained} running job(s); "
                      f"shutting down", flush=True)
        finally:
            if self.httpd is not None:
                self.httpd.shutdown()
                self.httpd.server_close()
            self.bus.close()
            self._remove_daemon_info()
            self._restore_handlers()
            if self._signalled is not None:
                os.kill(os.getpid(), self._signalled)
        return 0


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes one HTTP connection; ``daemon`` is bound per-server by type()."""

    daemon: ServiceDaemon = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon's own prints are the log; per-request noise is not

    # ------------------------------------------------------------------ #
    def _json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.close_connection = True
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _stream_start(self) -> None:
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _stream_line(self, payload: dict) -> None:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()

    def _stream_end(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:
        try:
            if self.path == "/health":
                counts = Counter(r.status for r in self.daemon.jobs.list())
                self._json(200, {"status": "ok", "version": __version__,
                                 "store": self.daemon.store.root,
                                 "max_jobs": self.daemon.spec.max_jobs,
                                 "jobs": dict(counts)})
            elif self.path == "/jobs":
                rows = []
                for record in self.daemon.jobs.list():
                    row = record.to_dict()
                    row["progress"] = self.daemon.job_progress(record.run_id)
                    rows.append(row)
                self._json(200, {"jobs": rows})
            elif self.path == "/events":
                self._stream_bus()
            elif match := _JOB_PATH_RE.match(self.path):
                job_id, tail = match.group(1), match.group(2)
                record = self.daemon.jobs.read(job_id)
                if tail is None:
                    row = record.to_dict()
                    row["progress"] = self.daemon.job_progress(record.run_id)
                    self._json(200, row)
                elif tail == "/result":
                    self._send_result(record)
                else:
                    self._stream_job_events(record)
            else:
                self._error(404, f"no such endpoint: GET {self.path}")
        except JobError as exc:
            self._error(404, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_POST(self) -> None:
        if self.path != "/jobs":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            try:
                data = json.loads(self.rfile.read(length) or b"null")
            except json.JSONDecodeError as exc:
                self._error(400, f"request body is not valid JSON: {exc}")
                return
            if not isinstance(data, dict):
                self._error(400, "request body must be a CampaignSpec JSON "
                                 "object")
                return
            try:
                spec = CampaignSpec.from_dict(data)
                record, created = self.daemon.jobs.submit(spec)
            except SpecError as exc:
                self._error(400, str(exc))
                return
            self.daemon._publish(record)
            self._json(201 if created else 200, record.to_dict())
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_DELETE(self) -> None:
        match = _JOB_PATH_RE.match(self.path)
        if not match or match.group(2) is not None:
            self._error(404, f"no such endpoint: DELETE {self.path}")
            return
        try:
            record = self.daemon.jobs.request_cancel(match.group(1))
        except JobError as exc:
            self._error(404, str(exc))
            return
        try:
            code = 200 if record.terminal else 202
            self._json(code, record.to_dict())
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    # ------------------------------------------------------------------ #
    def _send_result(self, record) -> None:
        if record.status != "completed":
            self._error(409, f"job {record.job_id} is {record.status}; "
                             f"its result is available once it completes")
            return
        try:
            result = self.daemon.store.load_result(record.run_id)
        except RunStoreError as exc:
            self._error(500, f"stored run is unreadable: {exc}")
            return
        self._json(200, {"job": record.to_dict(), "result": result.to_dict()})

    def _stream_job_events(self, record) -> None:
        """Chunked JSONL: replay the run's events file, then tail it live."""
        daemon = self.daemon
        job_id = record.job_id
        path = run_events_path(daemon.store, record.run_id)

        def _terminal() -> bool:
            if daemon._stop.is_set():
                return True
            try:
                return daemon.jobs.read(job_id).status in TERMINAL_STATES
            except JobError:
                return True

        self._stream_start()
        try:
            for event in tail_jsonl(path, poll_interval=0.1, stop=_terminal):
                self._stream_line(event)
            final = daemon.jobs.read(job_id).to_dict()
            final["progress"] = daemon.job_progress(record.run_id)
            self._stream_line({"kind": "job_update", "where": "service",
                               "data": final})
            self._stream_end()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _stream_bus(self) -> None:
        """Chunked JSONL of live job-lifecycle updates (no replay)."""
        daemon = self.daemon
        sub = daemon.bus.subscribe()
        self._stream_start()
        try:
            while True:
                event = sub.get(timeout=0.25)
                if event is not None:
                    self._stream_line(event.to_dict())
                elif sub.closed or daemon._stop.is_set():
                    break
            self._stream_line({"kind": "stream_closed", "where": "service",
                               "data": {"dropped": sub.dropped}})
            self._stream_end()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        finally:
            sub.close()
