"""The long-running campaign service (``repro serve``).

A scheduler + HTTP/JSONL API layered on the existing machinery: campaign
specs and fingerprints (:mod:`repro.specs`), the durable run store and its
resume contract (:mod:`repro.results.store`), and the crash-isolated
execution backends up to the sharded supervisor (:mod:`repro.exec`).  The
daemon itself keeps no private state — jobs are content-addressed records
inside the store — so it can be SIGKILL-ed and restarted at any time and
every campaign resumes exactly its missing trials.

Layout:

* :mod:`repro.service.scheduler` — durable job records, the forked
  campaign workers, and the bounded FIFO scheduler.
* :mod:`repro.service.server` — the stdlib HTTP daemon and its endpoints.
* :mod:`repro.service.streams` — live event fan-out (file tailing + the
  in-process broadcast bus).
* :mod:`repro.service.client` — the urllib client and the CLI subcommands
  (``repro serve/submit/jobs/watch/cancel/result/runs``).
"""

from repro.service.client import (SERVICE_COMMANDS, ServiceClient,
                                  ServiceError, service_main)
from repro.service.scheduler import (JOB_STATES, TERMINAL_STATES,
                                     CampaignScheduler, JobError, JobRecord,
                                     JobStore, job_fingerprint)
from repro.service.server import (ServiceDaemon, ServiceStartupError,
                                  read_daemon_info)
from repro.service.streams import (BroadcastSink, Subscription,
                                   run_events_path, tail_jsonl)

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "SERVICE_COMMANDS",
    "BroadcastSink",
    "CampaignScheduler",
    "JobError",
    "JobRecord",
    "JobStore",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ServiceStartupError",
    "Subscription",
    "job_fingerprint",
    "read_daemon_info",
    "run_events_path",
    "service_main",
    "tail_jsonl",
]
