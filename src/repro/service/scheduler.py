"""Durable job queue + bounded campaign scheduler for ``repro serve``.

Job records live *inside the run store* at ``<root>/_jobs/<job_id>.json``
(the ``_jobs`` name cannot collide with run ids, which must start with an
alphanumeric).  Every record rewrite is atomic (tmp + ``os.replace``) and
every read-modify-write cycle happens under the store's cross-process
advisory lock (:class:`repro.results.store.StoreLock`), so concurrent HTTP
submissions, the scheduler thread, and the worker processes all serialize
onto consistent records.

Job identity is content-addressed: :func:`job_fingerprint` hashes the
CampaignSpec with its execution knobs normalized away, so two clients
POSTing the same campaign race to *one* job (and one stored run —
``run_id = "job-<fingerprint>"``), while different problems or physics get
different jobs.

Lifecycle::

    queued -> running -> completed
                      -> failed          (worker raised)
                      -> cancelled       (DELETE /jobs/<id> drained it)
             -> queued                   (daemon drained/restarted: resume)

Each running job is one forked worker process executing the campaign
through the ordinary ``run_campaign(store=, resume=True)`` path — including
the sharded supervisor when the spec asks for it — so worker crashes and
daemon restarts resume exactly the missing trials, never re-solving
completed ones (the store raises on duplicate successful records, so this
property is *checked*, not assumed).
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import signal
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.results.store import RunStore, StoreLock
from repro.specs import CampaignSpec, ExecutionSpec, SpecError, spec_hash
from repro.utils.io import atomic_write_json

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobError",
    "JobRecord",
    "JobStore",
    "CampaignScheduler",
    "job_fingerprint",
    "register_fork_cleanup",
]

JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")
TERMINAL_STATES = ("completed", "failed", "cancelled")

#: The store subdirectory holding job records and the daemon pidfile.
JOBS_DIR = "_jobs"
_JOB_FILE_RE = re.compile(r"^([0-9a-f]{16})\.json$")

# Drained-at-a-trial-boundary exit code, shared with the sharded supervisor.
from repro.exec.supervisor import EXIT_DRAINED, SupervisorDrained  # noqa: E402


class JobError(RuntimeError):
    """A job-store problem (unknown job, corrupt record, ...)."""


def _utc_now() -> str:
    import datetime

    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S.%fZ")


def job_fingerprint(spec: CampaignSpec) -> str:
    """The content-addressed job id of a campaign submission.

    Execution knobs are normalized away (``exec`` reset to defaults) so
    resubmitting the same campaign with different worker counts dedupes to
    the same job, but — unlike the run store's ``campaign_fingerprint`` —
    the ``problem`` field stays *in* the hash: the service builds the
    problem from the spec, so ``poisson:8`` and ``poisson:30`` must be
    different jobs.  A spec without a problem cannot run service-side.
    """
    spec = CampaignSpec.coerce(spec)
    if spec.problem is None:
        raise SpecError("problem",
                        "a service job needs an explicit problem spec "
                        "(e.g. \"poisson:30\"); problem=None only works "
                        "in-process where the caller passes the object")
    if not isinstance(spec.problem, (str, dict)):
        raise SpecError("problem",
                        "a service job needs a JSON problem spec (string or "
                        f"dict), got a built {type(spec.problem).__name__}")
    normalized = spec.replace(exec=ExecutionSpec())
    return spec_hash({"service_job": normalized.to_dict()})


@dataclass
class JobRecord:
    """One durable job: the submitted spec plus its scheduling state."""

    job_id: str
    spec: dict
    run_id: str
    status: str = "queued"
    created_at: str = ""
    started_at: str | None = None
    finished_at: str | None = None
    error: str | None = None
    pid: int | None = None
    #: How many times this spec was POSTed (dedupe accounting).
    submissions: int = 1
    #: Set by DELETE; the scheduler drains the worker and marks ``cancelled``.
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobError(f"unknown job record field {unknown[0]!r}")
        return cls(**data)


class JobStore:
    """The durable job index of one run store (``<root>/_jobs/``)."""

    def __init__(self, store) -> None:
        self.store = RunStore.coerce(store)
        self.dir = os.path.join(self.store.root, JOBS_DIR)
        os.makedirs(self.dir, exist_ok=True)

    def lock(self) -> StoreLock:
        """The advisory submission/transition lock (short-lived; per-op)."""
        return StoreLock(self.dir, name=".jobs.lock")

    def path(self, job_id: str) -> str:
        return os.path.join(self.dir, f"{job_id}.json")

    def exists(self, job_id: str) -> bool:
        return os.path.isfile(self.path(job_id))

    def read(self, job_id: str) -> JobRecord:
        try:
            with open(self.path(job_id), "r", encoding="utf-8") as handle:
                return JobRecord.from_dict(json.load(handle))
        except FileNotFoundError:
            raise JobError(f"no job {job_id!r} in {self.dir}") from None
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise JobError(f"corrupt job record {job_id!r}: {exc}") from None

    def write(self, record: JobRecord) -> None:
        """Atomic record rewrite (tmp + replace; same contract as manifests)."""
        atomic_write_json(self.path(record.job_id), record.to_dict(), indent=2)

    def list(self) -> list[JobRecord]:
        """Every job record, FIFO by (created_at, job_id)."""
        records = []
        for name in os.listdir(self.dir):
            match = _JOB_FILE_RE.match(name)
            if not match:
                continue  # daemon.json, lock files, tmp files
            try:
                records.append(self.read(match.group(1)))
            except JobError:
                continue  # a record mid-replace; the next poll sees it
        return sorted(records, key=lambda r: (r.created_at, r.job_id))

    def submit(self, spec) -> tuple[JobRecord, bool]:
        """Submit a campaign; returns ``(record, created)``.

        Content-addressed and idempotent under the advisory lock: a job that
        already exists bumps its ``submissions`` counter instead of forking
        a second run; ``failed``/``cancelled`` jobs re-queue (retry
        semantics — the stored run resumes), ``queued``/``running``/
        ``completed`` jobs are returned as-is.
        """
        spec = CampaignSpec.coerce(spec)
        job_id = job_fingerprint(spec)
        with self.lock():
            if self.exists(job_id):
                record = self.read(job_id)
                record.submissions += 1
                if record.status in ("failed", "cancelled"):
                    record.status = "queued"
                    record.error = None
                    record.pid = None
                    record.started_at = None
                    record.finished_at = None
                    record.cancel_requested = False
                self.write(record)
                return record, False
            record = JobRecord(job_id=job_id, spec=spec.to_dict(),
                               run_id=f"job-{job_id}", created_at=_utc_now())
            self.write(record)
            return record, True

    def update(self, job_id: str, **changes) -> JobRecord:
        """Locked read-modify-write of one record (unknown fields raise)."""
        known = {f.name for f in dataclasses.fields(JobRecord)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise JobError(f"unknown job record field {unknown[0]!r}")
        with self.lock():
            record = self.read(job_id)
            for name, value in changes.items():
                setattr(record, name, value)
            self.write(record)
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a job for cancellation (no-op on terminal jobs).

        Only the *scheduler* transitions state in response — the HTTP thread
        setting ``status`` directly could race the scheduler's own
        queued→running transition — so this just raises the flag; the next
        scheduler tick drains a running worker (SIGTERM at a trial boundary)
        or retires a queued job.
        """
        with self.lock():
            record = self.read(job_id)
            if not record.terminal and not record.cancel_requested:
                record.cancel_requested = True
                self.write(record)
            return record


# --------------------------------------------------------------------- #
# the forked campaign worker
# --------------------------------------------------------------------- #
class _JobDrained(Exception):
    """Internal: SIGTERM observed at a trial boundary; stop cleanly."""


#: Callables a freshly forked worker runs to close inherited daemon state
#: (most importantly the HTTP listening socket — an orphaned worker holding
#: it would block a restarted daemon from rebinding the port).
_FORK_CLEANUPS: list[Callable[[], None]] = []


def register_fork_cleanup(fn: Callable[[], None]) -> None:
    """Register daemon state for forked workers to close at startup."""
    _FORK_CLEANUPS.append(fn)


def _run_fork_cleanups() -> None:
    for fn in _FORK_CLEANUPS:
        try:
            fn()
        except Exception:
            pass
    _FORK_CLEANUPS.clear()


def _job_worker(store_root: str, job_id: str, run_id: str, spec_dict: dict) -> None:
    """Run one job's campaign to completion (the forked child's main).

    Exit codes: 0 = campaign complete; ``EXIT_DRAINED`` (96) = SIGTERM
    observed and drained at a trial boundary (every completed trial is
    persisted; resume re-runs exactly the rest); 1 = the campaign raised
    (the error text lands in the job record before exiting).

    SIGTERM handling is cooperative and loss-free: the handler only sets a
    flag, and a sink callback raises at the next ``trial_completed`` /
    ``baseline_completed`` event — which the campaign layer emits *after*
    persisting the record — so draining never loses a finished trial.  The
    sharded backend supersedes this with the supervisor's own drain (its
    ``SupervisorDrained`` maps to the same exit code).
    """
    from repro.api import run_campaign
    from repro.results.events import JsonlEventSink
    from repro.service.streams import run_events_path

    _run_fork_cleanups()
    drain = {"requested": False}

    def _on_term(signum, frame):
        drain["requested"] = True

    signal.signal(signal.SIGTERM, _on_term)

    store = RunStore(store_root)
    jobs = JobStore(store)
    try:
        spec = CampaignSpec.from_dict(spec_dict)
        events = JsonlEventSink(run_events_path(store, run_id))

        def _boundary(event):
            if drain["requested"] and event.kind in ("trial_completed",
                                                     "baseline_completed"):
                raise _JobDrained()

        try:
            run_campaign(spec=spec, store=store, run_id=run_id, resume=True,
                         sink=[events, _boundary])
        finally:
            events.close()
    except (_JobDrained, SupervisorDrained, KeyboardInterrupt):
        sys.exit(EXIT_DRAINED)
    except BaseException as exc:  # noqa: BLE001 - the record carries it
        try:
            jobs.update(job_id, error=f"{type(exc).__name__}: {exc}")
        except Exception:
            pass
        sys.exit(1)
    sys.exit(0)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def _terminate_pid(pid: int, grace: float) -> None:
    """SIGTERM a process, escalate to SIGKILL after ``grace`` seconds."""
    if not _pid_alive(pid):
        return
    try:
        os.kill(pid, signal.SIGTERM)
    except OSError:
        return
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if not _pid_alive(pid):
            return
        time.sleep(0.05)
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        pass


# --------------------------------------------------------------------- #
# the scheduler
# --------------------------------------------------------------------- #
class CampaignScheduler:
    """Runs queued jobs as forked workers, at most ``max_jobs`` at a time.

    Single-threaded by design: the daemon calls :meth:`tick` from its main
    loop, and *only* the scheduler transitions job state (HTTP threads
    submit and raise flags).  Each tick reaps finished workers, polices
    cancel flags, and launches queued jobs FIFO.
    """

    def __init__(self, jobs: JobStore, *, max_jobs: int = 2,
                 drain_grace: float = 10.0,
                 on_update: Callable[[JobRecord], None] | None = None):
        import multiprocessing

        self.jobs = jobs
        self.max_jobs = int(max_jobs)
        self.drain_grace = float(drain_grace)
        self.on_update = on_update
        self._mp = multiprocessing.get_context("fork")
        self._running: dict[str, object] = {}
        self._signalled: set[str] = set()

    @property
    def running(self) -> int:
        return len(self._running)

    def _transition(self, job_id: str, **changes) -> JobRecord:
        record = self.jobs.update(job_id, **changes)
        if self.on_update is not None:
            self.on_update(record)
        return record

    # ------------------------------------------------------------------ #
    def recover(self) -> None:
        """Startup pass: retire orphans from a previous daemon, re-queue work.

        A SIGKILL-ed daemon leaves ``running`` records whose worker pids may
        still be alive (re-parented orphans).  Launching a second worker on
        the same run would put two writers on one store — so orphans are
        terminated (drain, then kill) *before* their jobs re-queue.  Queued
        jobs with a pending cancel flag retire immediately.
        """
        for record in self.jobs.list():
            if record.status == "running":
                if record.pid is not None:
                    _terminate_pid(record.pid, self.drain_grace)
                self._transition(record.job_id, status="queued", pid=None,
                                 started_at=None)
            elif record.status == "queued" and record.cancel_requested:
                self._transition(record.job_id, status="cancelled",
                                 cancel_requested=False,
                                 finished_at=_utc_now())

    def tick(self) -> None:
        """One scheduler round: reap, police cancels, launch."""
        self._reap()
        self._police_cancels()
        self._launch()

    # ------------------------------------------------------------------ #
    def _reap(self) -> None:
        for job_id, proc in list(self._running.items()):
            if proc.is_alive():
                continue
            proc.join()
            exitcode = proc.exitcode
            del self._running[job_id]
            self._signalled.discard(job_id)
            record = self.jobs.read(job_id)
            if exitcode == 0:
                # Completion wins even over a late cancel: the work is done.
                self._transition(job_id, status="completed", pid=None,
                                 cancel_requested=False,
                                 finished_at=_utc_now())
            elif record.cancel_requested:
                self._transition(job_id, status="cancelled", pid=None,
                                 cancel_requested=False,
                                 finished_at=_utc_now())
            elif exitcode in (EXIT_DRAINED, -signal.SIGTERM):
                # Drained from outside (not a cancel): resume on a later tick.
                self._transition(job_id, status="queued", pid=None,
                                 started_at=None)
            else:
                error = record.error or f"job worker exited with code {exitcode}"
                self._transition(job_id, status="failed", pid=None,
                                 error=error, finished_at=_utc_now())

    def _police_cancels(self) -> None:
        for record in self.jobs.list():
            if not record.cancel_requested:
                continue
            proc = self._running.get(record.job_id)
            if proc is not None:
                if record.job_id not in self._signalled and proc.is_alive():
                    proc.terminate()  # drains at the next trial boundary
                    self._signalled.add(record.job_id)
            elif record.status == "queued":
                self._transition(record.job_id, status="cancelled",
                                 cancel_requested=False,
                                 finished_at=_utc_now())

    def _launch(self) -> None:
        if len(self._running) >= self.max_jobs:
            return
        for record in self.jobs.list():
            if len(self._running) >= self.max_jobs:
                return
            if (record.status != "queued" or record.cancel_requested
                    or record.job_id in self._running):
                continue
            proc = self._mp.Process(
                target=_job_worker,
                args=(self.jobs.store.root, record.job_id, record.run_id,
                      record.spec),
                name=f"repro-job-{record.job_id}",
                daemon=True,
            )
            proc.start()
            self._running[record.job_id] = proc
            self._transition(record.job_id, status="running", pid=proc.pid,
                             started_at=_utc_now(), error=None)

    # ------------------------------------------------------------------ #
    def drain(self) -> int:
        """Shutdown pass: drain every running worker, re-queue their jobs.

        SIGTERMs all workers (they stop at a trial boundary), waits up to
        ``drain_grace`` seconds, SIGKILLs stragglers, and marks every one
        ``queued`` again — a restarted daemon resumes them with zero
        re-solves of completed trials.  Returns how many jobs re-queued.
        """
        for proc in self._running.values():
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + self.drain_grace
        for proc in self._running.values():
            remaining = deadline - time.monotonic()
            proc.join(timeout=max(remaining, 0.0))
        drained = 0
        for job_id, proc in list(self._running.items()):
            if proc.is_alive():
                proc.kill()
                proc.join()
            del self._running[job_id]
            record = self.jobs.read(job_id)
            if record.cancel_requested:
                self._transition(job_id, status="cancelled", pid=None,
                                 cancel_requested=False,
                                 finished_at=_utc_now())
            else:
                self._transition(job_id, status="queued", pid=None,
                                 started_at=None)
            drained += 1
        self._signalled.clear()
        return drained
