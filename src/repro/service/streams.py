"""Live event fan-out for the campaign service.

Two complementary delivery paths feed ``GET /jobs/<id>/events`` and
``GET /events``:

* :func:`tail_jsonl` — follow a run's durable ``events.jsonl`` file from the
  start, yielding each complete line as it is appended.  Because campaign
  workers write events through a flush-per-event :class:`JsonlEventSink`,
  tailing the file gives a subscriber the *full* history (replay) plus live
  updates, survives daemon restarts, and needs no coupling between the
  worker process and the HTTP thread.

* :class:`BroadcastSink` — an in-process fan-out :class:`EventSink`
  bridging the PR 5 event bus to N concurrent subscribers.  Each
  :class:`Subscription` owns a bounded queue; a subscriber that cannot keep
  up *drops* events rather than stalling the producer, and the drop count
  is part of the subscription's accounting (reported on the stream's final
  line), so slow consumers are visible instead of silently lossy.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Callable, Iterator

from repro.results.events import Event, EventSink

__all__ = ["BroadcastSink", "Subscription", "run_events_path", "tail_jsonl"]

#: The per-run live event file a service job's worker appends to.
EVENTS_FILE = "events.jsonl"

_CLOSED = object()  # queue sentinel: the broadcast sink shut down


def run_events_path(store, run_id: str) -> str:
    """The durable live-event file of one service-managed run."""
    return os.path.join(store.run_path(run_id), EVENTS_FILE)


class Subscription:
    """One subscriber's bounded view of a :class:`BroadcastSink`.

    Iterating yields :class:`Event` objects until the sink closes or
    :meth:`close` is called.  ``dropped`` counts events discarded because
    the queue was full when the producer emitted them (slow-subscriber
    accounting — the producer never blocks).
    """

    def __init__(self, sink: "BroadcastSink", maxsize: int):
        self._sink = sink
        self._queue: queue.Queue = queue.Queue(maxsize)
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1

    def _shutdown(self) -> None:
        try:
            self._queue.put_nowait(_CLOSED)
        except queue.Full:
            # The iterator drains the queue and re-checks ``closed``, so a
            # full queue cannot swallow the shutdown signal.
            pass
        self.closed = True

    def get(self, timeout: float | None = None) -> Event | None:
        """The next event, or None on timeout / after shutdown."""
        if self.closed and self._queue.empty():
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSED:
            self.closed = True
            return None
        return item

    def close(self) -> None:
        """Detach from the sink (the producer stops offering events)."""
        self._sink.unsubscribe(self)
        self._shutdown()

    def __iter__(self) -> Iterator[Event]:
        while True:
            event = self.get(timeout=0.25)
            if event is not None:
                yield event
            elif self.closed and self._queue.empty():
                return


class BroadcastSink(EventSink):
    """Fans every event out to N bounded-queue subscribers, without blocking.

    Registered as the ``broadcast`` sink; the service daemon uses one as its
    job-lifecycle bus (``GET /events``).  Emit is O(subscribers) and never
    waits: a full subscriber queue increments that subscription's
    ``dropped`` counter instead.
    """

    def __init__(self, *, default_maxsize: int = 256):
        self.default_maxsize = int(default_maxsize)
        if self.default_maxsize < 1:
            raise ValueError(f"default_maxsize must be >= 1, got {default_maxsize}")
        self._subs: list[Subscription] = []
        self._lock = threading.Lock()
        self.closed = False

    def subscribe(self, *, maxsize: int | None = None) -> Subscription:
        """A new bounded subscription (closed immediately if the sink is)."""
        sub = Subscription(self, int(maxsize or self.default_maxsize))
        with self._lock:
            if self.closed:
                sub._shutdown()
            else:
                self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    def emit(self, event: Event) -> None:
        with self._lock:
            subs = list(self._subs)
        for sub in subs:
            sub._offer(event)

    def close(self) -> None:
        with self._lock:
            subs, self._subs = self._subs, []
            self.closed = True
        for sub in subs:
            sub._shutdown()


def tail_jsonl(path: str, *, poll_interval: float = 0.1,
               stop: Callable[[], bool] | None = None) -> Iterator[dict]:
    """Yield parsed JSON objects from a JSONL file, live (``tail -f`` style).

    Starts at the beginning of the file (full replay), then polls for
    appended lines every ``poll_interval`` seconds.  A missing file reads as
    empty (the run may not have started writing yet).  Only *complete*
    (newline-terminated) lines are yielded; a partial tail stays pending
    until its newline arrives, and a complete-but-corrupt line (torn by a
    SIGKILL mid-append, then overwritten) is skipped.

    ``stop`` is polled between reads; when it returns True one final read
    drains anything appended in the meantime, then the generator returns.
    The contract matters for job streams: the scheduler marks a job terminal
    only *after* its worker exited, and the worker flushed every event
    before exiting, so events observed as "stopped" are already on disk.
    """
    offset = 0
    stopping = False
    while True:
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            data = b""
        pos = 0
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break
            line = data[pos:newline]
            pos = newline + 1
            try:
                yield json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                pass  # a torn (crash-signature) line; skip it
        offset += pos
        if pos:
            continue  # drain fully before sleeping or stopping
        if stopping:
            return
        if stop is not None and stop():
            stopping = True  # one more read pass catches late appends
            continue
        time.sleep(poll_interval)
