"""Client and CLI for the campaign service (``repro serve/submit/...``).

:class:`ServiceClient` speaks the daemon's HTTP/JSONL API over
:mod:`urllib.request` (stdlib only, like the server).  The CLI subcommands
it powers are dispatched from the main ``repro`` entry point *before* the
experiment parser, so the one console command covers both worlds:

.. code-block:: bash

    repro serve --store runs/ --port 8765 --max-jobs 2 &
    repro submit campaign.json --watch          # POST + live event stream
    repro jobs                                  # job table with progress
    repro watch <job_id>                        # stream one job's events
    repro cancel <job_id>                       # SIGTERM-drain the worker
    repro result <job_id>                       # completed CampaignResult
    repro runs --store runs/                    # store-level run summaries

``submit``/``watch`` exit 0 when the job completes, 3 when it ends
``failed``/``cancelled`` — scriptable the same way the exit codes of
``repro serve`` (143 on SIGTERM) and the supervisor are.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Iterator, Sequence

from repro.specs import CampaignSpec, ServiceSpec, SpecError

__all__ = ["ServiceClient", "ServiceError", "SERVICE_COMMANDS", "service_main"]

#: Subcommands the main ``repro`` CLI routes here instead of argparse.
SERVICE_COMMANDS = ("serve", "submit", "jobs", "watch", "cancel", "result",
                    "runs")

DEFAULT_URL = f"http://{ServiceSpec().host}:{ServiceSpec().port}"


class ServiceError(RuntimeError):
    """An API-level failure; carries the HTTP status and error payload."""

    def __init__(self, message: str, *, status: int | None = None,
                 payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """A thin, stdlib-only client of one ``repro serve`` daemon."""

    def __init__(self, url: str = DEFAULT_URL, *, timeout: float = 60.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, payload: dict | None = None,
                 *, stream: bool = False):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers, method=method)
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                detail = json.loads(body)
            except (json.JSONDecodeError, UnicodeDecodeError):
                detail = {"error": body.decode("utf-8", "replace")}
            raise ServiceError(detail.get("error", f"HTTP {exc.code}"),
                               status=exc.code, payload=detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach the campaign service at {self.url} "
                f"({exc.reason}); is `repro serve` running?") from None
        if stream:
            return response
        with response:
            return json.loads(response.read())

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(self, spec) -> dict:
        """POST a campaign; returns the (possibly deduped) job record."""
        if isinstance(spec, CampaignSpec):
            spec = spec.to_dict()
        if not isinstance(spec, dict):
            raise ServiceError(f"submit needs a CampaignSpec or dict, "
                               f"got {type(spec).__name__}")
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``{"job": ..., "result": ...}`` of a completed job (409 before)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's events: full replay, then live until terminal."""
        response = self._request("GET", f"/jobs/{job_id}/events", stream=True)
        return self._iter_jsonl(response)

    def service_events(self) -> Iterator[dict]:
        """Stream the daemon's live job-lifecycle updates."""
        response = self._request("GET", "/events", stream=True)
        return self._iter_jsonl(response)

    @staticmethod
    def _iter_jsonl(response) -> Iterator[dict]:
        with response:
            for line in response:  # http.client un-chunks transparently
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its final record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("completed", "failed", "cancelled"):
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['status']} after {timeout}s")
            time.sleep(poll_interval)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign service commands (see also the experiment "
                    "subcommands: repro table1/fig2/fig3/fig4/summary/all).")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the campaign service daemon")
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="run store directory the daemon owns (job records "
                            "live in DIR/_jobs/)")
    serve.add_argument("--config", default=None, metavar="SERVICE.json",
                       help="ServiceSpec JSON file; flags override its fields")
    serve.add_argument("--host", default=None)
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (0 = ephemeral; the bound port is "
                            "recorded in DIR/_jobs/daemon.json)")
    serve.add_argument("--max-jobs", type=int, default=None, dest="max_jobs",
                       help="campaigns run concurrently (default 2)")
    serve.add_argument("--poll-interval", type=float, default=None,
                       dest="poll_interval", metavar="SECONDS")
    serve.add_argument("--drain-grace", type=float, default=None,
                       dest="drain_grace", metavar="SECONDS",
                       help="shutdown budget for workers to drain at a trial "
                            "boundary before they are killed (default 10)")

    submit = sub.add_parser("submit",
                            help="POST a CampaignSpec JSON file as a job")
    submit.add_argument("spec", metavar="SPEC.json",
                        help="campaign spec file ('-' reads stdin)")
    submit.add_argument("--url", default=DEFAULT_URL)
    submit.add_argument("--set", action="append", default=[], dest="overrides",
                        metavar="PATH=VALUE",
                        help="dotted CampaignSpec override, e.g. "
                             "--set problem=poisson:30; repeatable")
    submit.add_argument("--watch", action="store_true",
                        help="stream the job's events until it finishes")

    jobs = sub.add_parser("jobs", help="list the daemon's jobs")
    jobs.add_argument("--url", default=DEFAULT_URL)
    jobs.add_argument("--json", action="store_true", dest="as_json",
                      help="raw JSON instead of the table")

    watch = sub.add_parser("watch", help="stream one job's events (JSONL)")
    watch.add_argument("job_id")
    watch.add_argument("--url", default=DEFAULT_URL)

    cancel = sub.add_parser("cancel", help="cancel a job (drains the worker)")
    cancel.add_argument("job_id")
    cancel.add_argument("--url", default=DEFAULT_URL)

    result = sub.add_parser("result",
                            help="print a completed job's CampaignResult JSON")
    result.add_argument("job_id")
    result.add_argument("--url", default=DEFAULT_URL)

    runs = sub.add_parser("runs", help="list the runs stored in a run store")
    runs.add_argument("--store", required=True, metavar="DIR")
    runs.add_argument("--json", action="store_true", dest="as_json",
                      help="raw JSON instead of the table")
    return parser


def _cmd_serve(args) -> int:
    from repro.results.store import RunStore
    from repro.service.server import ServiceDaemon, ServiceStartupError

    raw: dict = {}
    if args.config:
        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SpecError("config", f"cannot read {args.config}: {exc}") from None
    overrides = {name: getattr(args, name)
                 for name in ("host", "port", "max_jobs", "poll_interval",
                              "drain_grace")
                 if getattr(args, name) is not None}
    spec = ServiceSpec.coerce(raw or None, **overrides)
    try:
        return ServiceDaemon(RunStore(args.store), spec).serve()
    except ServiceStartupError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 1


def _load_spec_file(path: str) -> dict:
    try:
        if path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError("spec", f"cannot read {path}: {exc}") from None
    if not isinstance(data, dict):
        raise SpecError("spec", f"{path} must hold a CampaignSpec JSON object")
    return data


def _watch_stream(client: ServiceClient, job_id: str) -> int:
    """Print a job's JSONL event stream; exit by its final status."""
    final_status = None
    for event in client.events(job_id):
        print(json.dumps(event), flush=True)
        if event.get("kind") == "job_update":
            final_status = event.get("data", {}).get("status", final_status)
    if final_status is None:
        final_status = client.job(job_id)["status"]
    return 0 if final_status == "completed" else 3


def _cmd_submit(args) -> int:
    from repro.specs import apply_overrides, parse_override_value

    spec = CampaignSpec.from_dict(_load_spec_file(args.spec))
    for item in args.overrides:
        path, sep, value = item.partition("=")
        if not sep or not path:
            raise SpecError("--set", f"expected PATH=VALUE, got {item!r}")
        spec = apply_overrides(spec, {path.strip(): parse_override_value(value)})
    client = ServiceClient(args.url)
    record = client.submit(spec)
    print(json.dumps(record, indent=2), flush=True)
    if args.watch:
        return _watch_stream(client, record["job_id"])
    return 0


def _cmd_jobs(args) -> int:
    from repro.experiments.report import format_table

    rows = ServiceClient(args.url).jobs()
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    table = []
    for row in rows:
        progress = row.get("progress") or {}
        done, total = progress.get("trials_done"), progress.get("total_trials")
        table.append([
            row["job_id"], row["status"],
            str(row["spec"].get("problem", "")),
            f"{done}/{total}" if done is not None else "-",
            row["submissions"], row["created_at"],
        ])
    print(format_table(
        ["job_id", "status", "problem", "trials", "submits", "created_at"],
        table, title=f"jobs @ {args.url}"))
    return 0


def _cmd_watch(args) -> int:
    return _watch_stream(ServiceClient(args.url), args.job_id)


def _cmd_cancel(args) -> int:
    record = ServiceClient(args.url).cancel(args.job_id)
    print(json.dumps(record, indent=2))
    return 0


def _cmd_result(args) -> int:
    payload = ServiceClient(args.url).result(args.job_id)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_runs(args) -> int:
    from repro.experiments.report import format_table
    from repro.results.store import RunStore

    rows = RunStore(args.store).list_runs()
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    table = [[row["run_id"], row["status"],
              (f"{row['trials_done']}/{row['total_trials']}"
               if row["trials_done"] is not None else "-"),
              row["shards"], row["spec_hash"] or "-",
              row["problem_name"] or "-"]
             for row in rows]
    print(format_table(
        ["run_id", "status", "trials", "shards", "spec_hash", "problem"],
        table, title=f"runs in {args.store}"))
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "watch": _cmd_watch,
    "cancel": _cmd_cancel,
    "result": _cmd_result,
    "runs": _cmd_runs,
}


def service_main(argv: Sequence[str]) -> int:
    """Entry point for the service subcommands (called by the runner CLI)."""
    parser = build_service_parser()
    args = parser.parse_args(list(argv))
    try:
        return _COMMANDS[args.command](args)
    except SpecError as exc:
        parser.error(str(exc))
    except ServiceError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        return 141
    return 0
