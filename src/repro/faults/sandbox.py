"""The sandbox reliability model (Section IV of the paper).

A :class:`Sandbox` marks a region of execution as *unreliable*: fault
injectors attached to the sandbox only corrupt data while the sandbox is
active.  FT-GMRES runs every inner solve inside the sandbox and all outer
arithmetic outside it, which is exactly the paper's division into unreliable
guest and reliable host.

The sandbox also implements the model's second promise — the guest returns
in bounded time — through an optional invocation budget: a runaway guest can
be cut off by raising ``TimeoutError`` after a configurable number of
operations (the experiment harness does not need this, but it demonstrates
the host-side control the model requires).
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["Sandbox", "reliable_region"]


class Sandbox:
    """A re-entrant activation scope marking unreliable execution.

    Parameters
    ----------
    name : str
        Label used in reports and event logs.
    max_operations : int, optional
        Optional budget of "guest operations" (ticks); exceeding it raises
        ``TimeoutError`` from :meth:`tick`.  ``None`` disables the budget.

    Examples
    --------
    >>> sandbox = Sandbox("inner-solve")
    >>> sandbox.active
    False
    >>> with sandbox:
    ...     sandbox.active
    True
    >>> sandbox.active
    False
    """

    def __init__(self, name: str = "sandbox", max_operations: int | None = None):
        self.name = name
        self.max_operations = max_operations
        self._depth = 0
        self.entries = 0
        self.operations = 0

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True while execution is inside the unreliable region."""
        return self._depth > 0

    def __enter__(self) -> "Sandbox":
        self._depth += 1
        self.entries += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._depth = max(self._depth - 1, 0)

    def tick(self, count: int = 1) -> None:
        """Record ``count`` guest operations and enforce the budget.

        Raises
        ------
        TimeoutError
            If the cumulative operation count exceeds ``max_operations``.
            The host catches this to implement "stop the guest within a
            predefined finite time".
        """
        if not self.active:
            return
        self.operations += int(count)
        if self.max_operations is not None and self.operations > self.max_operations:
            raise TimeoutError(
                f"sandbox {self.name!r} exceeded its operation budget "
                f"({self.operations} > {self.max_operations})"
            )

    def reset(self) -> None:
        """Clear usage counters (the activation depth is left untouched)."""
        self.entries = 0
        self.operations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sandbox(name={self.name!r}, active={self.active}, entries={self.entries})"


@contextmanager
def reliable_region(sandbox: Sandbox | None):
    """Temporarily deactivate a sandbox (execute a reliable sub-step).

    The outer solver of FT-GMRES never needs this (it simply never enters the
    sandbox), but finer-grained schemes — e.g. an inner solver that computes
    one quantity reliably — can wrap that computation in
    ``with reliable_region(sandbox): ...`` so attached injectors stand down.
    """
    if sandbox is None or not sandbox.active:
        yield
        return
    depth = sandbox._depth
    sandbox._depth = 0
    try:
        yield
    finally:
        sandbox._depth = depth
