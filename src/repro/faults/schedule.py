"""Injection schedules: when and where a fault strikes.

A schedule is a predicate over the *injection context* — the keyword
arguments the solvers pass at every injection site (site name, outer
iteration, inner-solve index, local and aggregate inner iteration, position
within the Modified Gram–Schmidt loop).  The paper's experiments use the
narrowest possible schedule: one specific Hessenberg coefficient (first or
last MGS position) of one specific aggregate inner iteration, corrupted
exactly once (a transient fault).  Sticky and persistent variants are
provided for the extension studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Persistence", "InjectionSchedule"]


class Persistence(Enum):
    """How long the underlying "hardware" stays faulty (Section I-B)."""

    TRANSIENT = "transient"    # fires once
    STICKY = "sticky"          # fires for a bounded number of matching calls
    PERSISTENT = "persistent"  # fires on every matching call

    @classmethod
    def coerce(cls, value) -> "Persistence":
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown persistence {value!r}; expected one of {[p.value for p in cls]}"
            ) from exc


@dataclass
class InjectionSchedule:
    """Describes when a fault model should be applied.

    Attributes
    ----------
    site : str
        Injection site name (``"hessenberg"``, ``"subdiag"``, ``"spmv"``,
        ``"basis"``, ``"precond"``); ``"*"`` matches any site.
    aggregate_inner_iteration : int or None
        Fire only when the aggregate inner-iteration counter (the x-axis of
        Figures 3 and 4: ``inner_solve_index * inner_iterations + local
        iteration``) equals this value.  ``None`` means "any".
    outer_iteration : int or None
        Fire only during this outer iteration (``None`` = any).
    inner_iteration : int or None
        Fire only at this *local* inner-iteration index (``None`` = any).
    mgs_position : {"first", "last", int, None}
        Position within the orthogonalization loop: ``"first"`` (the paper's
        Figure 3a/4a), ``"last"`` (Figure 3b/4b), an explicit 0-based index,
        or ``None`` for any position.
    persistence : Persistence or str
        Transient (default, the paper's model), sticky, or persistent.
    sticky_count : int
        For sticky faults, how many matching invocations are corrupted
        (counted from the first firing).
    max_injections : int or None
        Hard cap on the number of corruptions regardless of persistence
        (transient implies 1).  ``None`` means unlimited.
    """

    site: str = "hessenberg"
    aggregate_inner_iteration: int | None = None
    outer_iteration: int | None = None
    inner_iteration: int | None = None
    mgs_position: str | int | None = "first"
    persistence: Persistence | str = Persistence.TRANSIENT
    sticky_count: int = 3
    max_injections: int | None = None

    def __post_init__(self) -> None:
        self.persistence = Persistence.coerce(self.persistence)
        if isinstance(self.mgs_position, str) and self.mgs_position not in ("first", "last"):
            raise ValueError(
                f"mgs_position must be 'first', 'last', an integer, or None, "
                f"got {self.mgs_position!r}"
            )
        if self.sticky_count <= 0:
            raise ValueError(f"sticky_count must be positive, got {self.sticky_count}")
        if self.persistence is Persistence.TRANSIENT:
            self.max_injections = 1 if self.max_injections is None else min(1, self.max_injections)

    # ------------------------------------------------------------------ #
    def matches_site(self, site: str) -> bool:
        """True if the schedule targets the given site."""
        return self.site == "*" or self.site == site

    def matches(self, site: str, *, outer_iteration: int = -1, inner_solve_index: int = -1,
                inner_iteration: int = -1, aggregate_inner_iteration: int = -1,
                mgs_index: int = -1, mgs_length: int = 0, **_ignored) -> bool:
        """True if a call with this context is eligible for corruption.

        The extra ``**_ignored`` keyword sink keeps the schedule forward
        compatible with additional context the solvers may provide.
        """
        if not self.matches_site(site):
            return False
        if (self.aggregate_inner_iteration is not None
                and aggregate_inner_iteration != self.aggregate_inner_iteration):
            return False
        if self.outer_iteration is not None and outer_iteration != self.outer_iteration:
            return False
        if self.inner_iteration is not None and inner_iteration != self.inner_iteration:
            return False
        if self.mgs_position is not None and mgs_index >= 0:
            if self.mgs_position == "first" and mgs_index != 0:
                return False
            if self.mgs_position == "last" and mgs_index != max(mgs_length - 1, 0):
                return False
            if isinstance(self.mgs_position, int) and mgs_index != self.mgs_position:
                return False
        return True

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        parts = [f"site={self.site}"]
        if self.aggregate_inner_iteration is not None:
            parts.append(f"aggregate_iter={self.aggregate_inner_iteration}")
        if self.outer_iteration is not None:
            parts.append(f"outer={self.outer_iteration}")
        if self.inner_iteration is not None:
            parts.append(f"inner={self.inner_iteration}")
        if self.mgs_position is not None:
            parts.append(f"mgs={self.mgs_position}")
        parts.append(f"persistence={self.persistence.value}")
        return ", ".join(parts)
