"""Injection schedules: when and where a fault strikes.

A schedule is a predicate over the *injection context* — the keyword
arguments the solvers pass at every injection site (site name, outer
iteration, inner-solve index, local and aggregate inner iteration, position
within the Modified Gram–Schmidt loop).  The paper's experiments use the
narrowest possible schedule: one specific Hessenberg coefficient (first or
last MGS position) of one specific aggregate inner iteration, corrupted
exactly once (a transient fault).  Sticky and persistent variants are
provided for the extension studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Persistence", "InjectionSchedule", "FaultRateSchedule", "KNOWN_SITES"]

#: Every injection site the solvers consult (see repro.core.arnoldi's site
#: table).  Schedules validate their ``site`` field against this set so a
#: typo'd site fails loudly instead of silently never firing.
KNOWN_SITES = ("hessenberg", "subdiag", "spmv", "precond", "givens", "orth", "basis")


class Persistence(Enum):
    """How long the underlying "hardware" stays faulty (Section I-B)."""

    TRANSIENT = "transient"    # fires once
    STICKY = "sticky"          # fires for a bounded number of matching calls
    PERSISTENT = "persistent"  # fires on every matching call

    @classmethod
    def coerce(cls, value) -> "Persistence":
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown persistence {value!r}; expected one of {[p.value for p in cls]}"
            ) from exc


@dataclass
class InjectionSchedule:
    """Describes when a fault model should be applied.

    Attributes
    ----------
    site : str
        Injection site name (``"hessenberg"``, ``"subdiag"``, ``"spmv"``,
        ``"basis"``, ``"precond"``, ``"givens"``, ``"orth"``); ``"*"``
        matches any site, and a comma-separated list (``"spmv,precond"``)
        matches any of the named sites.
    aggregate_inner_iteration : int or None
        Fire only when the aggregate inner-iteration counter (the x-axis of
        Figures 3 and 4: ``inner_solve_index * inner_iterations + local
        iteration``) equals this value.  ``None`` means "any".
    outer_iteration : int or None
        Fire only during this outer iteration (``None`` = any).
    inner_iteration : int or None
        Fire only at this *local* inner-iteration index (``None`` = any).
    mgs_position : {"first", "last", int, None}
        Position within the orthogonalization loop: ``"first"`` (the paper's
        Figure 3a/4a), ``"last"`` (Figure 3b/4b), an explicit 0-based index,
        or ``None`` for any position.
    persistence : Persistence or str
        Transient (default, the paper's model), sticky, or persistent.
    sticky_count : int
        For sticky faults, how many matching invocations are corrupted
        (counted from the first firing).
    max_injections : int or None
        Hard cap on the number of corruptions regardless of persistence
        (transient implies 1).  ``None`` means unlimited.
    """

    site: str = "hessenberg"
    aggregate_inner_iteration: int | None = None
    outer_iteration: int | None = None
    inner_iteration: int | None = None
    mgs_position: str | int | None = "first"
    persistence: Persistence | str = Persistence.TRANSIENT
    sticky_count: int = 3
    max_injections: int | None = None

    #: Rate schedules override this: a transient fault then means "once per
    #: scheduled point per site" rather than "once per solve".
    transient_per_point = False

    def __post_init__(self) -> None:
        self.persistence = Persistence.coerce(self.persistence)
        self._sites = tuple(part.strip() for part in str(self.site).split(",")
                            if part.strip())
        if not self._sites:
            raise ValueError(f"site must name at least one site, got {self.site!r}")
        for name in self._sites:
            if name != "*" and name not in KNOWN_SITES:
                raise ValueError(
                    f"unknown injection site {name!r}; expected one of "
                    f"{list(KNOWN_SITES)} or '*'"
                )
        if isinstance(self.mgs_position, str) and self.mgs_position not in ("first", "last"):
            raise ValueError(
                f"mgs_position must be 'first', 'last', an integer, or None, "
                f"got {self.mgs_position!r}"
            )
        if self.sticky_count <= 0:
            raise ValueError(f"sticky_count must be positive, got {self.sticky_count}")
        if self.persistence is Persistence.TRANSIENT:
            self.max_injections = 1 if self.max_injections is None else min(1, self.max_injections)

    # ------------------------------------------------------------------ #
    def matches_site(self, site: str) -> bool:
        """True if the schedule targets the given site."""
        return "*" in self._sites or site in self._sites

    def matches(self, site: str, *, outer_iteration: int = -1, inner_solve_index: int = -1,
                inner_iteration: int = -1, aggregate_inner_iteration: int = -1,
                mgs_index: int = -1, mgs_length: int = 0, **_ignored) -> bool:
        """True if a call with this context is eligible for corruption.

        The extra ``**_ignored`` keyword sink keeps the schedule forward
        compatible with additional context the solvers may provide.
        """
        if not self.matches_site(site):
            return False
        if (self.aggregate_inner_iteration is not None
                and aggregate_inner_iteration != self.aggregate_inner_iteration):
            return False
        if self.outer_iteration is not None and outer_iteration != self.outer_iteration:
            return False
        if self.inner_iteration is not None and inner_iteration != self.inner_iteration:
            return False
        if self.mgs_position is not None and mgs_index >= 0:
            if self.mgs_position == "first" and mgs_index != 0:
                return False
            if self.mgs_position == "last" and mgs_index != max(mgs_length - 1, 0):
                return False
            if isinstance(self.mgs_position, int) and mgs_index != self.mgs_position:
                return False
        return True

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        parts = [f"site={self.site}"]
        if self.aggregate_inner_iteration is not None:
            parts.append(f"aggregate_iter={self.aggregate_inner_iteration}")
        if self.outer_iteration is not None:
            parts.append(f"outer={self.outer_iteration}")
        if self.inner_iteration is not None:
            parts.append(f"inner={self.inner_iteration}")
        if self.mgs_position is not None:
            parts.append(f"mgs={self.mgs_position}")
        parts.append(f"persistence={self.persistence.value}")
        return ", ".join(parts)


@dataclass
class FaultRateSchedule(InjectionSchedule):
    """A rate-based schedule: up to N faults per solve at a fixed cadence.

    The paper's experiments inject exactly one transient fault per nested
    solve; a rate schedule generalizes that to ``faults_per_solve`` faults,
    fired at aggregate inner iterations ``start``, ``start + interval``,
    ``start + 2*interval``, ... until the per-solve budget is spent.  The
    cadence is deterministic, so rate campaigns stay trial-identical across
    execution backends.

    Persistence applies *per scheduled point, per site*: a transient rate
    fault corrupts each scheduled (site, iteration) point once; a sticky
    one corrupts ``sticky_count`` eligible calls from each point's first
    firing, tracked separately for every site (per-site persistence — a
    stuck spmv lane does not consume a precond fault's window).

    Attributes
    ----------
    faults_per_solve : int
        Total injection budget for one nested solve (the "rate").
    start : int
        Aggregate inner iteration of the first fault.
    interval : int
        Gap, in aggregate inner iterations, between consecutive faults.
    """

    faults_per_solve: int = 1
    start: int = 0
    interval: int = 1

    transient_per_point = True

    def __post_init__(self) -> None:
        # Remember the caller's explicit cap before the transient clamp in
        # the parent initializer can collapse it to 1.
        explicit_cap = self.max_injections
        super().__post_init__()
        if self.faults_per_solve < 1:
            raise ValueError(
                f"faults_per_solve must be positive, got {self.faults_per_solve}")
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.interval < 1:
            raise ValueError(f"interval must be positive, got {self.interval}")
        # The rate IS the cap: the budget bounds total corruptions no matter
        # the persistence; an explicit tighter cap still wins.
        cap = self.faults_per_solve
        if explicit_cap is not None:
            cap = min(cap, explicit_cap)
        self.max_injections = cap

    def matches(self, site: str, *, aggregate_inner_iteration: int = -1,
                **context) -> bool:
        """Eligible only at the scheduled cadence points."""
        if aggregate_inner_iteration < self.start:
            return False
        if (aggregate_inner_iteration - self.start) % self.interval != 0:
            return False
        # The cadence is the location anchor; the base class keeps the
        # site/outer/inner/MGS predicates (its own aggregate anchor stays
        # None unless a caller narrows the cadence to one point on purpose).
        return super().matches(site,
                               aggregate_inner_iteration=aggregate_inner_iteration,
                               **context)

    def describe(self) -> str:
        base = super().describe()
        return (f"{base}, rate={self.faults_per_solve}/solve "
                f"(start={self.start}, every {self.interval})")
