"""IEEE-754 double-precision bit manipulation.

The paper argues that studying SDC as *numerical* error subsumes bit flips:
flipping any bit of a float64 yields either another float64 value or NaN/Inf,
all of which the numerical fault models can produce directly.  These helpers
exist so the test suite and the detector-ablation benchmark can nevertheless
exercise genuine bit flips and confirm that claim empirically.

Bit numbering follows the usual convention: bit 0 is the least-significant
mantissa bit, bits 0–51 are the mantissa, bits 52–62 the exponent, and bit 63
the sign.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["flip_bit", "flip_bit_in_array", "random_bit_flip", "MANTISSA_BITS", "EXPONENT_BITS",
           "SIGN_BIT"]

#: Bit positions of the float64 mantissa (0-51).
MANTISSA_BITS = tuple(range(0, 52))
#: Bit positions of the float64 exponent (52-62).
EXPONENT_BITS = tuple(range(52, 63))
#: Bit position of the float64 sign bit.
SIGN_BIT = 63


def flip_bit(value: float, bit: int) -> float:
    """Return ``value`` with the given bit of its IEEE-754 representation flipped.

    Parameters
    ----------
    value : float
        The original double-precision value.
    bit : int
        Bit position in ``[0, 63]``.

    Returns
    -------
    float
        The perturbed value.  Flipping exponent bits of a normal number can
        produce Inf or a subnormal; flipping bits of a NaN stays NaN.
    """
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    as_int = np.float64(value).view(np.uint64)
    flipped = as_int ^ np.uint64(1 << bit)
    return float(flipped.view(np.float64))


def flip_bit_in_array(arr: np.ndarray, index: int, bit: int) -> None:
    """Flip one bit of one element of a float64 array, in place.

    Parameters
    ----------
    arr : numpy.ndarray
        A float64 array (any shape); modified in place.
    index : int
        Flat index of the element to corrupt.
    bit : int
        Bit position in ``[0, 63]``.
    """
    arr = np.asarray(arr)
    if arr.dtype != np.float64:
        raise TypeError(f"array must be float64, got {arr.dtype}")
    flat = arr.reshape(-1)
    if not 0 <= index < flat.shape[0]:
        raise IndexError(f"index {index} outside array of size {flat.shape[0]}")
    flat[index] = flip_bit(float(flat[index]), bit)


def random_bit_flip(value: float, rng=None, bits=None) -> tuple[float, int]:
    """Flip a uniformly random bit of ``value``.

    Parameters
    ----------
    value : float
        The original value.
    rng : seed or numpy.random.Generator, optional
        Randomness source.
    bits : sequence of int, optional
        Restrict the flip to these bit positions (e.g. ``EXPONENT_BITS``).

    Returns
    -------
    (new_value, bit) : tuple
        The perturbed value and the bit that was flipped.
    """
    rng = as_generator(rng)
    candidates = np.asarray(bits if bits is not None else np.arange(64), dtype=np.int64)
    bit = int(rng.choice(candidates))
    return flip_bit(value, bit), bit
