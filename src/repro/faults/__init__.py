"""Fault-injection framework.

The paper's experimental methodology (Section VII) is: run the nested solver
once without faults, then rerun it once per possible injection location,
corrupting exactly one Hessenberg coefficient with a multiplicative error of
a chosen class.  This package generalizes that methodology:

* :mod:`repro.faults.models`    — what a corrupted value looks like
  (multiplicative scaling — the paper's three classes — plus bit flips,
  absolute overwrites, offsets, zeroing, NaN/Inf);
* :mod:`repro.faults.schedule`  — when and where the corruption strikes
  (site, aggregate inner iteration, MGS position, transient/sticky/persistent);
* :mod:`repro.faults.injector`  — the object solvers consult at every
  injection site;
* :mod:`repro.faults.targets`   — operator/preconditioner wrappers for
  black-box (kernel-output) injection;
* :mod:`repro.faults.sandbox`   — the sandbox reliability model: injectors
  attached to a sandbox only act while the sandbox is active;
* :mod:`repro.faults.bitflip`   — IEEE-754 bit manipulation helpers;
* :mod:`repro.faults.campaign`  — sweep drivers that run a solver over every
  injection location and fault class (the engine behind Figures 3 and 4);
* :mod:`repro.faults.chaos`     — infrastructure fault injection (worker
  kills, hangs, torn store appends) for the sharded supervisor's tests.
"""

from repro.faults.bitflip import flip_bit, flip_bit_in_array, random_bit_flip
from repro.faults.models import (
    FaultModel,
    ScalingFault,
    AbsoluteFault,
    AdditiveFault,
    ZeroFault,
    NaNFault,
    InfFault,
    BitFlipFault,
    MultiBitFault,
    BurstFault,
    StuckAtFault,
    PAPER_FAULT_CLASSES,
)
from repro.faults.schedule import (
    KNOWN_SITES,
    FaultRateSchedule,
    InjectionSchedule,
    Persistence,
)
from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.sandbox import Sandbox, reliable_region
from repro.faults.targets import FaultyOperator, FaultyPreconditioner
from repro.faults.campaign import (
    CampaignResult,
    FaultCampaign,
    TrialRecord,
    sweep_injection_locations,
)
from repro.faults.chaos import ChaosError, ChaosPolicy

__all__ = [
    "flip_bit",
    "flip_bit_in_array",
    "random_bit_flip",
    "FaultModel",
    "ScalingFault",
    "AbsoluteFault",
    "AdditiveFault",
    "ZeroFault",
    "NaNFault",
    "InfFault",
    "BitFlipFault",
    "MultiBitFault",
    "BurstFault",
    "StuckAtFault",
    "PAPER_FAULT_CLASSES",
    "KNOWN_SITES",
    "InjectionSchedule",
    "FaultRateSchedule",
    "Persistence",
    "FaultInjector",
    "NullInjector",
    "Sandbox",
    "reliable_region",
    "FaultyOperator",
    "FaultyPreconditioner",
    "CampaignResult",
    "ChaosError",
    "ChaosPolicy",
    "FaultCampaign",
    "TrialRecord",
    "sweep_injection_locations",
]
