"""Fault models: what a corrupted value looks like.

The paper deliberately models SDC as an arbitrary numerical error rather than
a bit flip, and evaluates three representative *multiplicative* corruption
classes relative to the correct value ``h``:

1. very large            — ``h * 1e+150``  (detectable: exceeds ``||A||_F``),
2. slightly smaller      — ``h * 10**-0.5`` (undetectable),
3. very small, near zero — ``h * 1e-300``  (undetectable).

:data:`PAPER_FAULT_CLASSES` exposes exactly these three.  The other models
(bit flips, overwrites, offsets, zeroing, NaN/Inf) support the wider test
suite and the detector-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.faults.bitflip import flip_bit, random_bit_flip
from repro.utils.rng import as_generator

__all__ = [
    "FaultModel",
    "ScalingFault",
    "AbsoluteFault",
    "AdditiveFault",
    "ZeroFault",
    "NaNFault",
    "InfFault",
    "BitFlipFault",
    "PAPER_FAULT_CLASSES",
]


class FaultModel:
    """Base class for fault models.

    A model is a deterministic (or seeded) transformation of a correct value
    into a corrupted one.  Models are stateless with respect to the solve;
    all "when does the fault strike" logic lives in the schedule/injector.
    """

    name = "fault"

    def corrupt(self, value: float) -> float:
        """Return the corrupted version of a scalar ``value``."""
        raise NotImplementedError

    def corrupt_vector(self, vec: np.ndarray, index: int | None = None, rng=None) -> np.ndarray:
        """Return a copy of ``vec`` with one element corrupted.

        Parameters
        ----------
        vec : numpy.ndarray
            The correct vector.
        index : int, optional
            Element to corrupt; a random element is chosen when omitted.
        rng : seed or Generator, optional
            Randomness source for the random-element choice.
        """
        vec = np.asarray(vec, dtype=np.float64)
        out = vec.copy()
        if out.size == 0:
            return out
        if index is None:
            index = int(as_generator(rng).integers(0, out.size))
        if not 0 <= index < out.size:
            raise IndexError(f"index {index} outside vector of size {out.size}")
        flat = out.reshape(-1)
        flat[index] = self.corrupt(float(flat[index]))
        return out

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return self.name

    def to_spec(self):
        """The registry spec (string or dict) that rebuilds this model.

        Used by :mod:`repro.specs` to serialize campaign configurations that
        carry built fault-model instances.  Subclasses with constructor
        arguments override this; argument-free ones serialize as their name.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ScalingFault(FaultModel):
    """Multiplicative corruption: ``h -> h * factor`` (the paper's model).

    Parameters
    ----------
    factor : float
        Corruption factor.  The paper's three classes use ``1e+150``,
        ``10**-0.5`` and ``1e-300``.
    """

    name = "scaling"

    def __init__(self, factor: float):
        self.factor = float(factor)

    def corrupt(self, value: float) -> float:
        with np.errstate(over="ignore", under="ignore", invalid="ignore"):
            return float(np.float64(value) * np.float64(self.factor))

    def describe(self) -> str:
        return f"h * {self.factor:g}"

    def to_spec(self) -> dict:
        return {"name": "scaling", "factor": self.factor}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScalingFault(factor={self.factor:g})"


class AbsoluteFault(FaultModel):
    """Overwrite corruption: the corrupted value is a fixed constant."""

    name = "absolute"

    def __init__(self, replacement: float):
        self.replacement = float(replacement)

    def corrupt(self, value: float) -> float:
        return self.replacement

    def describe(self) -> str:
        return f"h := {self.replacement:g}"

    def to_spec(self) -> dict:
        return {"name": "absolute", "replacement": self.replacement}


class AdditiveFault(FaultModel):
    """Offset corruption: ``h -> h + delta``."""

    name = "additive"

    def __init__(self, delta: float):
        self.delta = float(delta)

    def corrupt(self, value: float) -> float:
        with np.errstate(over="ignore", invalid="ignore"):
            return float(np.float64(value) + np.float64(self.delta))

    def describe(self) -> str:
        return f"h + {self.delta:g}"

    def to_spec(self) -> dict:
        return {"name": "additive", "delta": self.delta}


class ZeroFault(AbsoluteFault):
    """Replace the value with exactly zero (a total loss of information)."""

    name = "zero"

    def __init__(self):
        super().__init__(0.0)

    def describe(self) -> str:
        return "h := 0"

    def to_spec(self) -> str:
        return "zero"


class NaNFault(AbsoluteFault):
    """Replace the value with NaN (trivially detectable via IEEE-754)."""

    name = "nan"

    def __init__(self):
        super().__init__(float("nan"))

    def describe(self) -> str:
        return "h := NaN"

    def to_spec(self) -> str:
        return "nan"


class InfFault(AbsoluteFault):
    """Replace the value with +Inf (trivially detectable via IEEE-754)."""

    name = "inf"

    def __init__(self):
        super().__init__(float("inf"))

    def describe(self) -> str:
        return "h := Inf"

    def to_spec(self) -> str:
        return "inf"


class BitFlipFault(FaultModel):
    """Flip one bit of the IEEE-754 representation.

    Parameters
    ----------
    bit : int, optional
        Bit position (0 = least-significant mantissa bit, 63 = sign).  When
        omitted, a uniformly random bit is flipped per corruption, drawn from
        ``rng``.
    bits : sequence of int, optional
        Candidate bit positions for the random choice (e.g. only exponent
        bits).  Ignored when ``bit`` is given.
    rng : seed or Generator, optional
        Randomness source for random bit selection.
    """

    name = "bitflip"

    def __init__(self, bit: int | None = None, bits=None, rng=None):
        if bit is not None and not 0 <= bit <= 63:
            raise ValueError(f"bit must be in [0, 63], got {bit}")
        self.bit = bit
        self.bits = tuple(bits) if bits is not None else None
        self._rng = as_generator(rng)
        self.last_bit: int | None = None

    def corrupt(self, value: float) -> float:
        if self.bit is not None:
            self.last_bit = self.bit
            return flip_bit(value, self.bit)
        corrupted, bit = random_bit_flip(value, rng=self._rng, bits=self.bits)
        self.last_bit = bit
        return corrupted

    def describe(self) -> str:
        return f"bit flip (bit={'random' if self.bit is None else self.bit})"

    def to_spec(self) -> dict:
        spec = {"name": "bitflip"}
        if self.bit is not None:
            spec["bit"] = self.bit
        if self.bits is not None:
            spec["bits"] = list(self.bits)
        return spec


#: The paper's three corruption classes (Section VII-B-1), keyed by the label
#: used throughout the experiment harness and EXPERIMENTS.md.
PAPER_FAULT_CLASSES: dict[str, ScalingFault] = {
    "large": ScalingFault(1e150),
    "slightly_smaller": ScalingFault(10.0 ** -0.5),
    "near_zero": ScalingFault(1e-300),
}
