"""Fault models: what a corrupted value looks like.

The paper deliberately models SDC as an arbitrary numerical error rather than
a bit flip, and evaluates three representative *multiplicative* corruption
classes relative to the correct value ``h``:

1. very large            — ``h * 1e+150``  (detectable: exceeds ``||A||_F``),
2. slightly smaller      — ``h * 10**-0.5`` (undetectable),
3. very small, near zero — ``h * 1e-300``  (undetectable).

:data:`PAPER_FAULT_CLASSES` exposes exactly these three.  The other models
(bit flips, overwrites, offsets, zeroing, NaN/Inf) support the wider test
suite and the detector-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.faults.bitflip import flip_bit, random_bit_flip
from repro.utils.rng import as_generator

__all__ = [
    "FaultModel",
    "ScalingFault",
    "AbsoluteFault",
    "AdditiveFault",
    "ZeroFault",
    "NaNFault",
    "InfFault",
    "BitFlipFault",
    "MultiBitFault",
    "BurstFault",
    "StuckAtFault",
    "PAPER_FAULT_CLASSES",
]


class FaultModel:
    """Base class for fault models.

    A model is a deterministic (or seeded) transformation of a correct value
    into a corrupted one.  Models are stateless with respect to the solve;
    all "when does the fault strike" logic lives in the schedule/injector.
    """

    name = "fault"

    def corrupt(self, value: float) -> float:
        """Return the corrupted version of a scalar ``value``."""
        raise NotImplementedError

    def corrupt_vector(self, vec: np.ndarray, index: int | None = None, rng=None) -> np.ndarray:
        """Return a copy of ``vec`` with one element corrupted.

        Parameters
        ----------
        vec : numpy.ndarray
            The correct vector.
        index : int, optional
            Element to corrupt; a random element is chosen when omitted.
        rng : seed or Generator, optional
            Randomness source for the random-element choice.
        """
        vec = np.asarray(vec, dtype=np.float64)
        out = vec.copy()
        if out.size == 0:
            return out
        if index is None:
            index = int(as_generator(rng).integers(0, out.size))
        if not 0 <= index < out.size:
            raise IndexError(f"index {index} outside vector of size {out.size}")
        flat = out.reshape(-1)
        flat[index] = self.corrupt(float(flat[index]))
        return out

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return self.name

    def to_spec(self) -> dict:
        """The registry spec (dict) that rebuilds this model.

        Used by :mod:`repro.specs` to serialize campaign configurations that
        carry built fault-model instances.  Every model serializes to a dict
        with a ``"name"`` key (uniform shape, so spec consumers never need a
        string-vs-dict case split); subclasses with constructor arguments
        add their argument fields.
        """
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ScalingFault(FaultModel):
    """Multiplicative corruption: ``h -> h * factor`` (the paper's model).

    Parameters
    ----------
    factor : float
        Corruption factor.  The paper's three classes use ``1e+150``,
        ``10**-0.5`` and ``1e-300``.
    """

    name = "scaling"

    def __init__(self, factor: float):
        self.factor = float(factor)

    def corrupt(self, value: float) -> float:
        with np.errstate(over="ignore", under="ignore", invalid="ignore"):
            return float(np.float64(value) * np.float64(self.factor))

    def describe(self) -> str:
        return f"h * {self.factor:g}"

    def to_spec(self) -> dict:
        return {"name": "scaling", "factor": self.factor}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScalingFault(factor={self.factor:g})"


class AbsoluteFault(FaultModel):
    """Overwrite corruption: the corrupted value is a fixed constant."""

    name = "absolute"

    def __init__(self, replacement: float):
        self.replacement = float(replacement)

    def corrupt(self, value: float) -> float:
        return self.replacement

    def describe(self) -> str:
        return f"h := {self.replacement:g}"

    def to_spec(self) -> dict:
        return {"name": "absolute", "replacement": self.replacement}


class AdditiveFault(FaultModel):
    """Offset corruption: ``h -> h + delta``."""

    name = "additive"

    def __init__(self, delta: float):
        self.delta = float(delta)

    def corrupt(self, value: float) -> float:
        with np.errstate(over="ignore", invalid="ignore"):
            return float(np.float64(value) + np.float64(self.delta))

    def describe(self) -> str:
        return f"h + {self.delta:g}"

    def to_spec(self) -> dict:
        return {"name": "additive", "delta": self.delta}


class ZeroFault(AbsoluteFault):
    """Replace the value with exactly zero (a total loss of information)."""

    name = "zero"

    def __init__(self):
        super().__init__(0.0)

    def describe(self) -> str:
        return "h := 0"

    def to_spec(self) -> dict:
        return {"name": "zero"}


class NaNFault(AbsoluteFault):
    """Replace the value with NaN (trivially detectable via IEEE-754)."""

    name = "nan"

    def __init__(self):
        super().__init__(float("nan"))

    def describe(self) -> str:
        return "h := NaN"

    def to_spec(self) -> dict:
        return {"name": "nan"}


class InfFault(AbsoluteFault):
    """Replace the value with +Inf (trivially detectable via IEEE-754)."""

    name = "inf"

    def __init__(self):
        super().__init__(float("inf"))

    def describe(self) -> str:
        return "h := Inf"

    def to_spec(self) -> dict:
        return {"name": "inf"}


class BitFlipFault(FaultModel):
    """Flip one bit of the IEEE-754 representation.

    Parameters
    ----------
    bit : int, optional
        Bit position (0 = least-significant mantissa bit, 63 = sign).  When
        omitted, a uniformly random bit is flipped per corruption, drawn from
        ``rng``.
    bits : sequence of int, optional
        Candidate bit positions for the random choice (e.g. only exponent
        bits).  Ignored when ``bit`` is given.
    rng : seed or Generator, optional
        Randomness source for random bit selection.
    """

    name = "bitflip"

    def __init__(self, bit: int | None = None, bits=None, rng=None):
        if bit is not None and not 0 <= bit <= 63:
            raise ValueError(f"bit must be in [0, 63], got {bit}")
        self.bit = bit
        self.bits = tuple(bits) if bits is not None else None
        self._rng = as_generator(rng)
        self.last_bit: int | None = None

    def corrupt(self, value: float) -> float:
        if self.bit is not None:
            self.last_bit = self.bit
            return flip_bit(value, self.bit)
        corrupted, bit = random_bit_flip(value, rng=self._rng, bits=self.bits)
        self.last_bit = bit
        return corrupted

    def describe(self) -> str:
        return f"bit flip (bit={'random' if self.bit is None else self.bit})"

    def to_spec(self) -> dict:
        spec = {"name": "bitflip"}
        if self.bit is not None:
            spec["bit"] = self.bit
        if self.bits is not None:
            spec["bits"] = list(self.bits)
        return spec


class MultiBitFault(FaultModel):
    """Flip several bits of the IEEE-754 representation at once.

    Models a multi-bit upset (e.g. a charged particle clipping adjacent
    cells of a register).  Deterministic when explicit ``bits`` are given;
    otherwise ``num_bits`` distinct random positions are drawn per
    corruption.

    Parameters
    ----------
    num_bits : int
        How many distinct bits to flip when ``bits`` is omitted.
    bits : sequence of int, optional
        Explicit bit positions to flip (makes the model deterministic —
        what the cross-backend identity tests require).
    rng : seed or Generator, optional
        Randomness source for random bit selection.
    """

    name = "multibit"

    def __init__(self, num_bits: int = 2, bits=None, rng=None):
        num_bits = int(num_bits)
        if bits is not None:
            bits = tuple(int(b) for b in bits)
            if len(set(bits)) != len(bits):
                raise ValueError(f"bits must be distinct, got {bits}")
            for b in bits:
                if not 0 <= b <= 63:
                    raise ValueError(f"bit must be in [0, 63], got {b}")
        elif not 1 <= num_bits <= 64:
            raise ValueError(f"num_bits must be in [1, 64], got {num_bits}")
        self.num_bits = num_bits
        self.bits = bits
        self._rng = as_generator(rng)
        self.last_bits: tuple[int, ...] | None = None

    def corrupt(self, value: float) -> float:
        if self.bits is not None:
            chosen = self.bits
        else:
            chosen = tuple(int(b) for b in
                           self._rng.choice(64, size=self.num_bits, replace=False))
        out = float(value)
        for bit in chosen:
            out = flip_bit(out, bit)
        self.last_bits = chosen
        return out

    def describe(self) -> str:
        if self.bits is not None:
            return f"multi-bit flip (bits={list(self.bits)})"
        return f"multi-bit flip ({self.num_bits} random bits)"

    def to_spec(self) -> dict:
        spec = {"name": "multibit", "num_bits": self.num_bits}
        if self.bits is not None:
            spec["bits"] = list(self.bits)
        return spec


class BurstFault(FaultModel):
    """Flip a contiguous run of bits (a burst error).

    Deterministic: flips bits ``start_bit .. start_bit + width - 1`` of the
    IEEE-754 representation.  A burst across the exponent boundary is the
    classic "datapath glitch" that single-bit models understate.

    Parameters
    ----------
    start_bit : int
        Lowest bit position of the burst (0 = LSB of the mantissa).
    width : int
        Number of consecutive bits flipped (clipped at bit 63).
    """

    name = "burst"

    def __init__(self, start_bit: int = 48, width: int = 4):
        start_bit, width = int(start_bit), int(width)
        if not 0 <= start_bit <= 63:
            raise ValueError(f"start_bit must be in [0, 63], got {start_bit}")
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        self.start_bit = start_bit
        self.width = width

    @property
    def bits(self) -> tuple[int, ...]:
        """The bit positions the burst flips."""
        return tuple(range(self.start_bit, min(self.start_bit + self.width, 64)))

    def corrupt(self, value: float) -> float:
        out = float(value)
        for bit in self.bits:
            out = flip_bit(out, bit)
        return out

    def describe(self) -> str:
        return f"burst flip (bits {self.start_bit}..{self.bits[-1]})"

    def to_spec(self) -> dict:
        return {"name": "burst", "start_bit": self.start_bit, "width": self.width}


class StuckAtFault(FaultModel):
    """Force one bit of the IEEE-754 representation to a fixed level.

    The canonical *permanent* hardware fault: a stuck-at-1 exponent bit turns
    most values huge, a stuck-at-0 sign bit erases negativity.  Unlike a
    flip, corrupting an already-conforming value is a no-op — paired with a
    persistent schedule this reproduces genuine stuck-hardware behavior.

    Parameters
    ----------
    bit : int
        Bit position in ``[0, 63]``.
    value : int
        The stuck level, 0 or 1 (default 1).
    """

    name = "stuck_at"

    def __init__(self, bit: int = 62, value: int = 1):
        bit, value = int(bit), int(value)
        if not 0 <= bit <= 63:
            raise ValueError(f"bit must be in [0, 63], got {bit}")
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value}")
        self.bit = bit
        self.value = value

    def corrupt(self, value: float) -> float:
        as_int = np.float64(value).view(np.uint64)
        mask = np.uint64(1 << self.bit)
        if self.value:
            as_int = as_int | mask
        else:
            as_int = as_int & ~mask
        return float(as_int.view(np.float64))

    def describe(self) -> str:
        return f"stuck-at-{self.value} (bit {self.bit})"

    def to_spec(self) -> dict:
        return {"name": "stuck_at", "bit": self.bit, "value": self.value}


#: The paper's three corruption classes (Section VII-B-1), keyed by the label
#: used throughout the experiment harness and EXPERIMENTS.md.
PAPER_FAULT_CLASSES: dict[str, ScalingFault] = {
    "large": ScalingFault(1e150),
    "slightly_smaller": ScalingFault(10.0 ** -0.5),
    "near_zero": ScalingFault(1e-300),
}
