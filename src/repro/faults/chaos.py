"""Infrastructure fault injection for the sharded supervisor.

The paper's fault models corrupt *arithmetic*; this module corrupts the
*execution machinery* — it is how the test suite and the CI ``chaos-smoke``
job prove that :class:`~repro.exec.supervisor.ShardedSupervisor` turns
worker murder into nothing worse than a retry.  A :class:`ChaosPolicy` is
handed to the executor (``CampaignExecutor(..., chaos=...)`` or
``run_campaign(..., chaos=...)``) and rides into every shard worker, where
it fires at scheduled trial indices:

* ``kill_before`` — SIGKILL the worker right before the trial's solve (the
  OOM-killer / segfault scenario);
* ``raise_before`` — raise :class:`ChaosError` outside the solve's crash
  isolation (an infrastructure bug, not a trial error);
* ``kill_during_append`` — flush a torn partial line, then SIGKILL (crash
  mid-append: exercises tail healing);
* ``kill_after_append`` — SIGKILL right after the record is durable
  (exercises the no-blame / no-duplicate path);
* ``hang_before`` — sleep before the solve (exercises the hard timeout);
* ``heartbeat_delay`` — stall every heartbeat write.

Each scheduled firing is **one-shot across worker restarts**: firings are
claimed through ``O_EXCL`` marker files in a state directory shared by all
workers of the run (the supervisor binds it under the run directory via
:meth:`ChaosPolicy.bound_to`), so "kill trial 3's worker twice" means
exactly twice no matter how many times the worker respawns — which is
precisely how a test drives a trial to poison quarantine.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, replace

__all__ = ["ChaosError", "ChaosPolicy"]

_STATE_DIR = "chaos"


class ChaosError(RuntimeError):
    """An injected infrastructure failure (``raise_before`` firings)."""


def _normalize(schedule) -> dict:
    """``{trial index: times}`` with int keys/values (``times >= 1``)."""
    out = {}
    for index, times in dict(schedule or {}).items():
        times = int(times)
        if times < 1:
            raise ValueError(
                f"chaos schedule times must be >= 1, got {times} "
                f"for trial {index}")
        out[int(index)] = times
    return out


@dataclass(frozen=True)
class ChaosPolicy:
    """A schedule of infrastructure faults, keyed by trial index.

    Every schedule maps a trial index to how many times that fault fires
    for that trial (counted across worker restarts); ``times=1`` is the
    common case, ``times >= max_retries`` drives the trial to poison
    quarantine.  The policy object itself is immutable; firing state lives
    in marker files under ``state_dir``.
    """

    kill_before: dict = field(default_factory=dict)
    raise_before: dict = field(default_factory=dict)
    kill_during_append: dict = field(default_factory=dict)
    kill_after_append: dict = field(default_factory=dict)
    #: ``{trial index: seconds}`` — sleep before the solve (one-shot).
    hang_before: dict = field(default_factory=dict)
    #: Seconds every heartbeat write is stalled (0 = no delay).
    heartbeat_delay: float = 0.0
    #: Where firing markers live; ``None`` until :meth:`bound_to`.
    state_dir: str | None = None

    def __post_init__(self):
        for name in ("kill_before", "raise_before", "kill_during_append",
                     "kill_after_append"):
            object.__setattr__(self, name, _normalize(getattr(self, name)))
        object.__setattr__(self, "hang_before",
                           {int(k): float(v)
                            for k, v in dict(self.hang_before or {}).items()})
        if self.heartbeat_delay < 0:
            raise ValueError(f"heartbeat_delay must be >= 0, "
                             f"got {self.heartbeat_delay}")

    # ------------------------------------------------------------------ #
    def bound_to(self, run_dir: str) -> "ChaosPolicy":
        """This policy with its firing state rooted under ``run_dir``."""
        state_dir = os.path.join(run_dir, _STATE_DIR)
        os.makedirs(state_dir, exist_ok=True)
        return replace(self, state_dir=state_dir)

    def _fire(self, tag: str, schedule: dict, index: int) -> bool:
        """Claim one firing of ``tag`` for ``index`` (False when spent)."""
        times = schedule.get(int(index))
        if not times:
            return False
        if self.state_dir is None:
            raise RuntimeError(
                "ChaosPolicy is unbound; the executor binds it to the run "
                "directory (call bound_to() when using it directly)")
        for attempt in range(times):
            marker = os.path.join(self.state_dir, f"{tag}-{index}-{attempt}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # this firing already happened (earlier worker)
            os.close(fd)
            return True
        return False

    # ------------------------------------------------------------------ #
    # hooks called from inside the shard worker
    # ------------------------------------------------------------------ #
    def on_heartbeat(self, index: int) -> None:
        """Stall the heartbeat write (slow-disk / overloaded-host chaos)."""
        if self.heartbeat_delay:
            time.sleep(self.heartbeat_delay)

    def on_trial_start(self, index: int) -> None:
        """Fire hang/raise/kill faults scheduled right before the solve."""
        if self.hang_before.get(int(index)) and self._fire(
                "hang", {k: 1 for k in self.hang_before}, index):
            time.sleep(self.hang_before[int(index)])
        if self._fire("raise", self.raise_before, index):
            raise ChaosError(f"chaos: injected failure before trial {index}")
        if self._fire("kill", self.kill_before, index):
            os.kill(os.getpid(), signal.SIGKILL)

    def should_tear(self, index: int) -> bool:
        """Whether this append should tear (the worker SIGKILLs itself)."""
        return self._fire("tear", self.kill_during_append, index)

    def on_trial_appended(self, index: int) -> None:
        """Fire kills scheduled right after the record became durable."""
        if self._fire("after", self.kill_after_append, index):
            os.kill(os.getpid(), signal.SIGKILL)
