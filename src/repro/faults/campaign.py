"""Fault-injection campaigns: the engine behind Figures 3 and 4.

A campaign runs the nested FT-GMRES solver once without faults to establish
the failure-free iteration count, then once per (fault class, injection
location) pair, injecting exactly one SDC event per run into the chosen
Hessenberg coefficient.  The result is the set of series plotted in the
paper: "number of outer iterations to convergence" versus "aggregate inner
solve iteration that faults".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detectors import Detector
from repro.core.ftgmres import FTGMRESParameters, ft_gmres
from repro.core.gmres import GMRESParameters
from repro.core.fgmres import FGMRESParameters
from repro.core.status import NestedSolverResult
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel, PAPER_FAULT_CLASSES
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import TestProblem
from repro.registry import (
    resolve_detector,
    resolve_fault_classes,
    resolve_preconditioner,
    resolve_problem,
)
from repro.specs import CampaignSpec

__all__ = ["TrialRecord", "CampaignResult", "FaultCampaign", "sweep_injection_locations"]

#: Single source of truth for campaign defaults: the :class:`CampaignSpec`
#: field defaults.  Both :class:`FaultCampaign` and
#: :func:`sweep_injection_locations` fill their ``None`` sentinels from here,
#: so the numbers cannot drift between the declarative and keyword APIs.
_DEFAULTS = CampaignSpec()


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one faulted nested solve."""

    fault_class: str
    fault_description: str
    aggregate_inner_iteration: int
    mgs_position: str
    outer_iterations: int
    total_inner_iterations: int
    converged: bool
    status: str
    residual_norm: float
    faults_injected: int
    faults_detected: int
    detector_enabled: bool

    def to_dict(self) -> dict:
        """JSON-ready dict (the common result schema, ``kind="trial"``)."""
        from dataclasses import asdict

        return {"kind": "trial", **asdict(self)}

    def summary(self) -> dict:
        """The headline fields of this trial (common result schema)."""
        return {
            "kind": "trial",
            "status": self.status,
            "converged": self.converged,
            "fault_class": self.fault_class,
            "aggregate_inner_iteration": self.aggregate_inner_iteration,
            "outer_iterations": self.outer_iterations,
            "residual_norm": self.residual_norm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        data = {k: v for k, v in data.items() if k != "kind"}
        return cls(**data)


@dataclass
class CampaignResult:
    """All trials of a campaign plus the failure-free reference."""

    problem_name: str
    mgs_position: str
    inner_iterations: int
    detector_enabled: bool
    failure_free_outer: int
    failure_free_residual: float
    trials: list[TrialRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def fault_classes(self) -> list[str]:
        """Fault-class labels present in the campaign, in first-seen order."""
        seen: list[str] = []
        for t in self.trials:
            if t.fault_class not in seen:
                seen.append(t.fault_class)
        return seen

    def series(self, fault_class: str) -> tuple[np.ndarray, np.ndarray]:
        """The plotted series for one fault class.

        Returns ``(locations, outer_iterations)`` sorted by location — the x
        and y data of one panel of Figure 3 or 4.
        """
        pts = [(t.aggregate_inner_iteration, t.outer_iterations)
               for t in self.trials if t.fault_class == fault_class]
        pts.sort()
        if not pts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        locations, outers = zip(*pts)
        return np.asarray(locations, dtype=np.int64), np.asarray(outers, dtype=np.int64)

    def max_outer(self, fault_class: str) -> int:
        """Worst-case outer-iteration count over the sweep for one class."""
        _, outers = self.series(fault_class)
        return int(outers.max()) if outers.size else 0

    def max_increase(self, fault_class: str) -> int:
        """Worst-case increase over the failure-free outer count."""
        return max(self.max_outer(fault_class) - self.failure_free_outer, 0)

    def percent_increase(self, fault_class: str) -> float:
        """Worst-case percentage increase in time-to-solution (outer iterations)."""
        if self.failure_free_outer == 0:
            return 0.0
        return 100.0 * self.max_increase(fault_class) / self.failure_free_outer

    def detection_rate(self, fault_class: str) -> float:
        """Fraction of trials of this class in which the detector fired."""
        trials = [t for t in self.trials if t.fault_class == fault_class]
        if not trials:
            return 0.0
        return sum(1 for t in trials if t.faults_detected > 0) / len(trials)

    def non_converged(self) -> list[TrialRecord]:
        """Trials that failed to converge within the outer-iteration budget."""
        return [t for t in self.trials if not t.converged]

    def summary(self) -> dict:
        """Aggregate statistics keyed by fault class (used by EXPERIMENTS.md)."""
        return {
            cls: {
                "max_outer": self.max_outer(cls),
                "max_increase": self.max_increase(cls),
                "percent_increase": self.percent_increase(cls),
                "detection_rate": self.detection_rate(cls),
                "trials": sum(1 for t in self.trials if t.fault_class == cls),
            }
            for cls in self.fault_classes()
        }

    def to_dict(self) -> dict:
        """JSON-ready dict (the common result schema, ``kind="campaign"``).

        Round-trips through :meth:`from_dict`, so whole campaign artifacts
        can be saved next to the spec that produced them.
        """
        return {
            "kind": "campaign",
            "problem_name": self.problem_name,
            "mgs_position": self.mgs_position,
            "inner_iterations": self.inner_iterations,
            "detector_enabled": self.detector_enabled,
            "failure_free_outer": self.failure_free_outer,
            "failure_free_residual": self.failure_free_residual,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a campaign result from :meth:`to_dict` output."""
        data = {k: v for k, v in data.items() if k != "kind"}
        trials = [TrialRecord.from_dict(t) for t in data.pop("trials", [])]
        return cls(trials=trials, **data)


def _merged_budget(solver_field: str, solver_value, campaign_field: str,
                   campaign_value, campaign_default, error_cls):
    """Merge a solver-spec budget with its campaign-level counterpart.

    The solver value wins when set; a campaign value that was *also* set
    (differs from the default) and disagrees is a configuration error rather
    than something to clobber silently.
    """
    if solver_value is None:
        return campaign_value
    if campaign_value != campaign_default and campaign_value != solver_value:
        raise error_cls(solver_field,
                        f"conflicts with {campaign_field}={campaign_value}; "
                        f"set only one of them")
    return solver_value


class FaultCampaign:
    """Sweep single-SDC injections over every inner-iteration location.

    Parameters
    ----------
    problem : TestProblem
        The linear system to solve (see :mod:`repro.gallery.problems`).
    inner_iterations : int
        Fixed inner GMRES iteration count per outer iteration (paper: 25).
    max_outer : int
        Outer-iteration budget; trials that need more are reported as
        non-converged at this count.
    outer_tol : float
        Outer relative residual tolerance.
    fault_classes : dict[str, FaultModel]
        The corruption models to sweep (default: the paper's three classes).
    mgs_position : {"first", "last"}
        Which Modified Gram–Schmidt coefficient to corrupt (Figures 3a/4a use
        "first", 3b/4b use "last").
    detector : Detector, registry spec, or None
        ``"bound"`` enables the paper's Hessenberg-bound detector (built from
        ``||A||_F``); ``None`` disables detection; any other registered
        detector spec (string or dict, see :mod:`repro.registry`) also works.
    detector_response : str
        Response policy when the detector fires (default ``"zero"``:
        filter the impossible value, as the paper advocates).
    inner_params, outer_params : optional
        Overrides for the nested-solver configuration.
    site : str
        Injection site (default ``"hessenberg"``).
    """

    def __init__(
        self,
        problem: TestProblem,
        *,
        inner_iterations: int | None = None,
        max_outer: int | None = None,
        outer_tol: float | None = None,
        fault_classes: dict[str, FaultModel] | str | None = None,
        mgs_position: str | None = None,
        detector: Detector | str | dict | None = None,
        detector_response: str | None = None,
        inner_params: GMRESParameters | None = None,
        outer_params: FGMRESParameters | None = None,
        site: str | None = None,
    ):
        # ``None`` sentinels defer to the CampaignSpec field defaults — the
        # one place the paper's 25/100/1e-8 configuration is written down.
        self.problem = problem
        self.inner_iterations = int(inner_iterations if inner_iterations is not None
                                    else _DEFAULTS.inner_iterations)
        self.max_outer = int(max_outer if max_outer is not None else _DEFAULTS.max_outer)
        self.outer_tol = float(outer_tol if outer_tol is not None else _DEFAULTS.outer_tol)
        self.fault_classes = resolve_fault_classes(
            fault_classes if fault_classes is not None else dict(PAPER_FAULT_CLASSES))
        mgs_position = mgs_position if mgs_position is not None else _DEFAULTS.mgs_position
        if mgs_position not in ("first", "last"):
            raise ValueError(f"mgs_position must be 'first' or 'last', got {mgs_position!r}")
        self.mgs_position = mgs_position
        self.site = site if site is not None else _DEFAULTS.site
        self.detector_response = (detector_response if detector_response is not None
                                  else _DEFAULTS.detector_response)
        # Keep the constructor *specifications* so worker processes can
        # rebuild an equivalent campaign (see to_config).
        self._detector_spec = detector
        self._inner_params_spec = inner_params
        self._outer_params_spec = outer_params

        self.detector = resolve_detector(detector, A=problem.A)

        inner = inner_params or GMRESParameters(tol=0.0, maxiter=self.inner_iterations)
        inner = inner.replace(
            maxiter=self.inner_iterations,
            detector=self.detector,
            detector_response=self.detector_response,
        )
        if isinstance(inner.preconditioner, (str, dict)):
            inner = inner.replace(preconditioner=resolve_preconditioner(
                inner.preconditioner, A=problem.A))
        outer = outer_params or FGMRESParameters(tol=self.outer_tol, max_outer=self.max_outer)
        outer = outer.replace(tol=self.outer_tol, max_outer=self.max_outer)
        if isinstance(outer.detector, (str, dict)):
            outer = outer.replace(detector=resolve_detector(
                outer.detector, A=problem.A, bound_method=outer.bound_method))
        self.params = FTGMRESParameters(outer=outer, inner=inner)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: CampaignSpec | dict, problem: TestProblem | None = None
                  ) -> "FaultCampaign":
        """Build a campaign from a declarative :class:`~repro.specs.CampaignSpec`.

        Parameters
        ----------
        spec : CampaignSpec or dict
            The campaign description.  Dicts are validated through
            :meth:`CampaignSpec.from_dict` first.
        problem : TestProblem, optional
            The system to sweep.  Exactly one of this argument and
            ``spec.problem`` (a gallery registry spec like ``"poisson:30"``)
            must be given.
        """
        from repro.specs import SpecError

        spec = CampaignSpec.coerce(spec)
        if (problem is None) == (spec.problem is None):
            raise ValueError(
                "exactly one of the problem argument and spec.problem must be "
                "given" if problem is not None else
                "no problem to sweep: pass a TestProblem or set spec.problem "
                "to a gallery spec (e.g. 'poisson:30')")
        if problem is None:
            problem = resolve_problem(spec.problem)
        inner_params = outer_params = None
        inner_iterations, max_outer = spec.inner_iterations, spec.max_outer
        detector, detector_response = spec.detector, spec.detector_response
        if spec.solver is not None:
            solver_params = spec.solver.to_ftgmres_parameters()
            inner_params, outer_params = solver_params.inner, solver_params.outer
            inner_spec = spec.solver.inner
            # The solver spec's explicit inner settings take effect (so e.g.
            # `--set solver.inner.maxiter=12` or an inner detector do what
            # they say); they may not contradict a campaign-level setting
            # that was also given — the campaign constructor would otherwise
            # clobber them silently.
            inner_iterations = _merged_budget(
                "solver.inner.maxiter",
                inner_spec.maxiter if inner_spec is not None else None,
                "inner_iterations", spec.inner_iterations,
                _DEFAULTS.inner_iterations, SpecError)
            max_outer = _merged_budget(
                "solver.max_outer", spec.solver.max_outer,
                "max_outer", spec.max_outer, _DEFAULTS.max_outer, SpecError)
            if inner_spec is not None and inner_spec.detector is not None:
                if detector is not None and detector != inner_spec.detector:
                    raise SpecError("solver.inner.detector",
                                    f"conflicts with detector={detector!r}; "
                                    f"set only one of them")
                detector = inner_spec.detector
                if inner_spec.detector_response is not None:
                    detector_response = inner_spec.detector_response
        return cls(
            problem,
            inner_iterations=inner_iterations,
            max_outer=max_outer,
            outer_tol=spec.outer_tol,
            fault_classes=spec.fault_classes,
            mgs_position=spec.mgs_position,
            detector=detector,
            detector_response=detector_response,
            inner_params=inner_params,
            outer_params=outer_params,
            site=spec.site,
        )

    def run_failure_free(self) -> NestedSolverResult:
        """Run the nested solver without any fault injection."""
        return ft_gmres(self.problem.A, self.problem.b, self.problem.x0, params=self.params)

    def _trial_schedule(self, aggregate_inner_iteration: int) -> InjectionSchedule:
        """The single-transient-SDC schedule of one campaign trial.

        Shared by the serial and the batched execution paths so both inject
        under exactly the same schedule.
        """
        return InjectionSchedule(
            site=self.site,
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            persistence="transient",
        )

    def run_single(self, fault_class: str, model: FaultModel,
                   aggregate_inner_iteration: int) -> TrialRecord:
        """Run one faulted nested solve and summarize it as a TrialRecord."""
        schedule = self._trial_schedule(aggregate_inner_iteration)
        injector = FaultInjector(model, schedule)
        result = ft_gmres(self.problem.A, self.problem.b, self.problem.x0,
                          params=self.params, injector=injector)
        return TrialRecord(
            fault_class=fault_class,
            fault_description=model.describe(),
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            outer_iterations=result.outer_iterations,
            total_inner_iterations=result.total_inner_iterations,
            converged=result.converged,
            status=result.status.value,
            residual_norm=result.residual_norm,
            faults_injected=injector.injections_performed,
            faults_detected=result.faults_detected,
            detector_enabled=self.detector is not None,
        )

    def run_spec(self, spec) -> TrialRecord:
        """Run the trial described by a :class:`~repro.exec.spec.TrialSpec`."""
        return self.run_single(spec.fault_class, self._model_for(spec.fault_class),
                               spec.aggregate_inner_iteration)

    def _model_for(self, fault_class: str) -> FaultModel:
        try:
            return self.fault_classes[fault_class]
        except KeyError:
            raise KeyError(
                f"unknown fault class {fault_class!r}; "
                f"campaign has {sorted(self.fault_classes)}"
            ) from None

    # ------------------------------------------------------------------ #
    # trial-batched lockstep execution
    # ------------------------------------------------------------------ #
    def batched_unsupported_reason(self) -> str | None:
        """Why this campaign cannot run on the lockstep batched engine.

        ``None`` means the configuration is supported.  The supported space
        is the paper's experiment space (MGS inside and out, ``hessenberg``
        injection site, no detector or the Hessenberg-bound detector with a
        non-raising response); exotic configurations belong on the serial
        backend.
        """
        from repro.core.batched import batched_support_reason

        return batched_support_reason(self.params, self.site)

    def run_specs_batched(self, specs, *, batch_size: int | None = None,
                          progress=None, progress_offset: int = 0,
                          progress_total: int | None = None) -> list[TrialRecord]:
        """Run trial specs through the lockstep batched engine.

        Trials advance ``batch_size`` at a time through shared block kernels
        (see :mod:`repro.core.batched`).  Trials that leave the lockstep
        common path — happy breakdown, early inner convergence, the outer
        breakdown trichotomy — are transparently rerun through the serial
        reference implementation, so the output is equivalent to
        :meth:`run_spec` on every spec: identical iteration counts, statuses
        and event streams, residual norms to ~1e-10.

        Returns records ordered by ``spec.index`` (the canonical order).
        """
        from repro.core.batched import BatchedTrialSetup, batched_ft_gmres
        from repro.faults.injector import FaultInjector

        reason = self.batched_unsupported_reason()
        if reason is not None:
            raise ValueError(
                f"campaign configuration not supported by the batched backend "
                f"({reason}); use backend='serial' (or 'process')")
        specs = list(specs)
        if batch_size is None:
            from repro.exec.executor import DEFAULT_BATCH_SIZE

            batch_size = DEFAULT_BATCH_SIZE
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        total = progress_total if progress_total is not None else len(specs)
        done = progress_offset
        records: list[tuple[int, TrialRecord]] = []
        # Strided batch composition: batch i takes specs[i::num_batches], so
        # every batch spans the whole injection-location range instead of a
        # narrow consecutive window.  Lanes then fork off the shared
        # failure-free prefix spread across the sweep, which is what makes
        # the prefix sharing in the lockstep engine pay (results are
        # reassembled by spec.index, so composition is free).
        num_batches = -(-len(specs) // batch_size) if specs else 0
        for start in range(num_batches):
            chunk = specs[start::num_batches]
            setups = []
            for spec in chunk:
                model = self._model_for(spec.fault_class)
                schedule = self._trial_schedule(spec.aggregate_inner_iteration)
                setups.append(BatchedTrialSetup(
                    injector=FaultInjector(model, schedule),
                    hessenberg_target=schedule.aggregate_inner_iteration,
                ))
            results = batched_ft_gmres(self.problem.A, self.problem.b,
                                       self.problem.x0, self.params, setups)
            for spec, setup, result in zip(chunk, setups, results):
                if result is None:
                    # Off the lockstep common path: the serial reference
                    # engine is the fallback, so rare paths never rely on
                    # the batched reproduction of them.
                    record = self.run_spec(spec)
                else:
                    model = self._model_for(spec.fault_class)
                    record = TrialRecord(
                        fault_class=spec.fault_class,
                        fault_description=model.describe(),
                        aggregate_inner_iteration=int(spec.aggregate_inner_iteration),
                        mgs_position=self.mgs_position,
                        outer_iterations=result.outer_iterations,
                        total_inner_iterations=result.total_inner_iterations,
                        converged=result.converged,
                        status=result.status.value,
                        residual_norm=result.residual_norm,
                        faults_injected=setup.injector.injections_performed,
                        faults_detected=result.faults_detected,
                        detector_enabled=self.detector is not None,
                    )
                records.append((spec.index, record))
            done += len(chunk)
            if progress is not None:
                progress(done, total)
        records.sort(key=lambda pair: pair[0])
        return [record for _, record in records]

    # ------------------------------------------------------------------ #
    # execution-engine integration
    # ------------------------------------------------------------------ #
    def to_config(self, problem_factory=None):
        """Snapshot this campaign as a picklable executor configuration.

        Parameters
        ----------
        problem_factory : ProblemFactory, optional
            When given, workers rebuild the problem from the factory instead
            of unpickling the matrix (see :class:`repro.exec.spec.ProblemFactory`).
        """
        from repro.exec.spec import CampaignConfig

        return CampaignConfig(
            problem=None if problem_factory is not None else self.problem,
            problem_factory=problem_factory,
            inner_iterations=self.inner_iterations,
            max_outer=self.max_outer,
            outer_tol=self.outer_tol,
            fault_classes=dict(self.fault_classes),
            mgs_position=self.mgs_position,
            detector=self._detector_spec,
            detector_response=self.detector_response,
            site=self.site,
            inner_params=self._inner_params_spec,
            outer_params=self._outer_params_spec,
        )

    def trial_specs(self, locations) -> list:
        """The campaign's work list in canonical (serial) order."""
        from repro.exec.spec import TrialSpec

        locations = list(locations)  # every fault class sweeps all locations
        return [
            TrialSpec(index=index, fault_class=fault_class,
                      aggregate_inner_iteration=int(loc))
            for index, (fault_class, loc) in enumerate(
                (cls, loc) for cls in self.fault_classes for loc in locations)
        ]

    def run(self, locations=None, stride: int = 1, progress=None, *,
            backend: str | None = None, workers: int | None = None,
            chunksize: int | None = None, batch_size: int | None = None,
            executor=None) -> CampaignResult:
        """Run the full campaign.

        Parameters
        ----------
        locations : sequence of int, optional
            Aggregate inner-iteration indices to fault.  Defaults to every
            index reachable in the failure-free run
            (``failure_free_outer * inner_iterations``), exactly as in the
            paper.
        stride : int
            Keep every ``stride``-th default location (used by the fast
            benchmark configurations; ``stride=1`` reproduces the paper).
        progress : callable, optional
            ``progress(done, total)`` callback.
        backend : {"serial", "thread", "process", "batched"}, optional
            Execution backend; ``None`` auto-selects ``process`` when the
            resolved worker count exceeds 1.  ``"batched"`` advances trials
            in lockstep through shared block kernels in this process — the
            right choice on single-CPU hosts, where process dispatch is pure
            overhead.
        workers : int, optional
            Worker count (default: the ``REPRO_WORKERS`` environment
            variable, then 1; ``0`` means one per CPU).
        chunksize : int, optional
            Trials per dispatched task (parallel backends only).
        batch_size : int, optional
            Trials advanced in lockstep per batch (batched backend only).
        executor : CampaignExecutor, optional
            A pre-built executor; overrides ``backend``/``workers``/
            ``chunksize``/``batch_size``.

        Returns
        -------
        CampaignResult
            Trials appear in the canonical (fault class, location) order
            regardless of backend.  For stateless detectors and
            deterministic fault models (the paper's configuration) a
            parallel run is trial-for-trial identical to a serial one;
            components that accumulate state across trials (random bit
            flips, :class:`NormGrowthDetector`) see per-worker history under
            parallel backends and should be swept with ``backend="serial"``.
        """
        from repro.exec.executor import CampaignExecutor

        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        baseline = self.run_failure_free()
        failure_free_outer = baseline.outer_iterations
        if locations is None:
            total_locations = max(failure_free_outer, 1) * self.inner_iterations
            locations = range(0, total_locations, stride)
        locations = [int(loc) for loc in locations]

        result = CampaignResult(
            problem_name=self.problem.name,
            mgs_position=self.mgs_position,
            inner_iterations=self.inner_iterations,
            detector_enabled=self.detector is not None,
            failure_free_outer=failure_free_outer,
            failure_free_residual=baseline.residual_norm,
        )
        if executor is None:
            executor = CampaignExecutor(self, backend=backend, workers=workers,
                                        chunksize=chunksize, batch_size=batch_size)
        result.trials.extend(executor.run(self.trial_specs(locations), progress=progress))
        return result


def sweep_injection_locations(
    problem: TestProblem,
    *,
    fault_classes: dict[str, FaultModel] | str | None = None,
    mgs_position: str | None = None,
    detector=None,
    inner_iterations: int | None = None,
    max_outer: int | None = None,
    outer_tol: float | None = None,
    stride: int | None = None,
    locations=None,
    backend: str | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
    batch_size: int | None = None,
) -> CampaignResult:
    """Functional convenience wrapper around :class:`FaultCampaign`.

    Equivalent to constructing a campaign with the given options and calling
    :meth:`FaultCampaign.run` (including the parallel/batched-execution
    knobs).  Defaults (``None``) come from the :class:`~repro.specs.CampaignSpec`
    field defaults — the same single source :class:`FaultCampaign` uses — so
    the two entry points cannot drift apart.
    """
    campaign = FaultCampaign(
        problem,
        inner_iterations=inner_iterations,
        max_outer=max_outer,
        outer_tol=outer_tol,
        fault_classes=fault_classes,
        mgs_position=mgs_position,
        detector=detector,
    )
    return campaign.run(locations=locations,
                        stride=stride if stride is not None else _DEFAULTS.stride,
                        backend=backend, workers=workers, chunksize=chunksize,
                        batch_size=batch_size)
