"""Fault-injection campaigns: the engine behind Figures 3 and 4.

A campaign runs the nested FT-GMRES solver once without faults to establish
the failure-free iteration count, then once per (fault class, injection
location) pair, injecting exactly one SDC event per run into the chosen
Hessenberg coefficient.  The result is the set of series plotted in the
paper: "number of outer iterations to convergence" versus "aggregate inner
solve iteration that faults".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.detectors import Detector
from repro.core.ftgmres import FTGMRESParameters, ft_gmres
from repro.core.gmres import GMRESParameters
from repro.core.fgmres import FGMRESParameters
from repro.core.status import NestedSolverResult
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel, PAPER_FAULT_CLASSES
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import TestProblem
from repro.registry import (
    resolve_detector,
    resolve_fault_classes,
    resolve_preconditioner,
    resolve_problem,
)
from repro.results.events import Event, ensure_sink
from repro.results.query import TrialQuery
from repro.specs import CampaignSpec
from repro.utils.timer import Timer

__all__ = ["TrialRecord", "CampaignResult", "CampaignPlan", "FaultCampaign",
           "sweep_injection_locations"]


def _repro_version() -> str:
    from repro import __version__  # lazy: repro/__init__ imports this module

    return __version__

#: Single source of truth for campaign defaults: the :class:`CampaignSpec`
#: field defaults.  Both :class:`FaultCampaign` and
#: :func:`sweep_injection_locations` fill their ``None`` sentinels from here,
#: so the numbers cannot drift between the declarative and keyword APIs.
_DEFAULTS = CampaignSpec()


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one faulted nested solve.

    The payload fields (fault class, location, iteration counts, status,
    residual) define equality; the measurement/provenance fields —
    ``elapsed`` wall time, and the ``repro_version``/``seed``/``spec_hash``
    stamps — are ``compare=False`` so trial-identity assertions across
    backends and across resumed runs compare physics, not bookkeeping.
    """

    fault_class: str
    fault_description: str
    aggregate_inner_iteration: int
    mgs_position: str
    outer_iterations: int
    total_inner_iterations: int
    converged: bool
    status: str
    residual_norm: float
    faults_injected: int
    faults_detected: int
    detector_enabled: bool
    #: Wall-clock seconds for this trial (batched lanes: their amortized
    #: share of the batch, see :meth:`FaultCampaign.iter_specs_batched`).
    elapsed: float = field(default=0.0, compare=False)
    #: Crash isolation: when a trial's solve raised (or blew its soft
    #: timeout), ``status`` is ``"error"`` and this carries the message.
    #: ``compare=False``: an error record never equals a real measurement
    #: anyway (the payload fields are sentinels), and traceback text may
    #: differ across interpreters.
    error: str | None = field(default=None, compare=False)
    #: Provenance stamps (``None`` until stamped by the campaign layer).
    repro_version: str | None = field(default=None, compare=False)
    seed: int | None = field(default=None, compare=False)
    spec_hash: str | None = field(default=None, compare=False)
    #: How many times this trial crashed its worker before this record was
    #: produced (sharded supervisor bookkeeping).  ``compare=False``: a
    #: retried trial's measurement is still the same physics.
    retries: int = field(default=0, compare=False)

    @property
    def is_error(self) -> bool:
        """True if this records a crashed/timed-out trial, not a measurement."""
        return self.status == "error"

    def to_dict(self) -> dict:
        """JSON-ready dict (the common result schema, ``kind="trial"``).

        Provenance stamps are included when set, so a record written to a
        run store proves which repro version, RNG seed, and spec produced it.
        """
        from dataclasses import asdict

        out = {"kind": "trial", **asdict(self)}
        for key in ("error", "repro_version", "seed", "spec_hash"):
            if out[key] is None:
                del out[key]
        if not out["retries"]:
            del out["retries"]  # the overwhelmingly common case stays compact
        return out

    def summary(self) -> dict:
        """The headline fields of this trial (common result schema)."""
        return {
            "kind": "trial",
            "status": self.status,
            "converged": self.converged,
            "fault_class": self.fault_class,
            "aggregate_inner_iteration": self.aggregate_inner_iteration,
            "outer_iterations": self.outer_iterations,
            "residual_norm": self.residual_norm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        data = {k: v for k, v in data.items() if k != "kind"}
        return cls(**data)


@dataclass
class CampaignResult:
    """All trials of a campaign plus the failure-free reference.

    The aggregate helpers (``series``, ``detection_rate``, ...) are built on
    the :class:`~repro.results.query.TrialQuery` API — the same queries work
    identically on a result loaded back from a
    :class:`~repro.results.store.RunStore`.
    """

    problem_name: str
    mgs_position: str
    inner_iterations: int
    detector_enabled: bool
    failure_free_outer: int
    failure_free_residual: float
    trials: list[TrialRecord] = field(default_factory=list)
    #: Provenance stamps (``None`` for legacy/unstamped results).
    repro_version: str | None = None
    seed: int | None = None
    spec_hash: str | None = None

    # ------------------------------------------------------------------ #
    def query(self) -> TrialQuery:
        """A :class:`TrialQuery` over this campaign's trials."""
        return TrialQuery(self.trials)

    def fault_classes(self) -> list[str]:
        """Fault-class labels present in the campaign, in first-seen order."""
        return self.query().distinct("fault_class")

    def series(self, fault_class: str) -> tuple[np.ndarray, np.ndarray]:
        """The plotted series for one fault class.

        Returns ``(locations, outer_iterations)`` sorted by location — the x
        and y data of one panel of Figure 3 or 4.
        """
        return self.query().filter(fault_class=fault_class).series()

    def max_outer(self, fault_class: str) -> int:
        """Worst-case outer-iteration count over the sweep for one class."""
        _, outers = self.series(fault_class)
        return int(outers.max()) if outers.size else 0

    def max_increase(self, fault_class: str) -> int:
        """Worst-case increase over the failure-free outer count."""
        return max(self.max_outer(fault_class) - self.failure_free_outer, 0)

    def percent_increase(self, fault_class: str) -> float:
        """Worst-case percentage increase in time-to-solution (outer iterations)."""
        if self.failure_free_outer == 0:
            return 0.0
        return 100.0 * self.max_increase(fault_class) / self.failure_free_outer

    def detection_rate(self, fault_class: str) -> float:
        """Fraction of trials of this class in which the detector fired."""
        return (self.query().filter(fault_class=fault_class)
                .rate(lambda t: t.faults_detected > 0))

    def non_converged(self) -> list[TrialRecord]:
        """Trials that failed to converge within the outer-iteration budget."""
        return self.query().filter(converged=False).records()

    def summary(self) -> dict:
        """Aggregate statistics keyed by fault class (used by EXPERIMENTS.md).

        Besides the paper's convergence statistics, each class reports its
        reliability totals — ``errors`` (crashed/timed-out/quarantined
        trials), ``quarantined`` (the poison subset), and ``retries``
        (worker crashes survived before the records were produced) — so
        flaky infrastructure is visible instead of silently healed.
        """
        def per_class(q: TrialQuery) -> dict:
            worst = int(q.max("outer_iterations"))
            increase = max(worst - self.failure_free_outer, 0)
            errors = q.errors()
            return {
                "max_outer": worst,
                "max_increase": increase,
                "percent_increase": (100.0 * increase / self.failure_free_outer
                                     if self.failure_free_outer else 0.0),
                "detection_rate": q.rate(lambda t: t.faults_detected > 0),
                "trials": len(q),
                "errors": len(errors),
                "quarantined": errors.count(
                    lambda t: (t.error or "").startswith("poison")),
                "retries": q.retry_count(),
            }

        return {cls: per_class(q)
                for cls, q in self.query().group_by("fault_class").items()}

    def to_dict(self) -> dict:
        """JSON-ready dict (the common result schema, ``kind="campaign"``).

        Round-trips through :meth:`from_dict` — including the provenance
        stamps — so whole campaign artifacts can be saved next to the spec
        that produced them and still prove which spec that was.
        """
        out = {
            "kind": "campaign",
            "problem_name": self.problem_name,
            "mgs_position": self.mgs_position,
            "inner_iterations": self.inner_iterations,
            "detector_enabled": self.detector_enabled,
            "failure_free_outer": self.failure_free_outer,
            "failure_free_residual": self.failure_free_residual,
            "trials": [t.to_dict() for t in self.trials],
        }
        for key in ("repro_version", "seed", "spec_hash"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a campaign result from :meth:`to_dict` output."""
        data = {k: v for k, v in data.items() if k != "kind"}
        trials = [TrialRecord.from_dict(t) for t in data.pop("trials", [])]
        return cls(trials=trials, **data)


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign's frozen work list (see :meth:`FaultCampaign.plan`).

    Carries the failure-free baseline numbers, the resolved injection
    locations, and the canonical-order trial specs — exactly what the run
    store persists in a manifest, so an interrupted campaign can be resumed
    from the same plan without re-solving the baseline.
    """

    locations: tuple[int, ...]
    failure_free_outer: int
    failure_free_residual: float
    specs: list


def _merged_budget(solver_field: str, solver_value, campaign_field: str,
                   campaign_value, campaign_default, error_cls):
    """Merge a solver-spec budget with its campaign-level counterpart.

    The solver value wins when set; a campaign value that was *also* set
    (differs from the default) and disagrees is a configuration error rather
    than something to clobber silently.
    """
    if solver_value is None:
        return campaign_value
    if campaign_value != campaign_default and campaign_value != solver_value:
        raise error_cls(solver_field,
                        f"conflicts with {campaign_field}={campaign_value}; "
                        f"set only one of them")
    return solver_value


class FaultCampaign:
    """Sweep single-SDC injections over every inner-iteration location.

    Parameters
    ----------
    problem : TestProblem
        The linear system to solve (see :mod:`repro.gallery.problems`).
    inner_iterations : int
        Fixed inner GMRES iteration count per outer iteration (paper: 25).
    max_outer : int
        Outer-iteration budget; trials that need more are reported as
        non-converged at this count.
    outer_tol : float
        Outer relative residual tolerance.
    fault_classes : dict[str, FaultModel]
        The corruption models to sweep (default: the paper's three classes).
    mgs_position : {"first", "last"}
        Which Modified Gram–Schmidt coefficient to corrupt (Figures 3a/4a use
        "first", 3b/4b use "last").
    detector : Detector, registry spec, or None
        ``"bound"`` enables the paper's Hessenberg-bound detector (built from
        ``||A||_F``); ``None`` disables detection; any other registered
        detector spec (string or dict, see :mod:`repro.registry`) also works.
    detector_response : str
        Response policy when the detector fires (default ``"zero"``:
        filter the impossible value, as the paper advocates).
    inner_params, outer_params : optional
        Overrides for the nested-solver configuration.
    site : str
        Injection site (default ``"hessenberg"``); a comma-separated list
        (``"spmv,precond"``) or ``"*"`` targets several sites at once.
    fault_rate : int or None
        ``None`` (default) reproduces the paper's single-SDC-per-solve
        methodology.  An integer N switches every trial to a
        :class:`~repro.faults.schedule.FaultRateSchedule`: up to N faults
        per nested solve, fired at the trial's injection location of
        consecutive inner solves (cadence = ``inner_iterations``).
    fault_persistence : str or None
        Persistence of each scheduled fault (``"transient"`` — the default —
        ``"sticky"``, or ``"persistent"``), tracked per site.
    trial_timeout : float or None
        Soft per-trial wall-clock budget in seconds.  A trial that finishes
        over budget is quarantined as a ``status="error"`` record instead of
        being reported as a measurement (``None`` disables the check).
    kernels : str or None
        Sparse kernel tier for every trial's hot kernels (``"numpy"``/
        ``"scipy"``/``"numba"``/``"auto"``); ``None`` defers to the
        ``REPRO_KERNELS`` environment variable, else ``"numpy"``.  The
        problem's matrix is rebound to the tier *before* detectors and
        preconditioners are resolved, so their factors solve on it too.
    """

    def __init__(
        self,
        problem: TestProblem,
        *,
        inner_iterations: int | None = None,
        max_outer: int | None = None,
        outer_tol: float | None = None,
        fault_classes: dict[str, FaultModel] | str | None = None,
        mgs_position: str | None = None,
        detector: Detector | str | dict | None = None,
        detector_response: str | None = None,
        inner_params: GMRESParameters | None = None,
        outer_params: FGMRESParameters | None = None,
        site: str | None = None,
        fault_rate: int | None = None,
        fault_persistence: str | None = None,
        trial_timeout: float | None = None,
        kernels: str | None = None,
    ):
        from repro.sparse.kernels import effective_kernels

        # ``None`` sentinels defer to the CampaignSpec field defaults — the
        # one place the paper's 25/100/1e-8 configuration is written down.
        self.kernels = effective_kernels(kernels)
        if (hasattr(problem, "with_engine")
                and getattr(problem.A, "engine_name", self.kernels) != self.kernels):
            problem = problem.with_engine(self.kernels)
        self.problem = problem
        self.inner_iterations = int(inner_iterations if inner_iterations is not None
                                    else _DEFAULTS.inner_iterations)
        self.max_outer = int(max_outer if max_outer is not None else _DEFAULTS.max_outer)
        self.outer_tol = float(outer_tol if outer_tol is not None else _DEFAULTS.outer_tol)
        self.fault_classes = resolve_fault_classes(
            fault_classes if fault_classes is not None else dict(PAPER_FAULT_CLASSES))
        mgs_position = mgs_position if mgs_position is not None else _DEFAULTS.mgs_position
        if mgs_position not in ("first", "last"):
            raise ValueError(f"mgs_position must be 'first' or 'last', got {mgs_position!r}")
        self.mgs_position = mgs_position
        self.site = site if site is not None else _DEFAULTS.site
        if fault_rate is not None and int(fault_rate) < 1:
            raise ValueError(f"fault_rate must be positive, got {fault_rate}")
        self.fault_rate = int(fault_rate) if fault_rate is not None else None
        self.fault_persistence = str(fault_persistence if fault_persistence is not None
                                     else _DEFAULTS.fault_persistence)
        if trial_timeout is not None and float(trial_timeout) <= 0:
            raise ValueError(f"trial_timeout must be positive, got {trial_timeout}")
        self.trial_timeout = float(trial_timeout) if trial_timeout is not None else None
        self.detector_response = (detector_response if detector_response is not None
                                  else _DEFAULTS.detector_response)
        # Keep the constructor *specifications* so worker processes can
        # rebuild an equivalent campaign (see to_config).
        self._detector_spec = detector
        self._inner_params_spec = inner_params
        self._outer_params_spec = outer_params

        self.detector = resolve_detector(detector, A=problem.A)

        inner = inner_params or GMRESParameters(tol=0.0, maxiter=self.inner_iterations)
        inner = inner.replace(
            maxiter=self.inner_iterations,
            detector=self.detector,
            detector_response=self.detector_response,
        )
        if isinstance(inner.preconditioner, (str, dict)):
            inner = inner.replace(preconditioner=resolve_preconditioner(
                inner.preconditioner, A=problem.A))
        outer = outer_params or FGMRESParameters(tol=self.outer_tol, max_outer=self.max_outer)
        outer = outer.replace(tol=self.outer_tol, max_outer=self.max_outer)
        if isinstance(outer.detector, (str, dict)):
            outer = outer.replace(detector=resolve_detector(
                outer.detector, A=problem.A, bound_method=outer.bound_method))
        self.params = FTGMRESParameters(outer=outer, inner=inner)
        #: Provenance stamped onto every record this campaign produces.
        #: ``spec_hash`` stays ``None`` for keyword-constructed campaigns and
        #: is filled by :meth:`from_spec` (only a spec has a hashable form).
        self.provenance = {
            "repro_version": _repro_version(),
            "seed": getattr(problem, "seed", None),
            "spec_hash": None,
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: CampaignSpec | dict, problem: TestProblem | None = None
                  ) -> "FaultCampaign":
        """Build a campaign from a declarative :class:`~repro.specs.CampaignSpec`.

        Parameters
        ----------
        spec : CampaignSpec or dict
            The campaign description.  Dicts are validated through
            :meth:`CampaignSpec.from_dict` first.
        problem : TestProblem, optional
            The system to sweep.  Exactly one of this argument and
            ``spec.problem`` (a gallery registry spec like ``"poisson:30"``)
            must be given.
        """
        from repro.specs import SpecError

        spec = CampaignSpec.coerce(spec)
        if (problem is None) == (spec.problem is None):
            raise ValueError(
                "exactly one of the problem argument and spec.problem must be "
                "given" if problem is not None else
                "no problem to sweep: pass a TestProblem or set spec.problem "
                "to a gallery spec (e.g. 'poisson:30')")
        if problem is None:
            problem = resolve_problem(spec.problem)
        inner_params = outer_params = None
        inner_iterations, max_outer = spec.inner_iterations, spec.max_outer
        detector, detector_response = spec.detector, spec.detector_response
        if spec.solver is not None:
            solver_params = spec.solver.to_ftgmres_parameters()
            inner_params, outer_params = solver_params.inner, solver_params.outer
            inner_spec = spec.solver.inner
            # The solver spec's explicit inner settings take effect (so e.g.
            # `--set solver.inner.maxiter=12` or an inner detector do what
            # they say); they may not contradict a campaign-level setting
            # that was also given — the campaign constructor would otherwise
            # clobber them silently.
            inner_iterations = _merged_budget(
                "solver.inner.maxiter",
                inner_spec.maxiter if inner_spec is not None else None,
                "inner_iterations", spec.inner_iterations,
                _DEFAULTS.inner_iterations, SpecError)
            max_outer = _merged_budget(
                "solver.max_outer", spec.solver.max_outer,
                "max_outer", spec.max_outer, _DEFAULTS.max_outer, SpecError)
            if inner_spec is not None and inner_spec.detector is not None:
                if detector is not None and detector != inner_spec.detector:
                    raise SpecError("solver.inner.detector",
                                    f"conflicts with detector={detector!r}; "
                                    f"set only one of them")
                detector = inner_spec.detector
                if inner_spec.detector_response is not None:
                    detector_response = inner_spec.detector_response
        campaign = cls(
            problem,
            inner_iterations=inner_iterations,
            max_outer=max_outer,
            outer_tol=spec.outer_tol,
            fault_classes=spec.fault_classes,
            mgs_position=spec.mgs_position,
            detector=detector,
            detector_response=detector_response,
            inner_params=inner_params,
            outer_params=outer_params,
            site=spec.site,
            fault_rate=spec.fault_rate,
            fault_persistence=spec.fault_persistence,
            trial_timeout=spec.exec.trial_timeout,
            kernels=spec.exec.kernels,
        )
        from repro.results.store import campaign_fingerprint

        campaign.provenance["spec_hash"] = campaign_fingerprint(spec, problem.name)
        return campaign

    def run_failure_free(self) -> NestedSolverResult:
        """Run the nested solver without any fault injection."""
        return ft_gmres(self.problem.A, self.problem.b, self.problem.x0, params=self.params)

    def _trial_schedule(self, aggregate_inner_iteration: int) -> InjectionSchedule:
        """The injection schedule of one campaign trial.

        Shared by the serial and the batched execution paths so both inject
        under exactly the same schedule.  Without a ``fault_rate`` this is
        the paper's single-SDC schedule anchored at the trial's aggregate
        location; with one, a :class:`FaultRateSchedule` fires at that
        location of consecutive inner solves until the budget is spent.
        """
        from repro.faults.schedule import FaultRateSchedule

        if self.fault_rate is not None:
            return FaultRateSchedule(
                site=self.site,
                mgs_position=self.mgs_position,
                persistence=self.fault_persistence,
                faults_per_solve=self.fault_rate,
                start=int(aggregate_inner_iteration),
                interval=max(self.inner_iterations, 1),
            )
        return InjectionSchedule(
            site=self.site,
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            persistence=self.fault_persistence,
        )

    def _trial_injector(self, model: FaultModel,
                        aggregate_inner_iteration: int) -> FaultInjector:
        """The trial's injector, with *deterministic* per-trial randomness.

        Vector-site corruption (``spmv``/``precond``/``orth``/``basis``)
        picks the corrupted element from the injector's rng.  Seeding that
        rng from the campaign seed and the trial's sweep location makes
        vector-site campaigns trial-identical across the serial, thread,
        process, and batched backends — and across reruns, which is what the
        store's resume contract requires.
        """
        seed = self.provenance.get("seed")
        entropy = (0 if seed is None else int(seed) & 0xFFFFFFFF,
                   int(aggregate_inner_iteration))
        return FaultInjector(model, self._trial_schedule(aggregate_inner_iteration),
                             rng=np.random.default_rng(entropy))

    def run_single(self, fault_class: str, model: FaultModel,
                   aggregate_inner_iteration: int) -> TrialRecord:
        """Run one faulted nested solve and summarize it as a TrialRecord.

        The trial's wall time is measured here — inside the worker, for the
        pool backends — so ``TrialRecord.elapsed`` means the same thing on
        every backend.
        """
        injector = self._trial_injector(model, aggregate_inner_iteration)
        timer = Timer()
        with timer:
            result = ft_gmres(self.problem.A, self.problem.b, self.problem.x0,
                              params=self.params, injector=injector)
        return TrialRecord(
            fault_class=fault_class,
            fault_description=model.describe(),
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            outer_iterations=result.outer_iterations,
            total_inner_iterations=result.total_inner_iterations,
            converged=result.converged,
            status=result.status.value,
            residual_norm=result.residual_norm,
            faults_injected=injector.injections_performed,
            faults_detected=result.faults_detected,
            detector_enabled=self.detector is not None,
            elapsed=timer.elapsed,
        )

    def run_spec(self, spec) -> TrialRecord:
        """Run the trial described by a :class:`~repro.exec.spec.TrialSpec`."""
        return self.run_single(spec.fault_class, self._model_for(spec.fault_class),
                               spec.aggregate_inner_iteration)

    def _error_record(self, spec, message: str, elapsed: float) -> TrialRecord:
        """A ``status="error"`` record for a crashed or quarantined trial.

        The payload fields are sentinels (``-1`` iterations, NaN residual):
        an error record marks a casualty to be re-run, not a measurement —
        the run store's resume logic treats its index as missing.
        """
        model = self.fault_classes.get(spec.fault_class)
        return TrialRecord(
            fault_class=spec.fault_class,
            fault_description=(model.describe() if model is not None
                               else spec.fault_class),
            aggregate_inner_iteration=int(spec.aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            outer_iterations=-1,
            total_inner_iterations=-1,
            converged=False,
            status="error",
            residual_norm=float("nan"),
            faults_injected=0,
            faults_detected=0,
            detector_enabled=self.detector is not None,
            elapsed=float(elapsed),
            error=str(message),
        )

    def run_spec_safe(self, spec) -> TrialRecord:
        """Run one trial with crash isolation and the soft timeout.

        A trial whose solve raises — a ``raise``-response detector, a fault
        model that explodes, a kernel bug — becomes a ``status="error"``
        record instead of killing the whole campaign (and, on the pool
        backends, every other trial sharing its worker).  A trial that
        finishes but blew the campaign's ``trial_timeout`` is quarantined
        the same way.  The execution backends all route through here, so
        error semantics are backend-independent.
        """
        timer = Timer()
        try:
            with timer:
                record = self.run_spec(spec)
        except Exception as exc:  # noqa: BLE001 - the whole point is isolation
            return self._error_record(
                spec, f"{type(exc).__name__}: {exc}", timer.elapsed)
        if self.trial_timeout is not None and record.elapsed > self.trial_timeout:
            return dataclasses.replace(
                record,
                outer_iterations=-1,
                total_inner_iterations=-1,
                converged=False,
                status="error",
                residual_norm=float("nan"),
                error=(f"soft timeout: trial took {record.elapsed:.3f}s "
                       f"(budget {self.trial_timeout:.3f}s)"),
            )
        return record

    def _model_for(self, fault_class: str) -> FaultModel:
        try:
            return self.fault_classes[fault_class]
        except KeyError:
            raise KeyError(
                f"unknown fault class {fault_class!r}; "
                f"campaign has {sorted(self.fault_classes)}"
            ) from None

    # ------------------------------------------------------------------ #
    # trial-batched lockstep execution
    # ------------------------------------------------------------------ #
    def batched_unsupported_reason(self) -> str | None:
        """Why this campaign cannot run on the lockstep batched engine.

        ``None`` means the configuration is supported.  The supported space
        is the paper's experiment space (MGS inside and out, ``hessenberg``
        injection site, no detector or the Hessenberg-bound detector with a
        non-raising response); exotic configurations belong on the serial
        backend.
        """
        from repro.core.batched import batched_support_reason

        return batched_support_reason(self.params, self.site)

    def iter_specs_batched(self, specs, *, batch_size: int | None = None):
        """Stream ``(index, record)`` pairs from the lockstep batched engine.

        Trials advance ``batch_size`` at a time through shared block kernels
        (see :mod:`repro.core.batched`); each batch's records are yielded as
        the batch completes, which is what lets the run store checkpoint a
        batched campaign at trial granularity.  Trials that leave the
        lockstep common path — happy breakdown, early inner convergence, the
        outer breakdown trichotomy — are transparently rerun through the
        serial reference implementation, so the output is equivalent to
        :meth:`run_spec` on every spec: identical iteration counts, statuses
        and event streams, residual norms to ~1e-10.

        Per-trial wall time: lanes that stay in lockstep report their
        amortized share of the batch (batch wall time divided by its lane
        count — lockstep lanes have no individual wall clock by
        construction); peeled trials report their true serial time.
        """
        from repro.core.batched import BatchedTrialSetup, batched_ft_gmres

        reason = self.batched_unsupported_reason()
        if reason is not None:
            raise ValueError(
                f"campaign configuration not supported by the batched backend "
                f"({reason}); use backend='serial' (or 'process')")
        specs = list(specs)
        if batch_size is None:
            from repro.exec.executor import DEFAULT_BATCH_SIZE

            batch_size = DEFAULT_BATCH_SIZE
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        # Strided batch composition: batch i takes specs[i::num_batches], so
        # every batch spans the whole injection-location range instead of a
        # narrow consecutive window.  Lanes then fork off the shared
        # failure-free prefix spread across the sweep, which is what makes
        # the prefix sharing in the lockstep engine pay (results are
        # reassembled by spec.index, so composition is free).
        num_batches = -(-len(specs) // batch_size) if specs else 0
        for start in range(num_batches):
            chunk = specs[start::num_batches]
            setups = []
            for spec in chunk:
                model = self._model_for(spec.fault_class)
                injector = self._trial_injector(model, spec.aggregate_inner_iteration)
                setups.append(BatchedTrialSetup(
                    injector=injector,
                    hessenberg_target=injector.schedule.aggregate_inner_iteration,
                ))
            timer = Timer()
            try:
                with timer:
                    results = batched_ft_gmres(self.problem.A, self.problem.b,
                                               self.problem.x0, self.params, setups)
            except Exception:
                # A crash in the shared block kernels cannot be attributed to
                # one lane; peel the whole batch to the serial path, where
                # run_spec_safe isolates the actual casualty per trial.
                results = [None] * len(chunk)
            lane_elapsed = timer.elapsed / len(chunk)
            for spec, setup, result in zip(chunk, setups, results):
                if result is None:
                    # Off the lockstep common path: the serial reference
                    # engine is the fallback, so rare paths never rely on
                    # the batched reproduction of them.
                    record = self.run_spec_safe(spec)
                else:
                    model = self._model_for(spec.fault_class)
                    record = TrialRecord(
                        fault_class=spec.fault_class,
                        fault_description=model.describe(),
                        aggregate_inner_iteration=int(spec.aggregate_inner_iteration),
                        mgs_position=self.mgs_position,
                        outer_iterations=result.outer_iterations,
                        total_inner_iterations=result.total_inner_iterations,
                        converged=result.converged,
                        status=result.status.value,
                        residual_norm=result.residual_norm,
                        faults_injected=setup.injector.injections_performed,
                        faults_detected=result.faults_detected,
                        detector_enabled=self.detector is not None,
                        elapsed=lane_elapsed,
                    )
                yield spec.index, record

    def run_specs_batched(self, specs, *, batch_size: int | None = None,
                          progress=None, progress_offset: int = 0,
                          progress_total: int | None = None) -> list[TrialRecord]:
        """Run trial specs through the lockstep batched engine.

        The list-returning wrapper around :meth:`iter_specs_batched`:
        records come back ordered by ``spec.index`` (the canonical order),
        with ``progress(done, total)`` fired as trials complete.
        """
        specs = list(specs)
        total = progress_total if progress_total is not None else len(specs)
        done = progress_offset
        records: list[tuple[int, TrialRecord]] = []
        for index, record in self.iter_specs_batched(specs, batch_size=batch_size):
            records.append((index, record))
            done += 1
            if progress is not None:
                progress(done, total)
        records.sort(key=lambda pair: pair[0])
        return [record for _, record in records]

    # ------------------------------------------------------------------ #
    # execution-engine integration
    # ------------------------------------------------------------------ #
    def to_config(self, problem_factory=None):
        """Snapshot this campaign as a picklable executor configuration.

        Parameters
        ----------
        problem_factory : ProblemFactory, optional
            When given, workers rebuild the problem from the factory instead
            of unpickling the matrix (see :class:`repro.exec.spec.ProblemFactory`).
        """
        from repro.exec.spec import CampaignConfig

        return CampaignConfig(
            problem=None if problem_factory is not None else self.problem,
            problem_factory=problem_factory,
            inner_iterations=self.inner_iterations,
            max_outer=self.max_outer,
            outer_tol=self.outer_tol,
            fault_classes=dict(self.fault_classes),
            mgs_position=self.mgs_position,
            detector=self._detector_spec,
            detector_response=self.detector_response,
            site=self.site,
            inner_params=self._inner_params_spec,
            outer_params=self._outer_params_spec,
            kernels=self.kernels,
            fault_rate=self.fault_rate,
            fault_persistence=self.fault_persistence,
            trial_timeout=self.trial_timeout,
        )

    def trial_specs(self, locations) -> list:
        """The campaign's work list in canonical (serial) order."""
        from repro.exec.spec import TrialSpec

        locations = list(locations)  # every fault class sweeps all locations
        return [
            TrialSpec(index=index, fault_class=fault_class,
                      aggregate_inner_iteration=int(loc))
            for index, (fault_class, loc) in enumerate(
                (cls, loc) for cls in self.fault_classes for loc in locations)
        ]

    # ------------------------------------------------------------------ #
    # planning and streaming execution
    # ------------------------------------------------------------------ #
    def plan(self, locations=None, stride: int = 1, *,
             baseline: tuple[int, float] | None = None) -> "CampaignPlan":
        """Freeze the campaign's work list: baseline + locations + specs.

        ``baseline`` short-circuits the failure-free reference solve with
        known ``(failure_free_outer, failure_free_residual)`` numbers — the
        run store uses this on resume, so resuming never re-solves anything.
        """
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if baseline is None:
            reference = self.run_failure_free()
            baseline = (reference.outer_iterations, reference.residual_norm)
        failure_free_outer, failure_free_residual = baseline
        if locations is None:
            total_locations = max(failure_free_outer, 1) * self.inner_iterations
            locations = range(0, total_locations, stride)
        locations = tuple(int(loc) for loc in locations)
        return CampaignPlan(
            locations=locations,
            failure_free_outer=int(failure_free_outer),
            failure_free_residual=float(failure_free_residual),
            specs=self.trial_specs(locations),
        )

    def result_scaffold(self, plan: "CampaignPlan") -> CampaignResult:
        """An empty, provenance-stamped CampaignResult for a plan."""
        return CampaignResult(
            problem_name=self.problem.name,
            mgs_position=self.mgs_position,
            inner_iterations=self.inner_iterations,
            detector_enabled=self.detector is not None,
            failure_free_outer=plan.failure_free_outer,
            failure_free_residual=plan.failure_free_residual,
            **self.provenance,
        )

    def stamp(self, record: TrialRecord) -> TrialRecord:
        """The record with this campaign's provenance fields set."""
        return dataclasses.replace(record, **self.provenance)

    def run_plan(self, plan: "CampaignPlan", *, specs=None, progress=None,
                 sink=None, backend: str | None = None,
                 workers: int | None = None, chunksize: int | None = None,
                 batch_size: int | None = None, executor=None,
                 on_record=None, completed=(), event_data: dict | None = None,
                 **executor_kwargs) -> CampaignResult:
        """Execute (the remainder of) a plan and assemble the result.

        The one implementation of the campaign lifecycle — event emission,
        progress accounting, canonical reassembly — shared by :meth:`run`
        and the run store's checkpoint/resume path in :mod:`repro.api`.

        Parameters
        ----------
        specs : sequence of TrialSpec, optional
            The trials to actually execute (default: all of ``plan.specs``;
            a resume passes only the missing ones).
        on_record : callable, optional
            ``on_record(index, record)`` invoked for each completed trial
            *before* any observer sees it — the store's persistence hook, so
            an interrupt raised by a sink never loses a completed trial.
        completed : sequence of (index, record)
            Already-finished trials (from a resumed store) counted as done.
        event_data : dict, optional
            Extra payload merged into the ``campaign_started`` and
            ``campaign_completed`` events (e.g. the store ``run_id``).
        """
        sink = ensure_sink(sink)
        result = self.result_scaffold(plan)
        total = len(plan.specs)
        pairs: list[tuple[int, TrialRecord]] = list(completed)
        extra = dict(event_data or {})
        if sink is not None:
            sink.emit(Event("campaign_started", where="campaign",
                            data={"problem": self.problem.name,
                                  "total_trials": total,
                                  "resumed_trials": len(pairs), **extra}))
            sink.emit(Event(
                "baseline_completed", where="campaign",
                data={"failure_free_outer": plan.failure_free_outer,
                      "failure_free_residual": plan.failure_free_residual}))
        todo = list(plan.specs) if specs is None else list(specs)
        if todo:
            for index, record in self.iter_records(
                    todo, executor=executor, backend=backend, workers=workers,
                    chunksize=chunksize, batch_size=batch_size,
                    **executor_kwargs):
                if on_record is not None:
                    on_record(index, record)
                pairs.append((index, record))
                if progress is not None:
                    progress(len(pairs), total)
                if sink is not None:
                    sink.emit(Event("trial_completed", where="campaign",
                                    trial_index=index,
                                    data={"done": len(pairs), "total": total,
                                          "record": record.to_dict()}))
        pairs.sort(key=lambda pair: pair[0])
        result.trials.extend(record for _, record in pairs)
        if sink is not None:
            sink.emit(Event("campaign_completed", where="campaign",
                            data={"total_trials": total, **extra}))
        return result

    def iter_records(self, specs, *, executor=None, backend: str | None = None,
                     workers: int | None = None, chunksize: int | None = None,
                     batch_size: int | None = None, **executor_kwargs):
        """Stream provenance-stamped ``(index, record)`` pairs as trials finish.

        Completion order (lazy over serial, windowed over the pool and
        batched backends); the caller reassembles canonical order by index.
        This is the one execution path under :meth:`run`,
        :func:`repro.api.iter_trials`, and the run store's incremental
        checkpointing.
        """
        from repro.exec.executor import CampaignExecutor

        if executor is None:
            executor = CampaignExecutor(self, backend=backend, workers=workers,
                                        chunksize=chunksize, batch_size=batch_size,
                                        **executor_kwargs)
        for index, record in executor.iter_records(specs):
            yield index, self.stamp(record)

    def run(self, locations=None, stride: int = 1, progress=None, *,
            backend: str | None = None, workers: int | None = None,
            chunksize: int | None = None, batch_size: int | None = None,
            executor=None, sink=None, **executor_kwargs) -> CampaignResult:
        """Run the full campaign.

        Parameters
        ----------
        locations : sequence of int, optional
            Aggregate inner-iteration indices to fault.  Defaults to every
            index reachable in the failure-free run
            (``failure_free_outer * inner_iterations``), exactly as in the
            paper.
        stride : int
            Keep every ``stride``-th default location (used by the fast
            benchmark configurations; ``stride=1`` reproduces the paper).
        progress : callable, optional
            ``progress(done, total)`` callback (a thin adapter over the
            event bus: equivalent to a ``sink`` observing only
            ``trial_completed`` events).
        backend : {"serial", "thread", "process", "batched", "sharded"}, optional
            Execution backend; ``None`` auto-selects ``process`` when the
            resolved worker count exceeds 1.  ``"batched"`` advances trials
            in lockstep through shared block kernels in this process — the
            right choice on single-CPU hosts, where process dispatch is pure
            overhead.  ``"sharded"`` runs crash-supervised worker processes
            (see :class:`repro.exec.supervisor.ShardedSupervisor`).
        workers : int, optional
            Worker count (default: the ``REPRO_WORKERS`` environment
            variable, then 1; ``0`` means one per CPU).
        chunksize : int, optional
            Trials per dispatched task (parallel backends only).
        batch_size : int, optional
            Trials advanced in lockstep per batch (batched backend only).
        executor : CampaignExecutor, optional
            A pre-built executor; overrides ``backend``/``workers``/
            ``chunksize``/``batch_size``.
        sink : EventSink, callable, or registered sink spec, optional
            Receives campaign lifecycle events (``campaign_started``,
            ``baseline_completed``, ``trial_completed`` with the record
            payload, ``campaign_completed``) as the campaign runs.

        Returns
        -------
        CampaignResult
            Trials appear in the canonical (fault class, location) order
            regardless of backend.  For stateless detectors and
            deterministic fault models (the paper's configuration) a
            parallel run is trial-for-trial identical to a serial one;
            components that accumulate state across trials (random bit
            flips, :class:`NormGrowthDetector`) see per-worker history under
            parallel backends and should be swept with ``backend="serial"``.
        """
        from repro.registry import resolve_sink

        return self.run_plan(self.plan(locations=locations, stride=stride),
                             progress=progress, sink=resolve_sink(sink),
                             backend=backend, workers=workers,
                             chunksize=chunksize, batch_size=batch_size,
                             executor=executor, **executor_kwargs)


def sweep_injection_locations(
    problem: TestProblem,
    *,
    fault_classes: dict[str, FaultModel] | str | None = None,
    mgs_position: str | None = None,
    detector=None,
    inner_iterations: int | None = None,
    max_outer: int | None = None,
    outer_tol: float | None = None,
    stride: int | None = None,
    locations=None,
    backend: str | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
    batch_size: int | None = None,
    sink=None,
) -> CampaignResult:
    """Functional convenience wrapper around :class:`FaultCampaign`.

    Equivalent to constructing a campaign with the given options and calling
    :meth:`FaultCampaign.run` (including the parallel/batched-execution
    knobs).  Defaults (``None``) come from the :class:`~repro.specs.CampaignSpec`
    field defaults — the same single source :class:`FaultCampaign` uses — so
    the two entry points cannot drift apart.
    """
    campaign = FaultCampaign(
        problem,
        inner_iterations=inner_iterations,
        max_outer=max_outer,
        outer_tol=outer_tol,
        fault_classes=fault_classes,
        mgs_position=mgs_position,
        detector=detector,
    )
    return campaign.run(locations=locations,
                        stride=stride if stride is not None else _DEFAULTS.stride,
                        backend=backend, workers=workers, chunksize=chunksize,
                        batch_size=batch_size, sink=sink)
