"""Fault-injection campaigns: the engine behind Figures 3 and 4.

A campaign runs the nested FT-GMRES solver once without faults to establish
the failure-free iteration count, then once per (fault class, injection
location) pair, injecting exactly one SDC event per run into the chosen
Hessenberg coefficient.  The result is the set of series plotted in the
paper: "number of outer iterations to convergence" versus "aggregate inner
solve iteration that faults".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detectors import Detector, HessenbergBoundDetector
from repro.core.ftgmres import FTGMRESParameters, ft_gmres
from repro.core.gmres import GMRESParameters
from repro.core.fgmres import FGMRESParameters
from repro.core.status import NestedSolverResult
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel, PAPER_FAULT_CLASSES
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import TestProblem
from repro.sparse.norms import hessenberg_bound

__all__ = ["TrialRecord", "CampaignResult", "FaultCampaign", "sweep_injection_locations"]


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one faulted nested solve."""

    fault_class: str
    fault_description: str
    aggregate_inner_iteration: int
    mgs_position: str
    outer_iterations: int
    total_inner_iterations: int
    converged: bool
    status: str
    residual_norm: float
    faults_injected: int
    faults_detected: int
    detector_enabled: bool


@dataclass
class CampaignResult:
    """All trials of a campaign plus the failure-free reference."""

    problem_name: str
    mgs_position: str
    inner_iterations: int
    detector_enabled: bool
    failure_free_outer: int
    failure_free_residual: float
    trials: list[TrialRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def fault_classes(self) -> list[str]:
        """Fault-class labels present in the campaign, in first-seen order."""
        seen: list[str] = []
        for t in self.trials:
            if t.fault_class not in seen:
                seen.append(t.fault_class)
        return seen

    def series(self, fault_class: str) -> tuple[np.ndarray, np.ndarray]:
        """The plotted series for one fault class.

        Returns ``(locations, outer_iterations)`` sorted by location — the x
        and y data of one panel of Figure 3 or 4.
        """
        pts = [(t.aggregate_inner_iteration, t.outer_iterations)
               for t in self.trials if t.fault_class == fault_class]
        pts.sort()
        if not pts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        locations, outers = zip(*pts)
        return np.asarray(locations, dtype=np.int64), np.asarray(outers, dtype=np.int64)

    def max_outer(self, fault_class: str) -> int:
        """Worst-case outer-iteration count over the sweep for one class."""
        _, outers = self.series(fault_class)
        return int(outers.max()) if outers.size else 0

    def max_increase(self, fault_class: str) -> int:
        """Worst-case increase over the failure-free outer count."""
        return max(self.max_outer(fault_class) - self.failure_free_outer, 0)

    def percent_increase(self, fault_class: str) -> float:
        """Worst-case percentage increase in time-to-solution (outer iterations)."""
        if self.failure_free_outer == 0:
            return 0.0
        return 100.0 * self.max_increase(fault_class) / self.failure_free_outer

    def detection_rate(self, fault_class: str) -> float:
        """Fraction of trials of this class in which the detector fired."""
        trials = [t for t in self.trials if t.fault_class == fault_class]
        if not trials:
            return 0.0
        return sum(1 for t in trials if t.faults_detected > 0) / len(trials)

    def non_converged(self) -> list[TrialRecord]:
        """Trials that failed to converge within the outer-iteration budget."""
        return [t for t in self.trials if not t.converged]

    def summary(self) -> dict:
        """Aggregate statistics keyed by fault class (used by EXPERIMENTS.md)."""
        return {
            cls: {
                "max_outer": self.max_outer(cls),
                "max_increase": self.max_increase(cls),
                "percent_increase": self.percent_increase(cls),
                "detection_rate": self.detection_rate(cls),
                "trials": sum(1 for t in self.trials if t.fault_class == cls),
            }
            for cls in self.fault_classes()
        }


class FaultCampaign:
    """Sweep single-SDC injections over every inner-iteration location.

    Parameters
    ----------
    problem : TestProblem
        The linear system to solve (see :mod:`repro.gallery.problems`).
    inner_iterations : int
        Fixed inner GMRES iteration count per outer iteration (paper: 25).
    max_outer : int
        Outer-iteration budget; trials that need more are reported as
        non-converged at this count.
    outer_tol : float
        Outer relative residual tolerance.
    fault_classes : dict[str, FaultModel]
        The corruption models to sweep (default: the paper's three classes).
    mgs_position : {"first", "last"}
        Which Modified Gram–Schmidt coefficient to corrupt (Figures 3a/4a use
        "first", 3b/4b use "last").
    detector : {"bound", None} or Detector
        ``"bound"`` enables the paper's Hessenberg-bound detector (built from
        ``||A||_F``); ``None`` disables detection.
    detector_response : str
        Response policy when the detector fires (default ``"zero"``:
        filter the impossible value, as the paper advocates).
    inner_params, outer_params : optional
        Overrides for the nested-solver configuration.
    site : str
        Injection site (default ``"hessenberg"``).
    """

    def __init__(
        self,
        problem: TestProblem,
        *,
        inner_iterations: int = 25,
        max_outer: int = 100,
        outer_tol: float = 1e-8,
        fault_classes: dict[str, FaultModel] | None = None,
        mgs_position: str = "first",
        detector: Detector | str | None = None,
        detector_response: str = "zero",
        inner_params: GMRESParameters | None = None,
        outer_params: FGMRESParameters | None = None,
        site: str = "hessenberg",
    ):
        self.problem = problem
        self.inner_iterations = int(inner_iterations)
        self.max_outer = int(max_outer)
        self.outer_tol = float(outer_tol)
        self.fault_classes = dict(fault_classes if fault_classes is not None
                                  else PAPER_FAULT_CLASSES)
        if mgs_position not in ("first", "last"):
            raise ValueError(f"mgs_position must be 'first' or 'last', got {mgs_position!r}")
        self.mgs_position = mgs_position
        self.site = site
        self.detector_response = detector_response

        resolved_detector: Detector | None
        if detector is None or isinstance(detector, Detector):
            resolved_detector = detector
        elif detector in ("bound", "hessenberg_bound"):
            resolved_detector = HessenbergBoundDetector(hessenberg_bound(problem.A))
        else:
            raise ValueError(f"unknown detector specification {detector!r}")
        self.detector = resolved_detector

        inner = inner_params or GMRESParameters(tol=0.0, maxiter=self.inner_iterations)
        inner = inner.replace(
            maxiter=self.inner_iterations,
            detector=self.detector,
            detector_response=detector_response,
        )
        outer = outer_params or FGMRESParameters(tol=self.outer_tol, max_outer=self.max_outer)
        outer = outer.replace(tol=self.outer_tol, max_outer=self.max_outer)
        self.params = FTGMRESParameters(outer=outer, inner=inner)

    # ------------------------------------------------------------------ #
    def run_failure_free(self) -> NestedSolverResult:
        """Run the nested solver without any fault injection."""
        return ft_gmres(self.problem.A, self.problem.b, self.problem.x0, params=self.params)

    def run_single(self, fault_class: str, model: FaultModel,
                   aggregate_inner_iteration: int) -> TrialRecord:
        """Run one faulted nested solve and summarize it as a TrialRecord."""
        schedule = InjectionSchedule(
            site=self.site,
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            persistence="transient",
        )
        injector = FaultInjector(model, schedule)
        result = ft_gmres(self.problem.A, self.problem.b, self.problem.x0,
                          params=self.params, injector=injector)
        return TrialRecord(
            fault_class=fault_class,
            fault_description=model.describe(),
            aggregate_inner_iteration=int(aggregate_inner_iteration),
            mgs_position=self.mgs_position,
            outer_iterations=result.outer_iterations,
            total_inner_iterations=result.total_inner_iterations,
            converged=result.converged,
            status=result.status.value,
            residual_norm=result.residual_norm,
            faults_injected=injector.injections_performed,
            faults_detected=result.faults_detected,
            detector_enabled=self.detector is not None,
        )

    def run(self, locations=None, stride: int = 1, progress=None) -> CampaignResult:
        """Run the full campaign.

        Parameters
        ----------
        locations : sequence of int, optional
            Aggregate inner-iteration indices to fault.  Defaults to every
            index reachable in the failure-free run
            (``failure_free_outer * inner_iterations``), exactly as in the
            paper.
        stride : int
            Keep every ``stride``-th default location (used by the fast
            benchmark configurations; ``stride=1`` reproduces the paper).
        progress : callable, optional
            ``progress(done, total)`` callback.

        Returns
        -------
        CampaignResult
        """
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        baseline = self.run_failure_free()
        failure_free_outer = baseline.outer_iterations
        if locations is None:
            total_locations = max(failure_free_outer, 1) * self.inner_iterations
            locations = range(0, total_locations, stride)
        locations = [int(loc) for loc in locations]

        result = CampaignResult(
            problem_name=self.problem.name,
            mgs_position=self.mgs_position,
            inner_iterations=self.inner_iterations,
            detector_enabled=self.detector is not None,
            failure_free_outer=failure_free_outer,
            failure_free_residual=baseline.residual_norm,
        )
        total = len(locations) * len(self.fault_classes)
        done = 0
        for fault_class, model in self.fault_classes.items():
            for loc in locations:
                result.trials.append(self.run_single(fault_class, model, loc))
                done += 1
                if progress is not None:
                    progress(done, total)
        return result


def sweep_injection_locations(
    problem: TestProblem,
    *,
    fault_classes: dict[str, FaultModel] | None = None,
    mgs_position: str = "first",
    detector=None,
    inner_iterations: int = 25,
    max_outer: int = 100,
    outer_tol: float = 1e-8,
    stride: int = 1,
    locations=None,
) -> CampaignResult:
    """Functional convenience wrapper around :class:`FaultCampaign`.

    Equivalent to constructing a campaign with the given options and calling
    :meth:`FaultCampaign.run`.
    """
    campaign = FaultCampaign(
        problem,
        inner_iterations=inner_iterations,
        max_outer=max_outer,
        outer_tol=outer_tol,
        fault_classes=fault_classes,
        mgs_position=mgs_position,
        detector=detector,
    )
    return campaign.run(locations=locations, stride=stride)
