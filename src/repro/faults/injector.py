"""The fault injector consulted by the solvers at every injection site.

A :class:`FaultInjector` combines

* a :class:`~repro.faults.models.FaultModel` (what the corruption looks like),
* an :class:`~repro.faults.schedule.InjectionSchedule` (when/where it strikes),
* optionally a :class:`~repro.faults.sandbox.Sandbox` (corruption only occurs
  while the sandbox is active — the unreliable phase), and
* book-keeping: every corruption is recorded so experiments can verify that
  exactly one SDC event occurred per trial.

The solver-facing protocol is two methods, ``corrupt_scalar`` and
``corrupt_vector``; both receive the full injection context as keyword
arguments and return the (possibly corrupted) value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import FaultModel
from repro.faults.schedule import InjectionSchedule, Persistence
from repro.faults.sandbox import Sandbox
from repro.utils.rng import as_generator

__all__ = ["InjectionRecord", "FaultInjector", "NullInjector"]


@dataclass(frozen=True)
class InjectionRecord:
    """One executed corruption, kept for post-mortem analysis."""

    site: str
    original: float
    corrupted: float
    outer_iteration: int
    inner_solve_index: int
    inner_iteration: int
    aggregate_inner_iteration: int
    mgs_index: int
    vector_index: int = -1
    context: dict = field(default_factory=dict)


class FaultInjector:
    """Injects faults according to a model and a schedule.

    Parameters
    ----------
    model : FaultModel
        The corruption applied to eligible values.
    schedule : InjectionSchedule
        Eligibility predicate.
    sandbox : Sandbox, optional
        If given, corruption only happens while the sandbox is active.  The
        nested FT-GMRES driver attaches its inner-solve sandbox automatically.
    vector_index : int, optional
        For vector sites, the element to corrupt (random when omitted).
    rng : seed or Generator, optional
        Randomness source for random element selection.
    enabled : bool
        Master switch; a disabled injector never corrupts anything.
    """

    def __init__(self, model: FaultModel, schedule: InjectionSchedule,
                 sandbox: Sandbox | None = None, vector_index: int | None = None,
                 rng=None, enabled: bool = True):
        if not isinstance(model, FaultModel):
            raise TypeError(f"model must be a FaultModel, got {type(model).__name__}")
        if not isinstance(schedule, InjectionSchedule):
            raise TypeError(
                f"schedule must be an InjectionSchedule, got {type(schedule).__name__}"
            )
        self.model = model
        self.schedule = schedule
        self.sandbox = sandbox
        self.vector_index = vector_index
        self.enabled = bool(enabled)
        self._rng = as_generator(rng)
        self.records: list[InjectionRecord] = []
        self._eligible_calls_seen = 0
        # Persistence windows are tracked per site, so a sticky fault at one
        # site (say spmv) never consumes the window of another (precond) —
        # the "per-site persistence" contract of rate schedules.  Single-site
        # schedules see exactly the historical single-window behavior.
        self._sticky_started: set[str] = set()
        self._sticky_remaining: dict[str, int] = {}
        # Rate schedules mark transient faults as "once per scheduled point
        # per site"; this records the (site, aggregate iteration) points that
        # have already fired.
        self._fired_points: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach_sandbox(self, sandbox: Sandbox) -> None:
        """Attach (or replace) the sandbox gating this injector."""
        self.sandbox = sandbox

    def reset(self) -> None:
        """Forget all prior corruptions so the injector can be reused."""
        self.records.clear()
        self._eligible_calls_seen = 0
        self._sticky_started.clear()
        self._sticky_remaining.clear()
        self._fired_points.clear()

    @property
    def injections_performed(self) -> int:
        """Number of corruptions executed so far."""
        return len(self.records)

    # ------------------------------------------------------------------ #
    # firing logic
    # ------------------------------------------------------------------ #
    def _may_fire(self, site: str, context: dict) -> bool:
        if not self.enabled:
            return False
        if self.sandbox is not None and not self.sandbox.active:
            return False
        if not self.schedule.matches(site, **context):
            return False
        persistence = self.schedule.persistence
        cap = self.schedule.max_injections
        if cap is not None and self.injections_performed >= cap:
            # Sticky faults may still be within their window but the explicit
            # cap always wins.
            return False
        if persistence is Persistence.TRANSIENT:
            if getattr(self.schedule, "transient_per_point", False):
                point = (site, int(context.get("aggregate_inner_iteration", -1)))
                return point not in self._fired_points
            return self.injections_performed < 1
        if persistence is Persistence.STICKY:
            if site not in self._sticky_started:
                self._sticky_started.add(site)
                self._sticky_remaining[site] = self.schedule.sticky_count
            if self._sticky_remaining[site] <= 0:
                return False
            return True
        return True  # PERSISTENT

    def _record(self, site: str, original: float, corrupted: float, context: dict,
                vector_index: int = -1) -> None:
        if (self.schedule.persistence is Persistence.STICKY
                and self._sticky_remaining.get(site, 0) > 0):
            self._sticky_remaining[site] -= 1
        self._fired_points.add((site, int(context.get("aggregate_inner_iteration", -1))))
        self.records.append(
            InjectionRecord(
                site=site,
                original=float(original),
                corrupted=float(corrupted),
                outer_iteration=int(context.get("outer_iteration", -1)),
                inner_solve_index=int(context.get("inner_solve_index", -1)),
                inner_iteration=int(context.get("inner_iteration", -1)),
                aggregate_inner_iteration=int(context.get("aggregate_inner_iteration", -1)),
                mgs_index=int(context.get("mgs_index", -1)),
                vector_index=vector_index,
                context=dict(context),
            )
        )

    # ------------------------------------------------------------------ #
    # solver-facing protocol
    # ------------------------------------------------------------------ #
    def corrupt_scalar(self, site: str, value: float, **context) -> float:
        """Return ``value``, corrupted if this call is scheduled to fault."""
        if not self._may_fire(site, context):
            return value
        corrupted = self.model.corrupt(float(value))
        self._record(site, value, corrupted, context)
        return corrupted

    def corrupt_vector(self, site: str, vec: np.ndarray, **context) -> np.ndarray:
        """Return ``vec``, with one element corrupted if scheduled to fault."""
        if not self._may_fire(site, context):
            return vec
        vec = np.asarray(vec, dtype=np.float64)
        if vec.size == 0:
            return vec
        index = self.vector_index
        if index is None:
            index = int(self._rng.integers(0, vec.size))
        index = int(np.clip(index, 0, vec.size - 1))
        out = vec.copy()
        original = float(out.reshape(-1)[index])
        out.reshape(-1)[index] = self.model.corrupt(original)
        self._record(site, original, float(out.reshape(-1)[index]), context, vector_index=index)
        return out


class NullInjector:
    """An injector that never corrupts anything (failure-free baseline runs)."""

    records: list = []
    injections_performed = 0

    def attach_sandbox(self, sandbox) -> None:  # pragma: no cover - trivial
        """Accepted for interface compatibility; has no effect."""

    def corrupt_scalar(self, site: str, value: float, **context) -> float:
        return value

    def corrupt_vector(self, site: str, vec, **context):
        return vec

    def reset(self) -> None:  # pragma: no cover - trivial
        """Nothing to reset."""
