"""Black-box injection targets: faulty operator and preconditioner wrappers.

The paper surveys prior work that injects bit flips into the *output of
kernels* such as the sparse matrix–vector product, treating the solver as a
black box.  These wrappers reproduce that style of study so it can be
compared against the paper's white-box (Hessenberg-coefficient) injection:

* :class:`FaultyOperator` wraps any linear operator and corrupts the result
  of ``matvec`` according to a schedule (site ``"spmv"``);
* :class:`FaultyPreconditioner` wraps a preconditioner and corrupts the
  result of ``apply`` (site ``"precond"``).

Both keep their own invocation counters so schedules expressed in "aggregate
inner iteration" terms work even outside a solver (each matvec counts as one
iteration).

Inside a solver, raw call counts are the *wrong* coordinates — a GMRES cycle
performs extra matvecs (initial and true residuals) that would silently shift
aggregate-iteration schedules.  The solvers therefore recognize these
wrappers and call :meth:`FaultyOperator.matvec_in_context` /
:meth:`FaultyPreconditioner.apply_in_context` with their live
:meth:`~repro.core.arnoldi.ArnoldiContext.current_context`, so schedules see
the same coordinates as the native white-box sites.  The plain
``matvec``/``apply`` entry points keep the historical call-count behavior
bit for bit (standalone black-box studies are unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import FaultInjector
from repro.precond.base import Preconditioner
from repro.sparse.linear_operator import LinearOperator, aslinearoperator

__all__ = ["FaultyOperator", "FaultyPreconditioner"]


class FaultyOperator(LinearOperator):
    """A linear operator whose ``matvec`` output may be silently corrupted.

    Parameters
    ----------
    A : matrix or operator
        The correct operator.
    injector : FaultInjector
        Decides when and how the output vector is corrupted.  The schedule's
        site should be ``"spmv"`` (or ``"*"``).
    """

    def __init__(self, A, injector: FaultInjector):
        self._op = aslinearoperator(A)
        self.shape = self._op.shape
        self.injector = injector
        self.calls = 0

    @property
    def operator(self):
        """The wrapped (fault-free) operator.

        Solvers that recognize this wrapper compute their *reliable*
        residuals through it — the sandbox model keeps host-side arithmetic
        clean — while Arnoldi matvecs go through
        :meth:`matvec_in_context`.
        """
        return self._op

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = self._op.matvec(x)
        result = self.injector.corrupt_vector(
            "spmv", y,
            outer_iteration=-1, inner_solve_index=-1,
            inner_iteration=self.calls, aggregate_inner_iteration=self.calls,
            mgs_index=-1, mgs_length=0,
        )
        self.calls += 1
        return result

    def matvec_in_context(self, x: np.ndarray, context: dict) -> np.ndarray:
        """``matvec`` with solver-supplied injection context.

        Called by the solvers with their live iteration coordinates so
        aggregate-iteration schedules fire where they would at the native
        ``spmv`` site, instead of being shifted by non-Arnoldi matvecs
        (initial/true residuals) the raw call counter would include.
        """
        y = self._op.matvec(x)
        result = self.injector.corrupt_vector("spmv", y, **context)
        self.calls += 1
        return result

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Transpose product; faults are only injected into the forward product."""
        return self._op.rmatvec(x)


class FaultyPreconditioner(Preconditioner):
    """A preconditioner whose ``apply`` output may be silently corrupted.

    Parameters
    ----------
    preconditioner : Preconditioner or callable
        The correct preconditioner.
    injector : FaultInjector
        Decides when and how the output is corrupted.  The schedule's site
        should be ``"precond"`` (or ``"*"``).
    """

    def __init__(self, preconditioner, injector: FaultInjector):
        if hasattr(preconditioner, "apply"):
            self._apply = preconditioner.apply
            self.shape = getattr(preconditioner, "shape", (0, 0))
        elif callable(preconditioner):
            self._apply = preconditioner
            self.shape = (0, 0)
        else:
            raise TypeError("preconditioner must expose apply() or be callable")
        self.injector = injector
        self.calls = 0

    def apply(self, r: np.ndarray) -> np.ndarray:
        z = np.asarray(self._apply(r), dtype=np.float64)
        result = self.injector.corrupt_vector(
            "precond", z,
            outer_iteration=-1, inner_solve_index=-1,
            inner_iteration=self.calls, aggregate_inner_iteration=self.calls,
            mgs_index=-1, mgs_length=0,
        )
        self.calls += 1
        return result

    def apply_in_context(self, r: np.ndarray, context: dict) -> np.ndarray:
        """``apply`` with solver-supplied injection context (see FaultyOperator)."""
        z = np.asarray(self._apply(r), dtype=np.float64)
        result = self.injector.corrupt_vector("precond", z, **context)
        self.calls += 1
        return result
