"""Structured solver event logging — the legacy adapter over the event bus.

Solvers and the fault-injection machinery emit events into an
:class:`EventLog`.  Since the unified results subsystem
(:mod:`repro.results.events`) the log is itself an
:class:`~repro.results.events.EventSink`: it stores the typed
:class:`~repro.results.events.Event` records (``SolverEvent`` is the same
class) *and* can forward each one, as it is recorded, to downstream sinks —
which is how ``gmres(..., events=some_sink)`` streams solver events without
changing a single floating-point operation.

Experiments use the log to answer questions such as "was the injected fault
detected?" or "how many entries did the filter reject?" without parsing text
output.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.results.events import Event, EventSink, ensure_sink

__all__ = ["SolverEvent", "EventLog"]

#: The unified event schema.  ``SolverEvent`` predates the results subsystem
#: and remains as the historical name of the same type.
SolverEvent = Event


class EventLog(EventSink):
    """An append-only list of :class:`Event` with query helpers.

    Parameters
    ----------
    forward_to : EventSink, callable, list, or None
        Optional downstream sink(s); every event recorded into (or merged
        into) this log is forwarded as it arrives.
    """

    def __init__(self, forward_to=None) -> None:
        self._events: list[Event] = []
        sink = ensure_sink(forward_to)
        self._sinks: tuple[EventSink, ...] = (sink,) if sink is not None else ()

    @classmethod
    def ensure(cls, events) -> "EventLog":
        """Coerce a solver's ``events=`` argument to an EventLog.

        ``None`` makes a fresh log; logs pass through; any other
        :class:`EventSink` (or bare callable) is wrapped in a log that
        forwards to it — so solvers keep their result-attached log semantics
        while the caller observes the stream.
        """
        if events is None:
            return cls()
        if isinstance(events, cls):
            return events
        return cls(forward_to=events)

    # ------------------------------------------------------------------ #
    # sink protocol
    # ------------------------------------------------------------------ #
    def emit(self, event: Event) -> None:
        """Store an event and forward it to any downstream sinks."""
        self._events.append(event)
        for sink in self._sinks:
            sink.emit(event)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, kind: str, where: str = "", outer_iteration: int = -1,
               inner_iteration: int = -1, **data: Any) -> Event:
        """Create, store, and return an event."""
        event = Event(
            kind=kind,
            where=where,
            outer_iteration=outer_iteration,
            inner_iteration=inner_iteration,
            data=dict(data),
        )
        self.emit(event)
        return event

    def extend(self, other: "EventLog") -> None:
        """Append all events from another log (used to merge inner-solve logs).

        Forwarding applies: downstream sinks of *this* log see the merged
        events (in order) as they arrive.  Without sinks this is the
        original single ``list.extend`` — the merge sits on the per-inner-
        solve hot path, so the sink-less default must stay free.
        """
        if not self._sinks:
            self._events.extend(other._events)
            return
        for event in other._events:
            self.emit(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, idx):
        return self._events[idx]

    def of_kind(self, kind: str) -> list[Event]:
        """All events whose ``kind`` matches exactly."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind == kind)

    def has(self, kind: str) -> bool:
        """True if at least one event of the given kind was recorded."""
        return any(e.kind == kind for e in self._events)

    def clear(self) -> None:
        """Drop all events (downstream sinks are not rewound)."""
        self._events.clear()
