"""Structured solver event logging.

Solvers and the fault-injection machinery emit :class:`SolverEvent` records
into an :class:`EventLog`.  Experiments use the log to answer questions such
as "was the injected fault detected?", "in which outer iteration did the
detector fire?", or "how many entries did the filter reject?" without parsing
text output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["SolverEvent", "EventLog"]


@dataclass(frozen=True)
class SolverEvent:
    """A single structured event emitted by a solver or injector.

    Attributes
    ----------
    kind : str
        Event category, e.g. ``"fault_injected"``, ``"fault_detected"``,
        ``"filter_rejected"``, ``"happy_breakdown"``, ``"rank_deficient"``,
        ``"inner_solve_start"``, ``"converged"``.
    where : str
        The code site that emitted the event (e.g. ``"hessenberg"``).
    outer_iteration : int
        Outer (FGMRES) iteration index, or -1 when not applicable.
    inner_iteration : int
        Inner (GMRES/Arnoldi) iteration index, or -1 when not applicable.
    data : dict
        Free-form payload (original value, corrupted value, bound, ...).
    """

    kind: str
    where: str = ""
    outer_iteration: int = -1
    inner_iteration: int = -1
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """An append-only list of :class:`SolverEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: list[SolverEvent] = []

    def record(self, kind: str, where: str = "", outer_iteration: int = -1,
               inner_iteration: int = -1, **data: Any) -> SolverEvent:
        """Create, store, and return an event."""
        event = SolverEvent(
            kind=kind,
            where=where,
            outer_iteration=outer_iteration,
            inner_iteration=inner_iteration,
            data=dict(data),
        )
        self._events.append(event)
        return event

    def extend(self, other: "EventLog") -> None:
        """Append all events from another log (used to merge inner-solve logs)."""
        self._events.extend(other._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SolverEvent]:
        return iter(self._events)

    def __getitem__(self, idx):
        return self._events[idx]

    def of_kind(self, kind: str) -> list[SolverEvent]:
        """All events whose ``kind`` matches exactly."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind == kind)

    def has(self, kind: str) -> bool:
        """True if at least one event of the given kind was recorded."""
        return any(e.kind == kind for e in self._events)

    def clear(self) -> None:
        """Drop all events."""
        self._events.clear()
