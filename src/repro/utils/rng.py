"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (matrix gallery, fault campaigns,
bit-flip models) accepts either an integer seed, an existing
``numpy.random.Generator``, or ``None``.  These helpers normalize that input
so experiment scripts are reproducible by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed_or_rng=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or ``None``.

    Passing an existing generator returns it unchanged (so callers can share
    a stream); passing ``None`` creates a freshly seeded generator.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_generators(seed_or_rng, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used by fault campaigns to give each trial its own stream so trials can
    be reordered or run in parallel without changing results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed_or_rng)
    seeds = root.spawn(count) if hasattr(root, "spawn") else None
    if seeds is not None:
        return list(seeds)
    # Fallback for very old NumPy: derive child seeds from the root stream.
    return [np.random.default_rng(int(root.integers(0, 2**63 - 1))) for _ in range(count)]
