"""Durable file-write helpers.

Every durable JSON record in the repository — run manifests, shard
heartbeats, service job records, the daemon pidfile — must reach disk
through :func:`atomic_write_json`.  The pattern is the classic POSIX
atomic replace:

1. serialize into a same-directory temporary file (``<path>.<pid>.tmp``),
2. flush, and
3. ``os.replace`` the temporary over the destination.

Readers therefore observe either the old complete document or the new
complete document, never a torn intermediate — the property crash
recovery (resume, supervisor restart, daemon SIGKILL recovery) depends
on.  The static-analysis rule ``RPR001`` (see :mod:`repro.analysis`)
flags bare truncating ``open(..., "w")`` / ``json.dump`` calls in the
durability-critical modules so that this helper stays the single
blessed pattern.

Append-only JSONL streams (``trials.jsonl``, event logs) are a different
contract — torn *tails* there are tolerated and trimmed by
``read_trial_file`` — and intentionally do not use this helper.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    The temporary sibling embeds the writer's PID so concurrent writers
    from different processes never collide on the same temporary name;
    last ``os.replace`` wins, and each replace is atomic.
    """
    path = str(path)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
        os.replace(tmp, path)
    finally:
        # On any failure between creation and replace, do not leave the
        # temporary behind to be mistaken for a durable record.
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass


def atomic_write_json(
    path: str,
    payload: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
    default: Callable[[Any], Any] | None = None,
) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    The document always ends with a trailing newline so that shell tools
    (``cat``, ``tail``) compose cleanly with the store layout.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys,
                      default=default)
    atomic_write_text(path, text + "\n")
