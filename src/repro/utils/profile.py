"""Per-phase kernel timing for the solver hot loop.

:class:`KernelProfile` accumulates wall time in the four phases every GMRES
iteration spends its cycles in — the sparse matvec, the preconditioner
application, the orthogonalization sweep, and the projected least-squares
update — so benchmark reports can show *where* a configuration's time goes
(which kernel tier helped, and what the next bottleneck is).

The profile is strictly opt-in: solvers take ``profile=None`` by default and
skip every timing call on that path, so failure-free and campaign hot loops
pay zero overhead unless a caller asks.  When enabled, the timed closures
pass values through unchanged (a ``perf_counter`` pair around the same
calls), so profiled results are bit-identical to unprofiled ones.
"""

from __future__ import annotations

import time

__all__ = ["KernelProfile"]

#: The phases a profile accumulates, in reporting order.
_PHASES = ("spmv", "precond", "orth", "lsq")


class KernelProfile:
    """Accumulated per-phase seconds (and call counts) of one or more solves.

    Attributes
    ----------
    spmv_time, precond_time, orth_time, lsq_time : float
        Wall seconds accumulated per phase.
    spmv_calls, precond_calls, orth_calls, lsq_calls : int
        Number of timed regions per phase.
    """

    __slots__ = tuple(f"{p}_time" for p in _PHASES) + \
        tuple(f"{p}_calls" for p in _PHASES)

    def __init__(self) -> None:
        for phase in _PHASES:
            setattr(self, f"{phase}_time", 0.0)
            setattr(self, f"{phase}_calls", 0)

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        if phase not in _PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {_PHASES}")
        setattr(self, f"{phase}_time", getattr(self, f"{phase}_time") + seconds)
        setattr(self, f"{phase}_calls", getattr(self, f"{phase}_calls") + calls)

    def merge(self, other: "KernelProfile") -> "KernelProfile":
        """Fold another profile's accumulations into this one (returns self)."""
        for phase in _PHASES:
            self.add(phase, getattr(other, f"{phase}_time"),
                     getattr(other, f"{phase}_calls"))
        return self

    @property
    def total_time(self) -> float:
        """Seconds across all phases (excludes untimed bookkeeping)."""
        return sum(getattr(self, f"{p}_time") for p in _PHASES)

    def to_dict(self) -> dict:
        """JSON-ready ``{phase: {"seconds": ..., "calls": ...}}`` mapping."""
        out = {}
        for phase in _PHASES:
            out[phase] = {"seconds": getattr(self, f"{phase}_time"),
                          "calls": getattr(self, f"{phase}_calls")}
        out["total_seconds"] = self.total_time
        return out

    def timed(self, phase: str, func):
        """Wrap ``func`` so each call accumulates into ``phase``.

        The wrapper passes arguments and the return value through unchanged;
        only two ``perf_counter`` reads are added around the call.
        """
        def _timed(*args, _func=func, _phase=phase, **kwargs):
            start = time.perf_counter()
            result = _func(*args, **kwargs)
            self.add(_phase, time.perf_counter() - start)
            return result

        return _timed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{p}={getattr(self, f'{p}_time'):.4f}s/{getattr(self, f'{p}_calls')}"
            for p in _PHASES)
        return f"KernelProfile({parts})"
