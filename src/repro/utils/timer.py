"""A tiny wall-clock timer used by the experiment harness.

The paper reports time-to-solution in iterations rather than seconds, but the
harness still records wall time per solve so the benchmark output can show
both.  ``Timer`` is a context manager and an accumulator.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating wall-clock timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    >>> t.calls
    1
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.calls: int = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self.calls += 1
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per timed region (0.0 if never used)."""
        return self.elapsed / self.calls if self.calls else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer(elapsed={self.elapsed:.6f}s, calls={self.calls})"
