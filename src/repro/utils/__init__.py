"""Shared utilities: validation, RNG handling, timing, and event logging.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage can use them without circular imports.
"""

from repro.utils.validation import (
    as_dense_vector,
    check_square,
    check_matching_shapes,
    require_positive_int,
    require_nonnegative,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.events import EventLog, SolverEvent

__all__ = [
    "as_dense_vector",
    "check_square",
    "check_matching_shapes",
    "require_positive_int",
    "require_nonnegative",
    "as_generator",
    "spawn_generators",
    "Timer",
    "EventLog",
    "SolverEvent",
]
