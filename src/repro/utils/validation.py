"""Input validation helpers used across the library.

All solver entry points funnel user input through these functions so that
error messages are consistent and the numerical kernels can assume clean,
contiguous float64 data (see the HPC guide: keep hot loops free of checks).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_dense_vector",
    "check_square",
    "check_matching_shapes",
    "require_positive_int",
    "require_nonnegative",
]


def as_dense_vector(x, n: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce ``x`` to a contiguous 1-D float64 array.

    Parameters
    ----------
    x : array_like
        Input data.  A ``(n, 1)`` or ``(1, n)`` array is flattened.
    n : int, optional
        Required length.  If given and the coerced vector has a different
        length, a ``ValueError`` is raised.
    name : str
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` vector.  The input is copied only when
        necessary (dtype/contiguity conversion or reshaping).
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.reshape(-1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    return np.ascontiguousarray(arr)


def check_square(shape: tuple[int, int], name: str = "matrix") -> int:
    """Validate that ``shape`` is square and return its dimension."""
    if len(shape) != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {shape}")
    nrows, ncols = shape
    if nrows != ncols:
        raise ValueError(f"{name} must be square, got shape {shape}")
    return nrows


def check_matching_shapes(op_shape: tuple[int, int], b: np.ndarray, name: str = "b") -> None:
    """Validate that a right-hand side is compatible with an operator shape."""
    if b.shape[0] != op_shape[0]:
        raise ValueError(
            f"{name} has length {b.shape[0]} but the operator has {op_shape[0]} rows"
        )


def require_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def require_nonnegative(value, name: str) -> float:
    """Validate that ``value`` is a finite non-negative float and return it."""
    fvalue = float(value)
    if not np.isfinite(fvalue) or fvalue < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return fvalue
