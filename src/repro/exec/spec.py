"""Picklable descriptions of campaign work: trial specs and campaign configs.

The execution engine ships work to worker threads/processes in two pieces:

* a :class:`CampaignConfig` — everything needed to (re)construct a
  :class:`~repro.faults.campaign.FaultCampaign`, sent **once per worker**
  (via the pool initializer) so the test matrix and detector bounds are
  built once per worker, not once per trial;
* a stream of tiny :class:`TrialSpec` values — one per faulted solve —
  batched into chunks.

Both are plain picklable dataclasses, so they cross process boundaries with
any multiprocessing start method (fork or spawn).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TrialSpec", "ProblemFactory", "CampaignConfig"]


@dataclass(frozen=True)
class TrialSpec:
    """One unit of campaign work: a single faulted nested solve.

    Attributes
    ----------
    index : int
        Position of this trial in the campaign's canonical (serial) order.
        Results are reassembled by this index, which is what makes parallel
        output trial-for-trial identical to serial output.
    fault_class : str
        Key into the campaign's ``fault_classes`` mapping.
    aggregate_inner_iteration : int
        The injection location (x-axis of the paper's Figures 3 and 4).
    """

    index: int
    fault_class: str
    aggregate_inner_iteration: int


@dataclass(frozen=True)
class ProblemFactory:
    """A deferred, picklable recipe for building a test problem in a worker.

    Shipping a factory instead of a built problem keeps the per-worker
    payload tiny (a function reference plus scalar arguments) and lets each
    worker build the matrix locally — useful when the matrix is large or when
    the pool uses the ``spawn`` start method.

    Attributes
    ----------
    func : callable
        A module-level callable returning a
        :class:`~repro.gallery.problems.TestProblem`
        (e.g. :func:`repro.gallery.problems.poisson_problem`).
    args, kwargs :
        Positional and keyword arguments for ``func``.
    """

    func: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def build(self):
        """Build the problem."""
        return self.func(*self.args, **self.kwargs)


@dataclass(frozen=True)
class CampaignConfig:
    """A picklable snapshot of a :class:`~repro.faults.campaign.FaultCampaign`.

    Exactly one of ``problem`` / ``problem_factory`` is set.  ``detector``
    carries the *specification* the campaign was constructed with (``None``,
    ``"bound"``, or a detector instance), so workers that rebuild the problem
    also rebuild the matching detector bound.
    """

    problem: object | None
    problem_factory: ProblemFactory | None
    inner_iterations: int
    max_outer: int
    outer_tol: float
    fault_classes: dict
    mgs_position: str
    detector: object | None
    detector_response: str
    site: str
    inner_params: object | None = None
    outer_params: object | None = None
    kernels: str | None = None
    fault_rate: int | None = None
    fault_persistence: str | None = None
    trial_timeout: float | None = None

    def __post_init__(self) -> None:
        if (self.problem is None) == (self.problem_factory is None):
            raise ValueError("exactly one of problem/problem_factory must be given")

    def build_problem(self):
        """The campaign's test problem (built locally when deferred)."""
        if self.problem is not None:
            return self.problem
        return self.problem_factory.build()

    def build_campaign(self):
        """Construct an equivalent, *independent* :class:`FaultCampaign`.

        The detector and fault models are deep-copied so campaigns built for
        different worker threads/processes never share mutable state (e.g. a
        ``NormGrowthDetector``'s running reference or a random
        ``BitFlipFault``'s generator).

        Note on determinism: for the paper's configuration — stateless
        detectors and deterministic fault models — parallel execution is
        trial-for-trial identical to serial execution.  Components that
        *accumulate state across trials* see per-worker rather than global
        sequential history, so sweeps using them should run on the
        ``"serial"`` backend.
        """
        from repro.faults.campaign import FaultCampaign

        return FaultCampaign(
            self.build_problem(),
            inner_iterations=self.inner_iterations,
            max_outer=self.max_outer,
            outer_tol=self.outer_tol,
            fault_classes=copy.deepcopy(self.fault_classes),
            mgs_position=self.mgs_position,
            detector=copy.deepcopy(self.detector),
            detector_response=self.detector_response,
            site=self.site,
            inner_params=copy.deepcopy(self.inner_params),
            outer_params=copy.deepcopy(self.outer_params),
            kernels=self.kernels,
            fault_rate=self.fault_rate,
            fault_persistence=self.fault_persistence,
            trial_timeout=self.trial_timeout,
        )
