"""Crash-supervised sharded campaign execution.

The pool backends in :mod:`repro.exec.executor` assume cooperative workers:
a worker that segfaults, is OOM-killed, or wedges inside a sparse kernel
takes the whole campaign down with it, and ``trial_timeout`` can only be
checked *after* a trial finishes.  This module supervises instead of
trusting:

* the trial list is partitioned into ``shards`` contiguous blocks
  (:func:`partition_shards`), each run by a dedicated worker **process**;
* every worker appends finished trials to its own durable shard store
  (``<run_dir>/shard-<k>/trials.jsonl`` — the exact line format of the flat
  :class:`~repro.results.store.RunStore` layout, so shard stores merge on
  read) and refreshes a heartbeat file once per trial;
* the supervisor tails the shard files (yielding records as they land),
  SIGKILLs a worker whose heartbeat shows its current trial past the hard
  ``trial_timeout``, restarts crashed workers with exponential backoff, and
  counts per-trial crash blame — a trial that takes its worker down
  ``max_retries`` times is quarantined as a ``status="error"`` record whose
  message starts with ``"poison"`` instead of wedging the shard forever;
* SIGTERM (or :meth:`ShardedSupervisor.request_drain`) drains gracefully:
  workers finish their current trial and exit at the next trial boundary,
  every durable record is collected, and :class:`SupervisorDrained` is
  raised so the caller checkpoints — ``resume=True`` re-runs exactly the
  casualties.

Communication is file-only (trial files + heartbeats); nothing is lost when
a worker dies mid-anything — a torn trailing line is truncated away once
the writer is confirmed dead, exactly like
:meth:`~repro.results.store.RunStore.recover`.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
import time

from repro.results.store import read_trial_file, shard_dir_name
from repro.utils.io import atomic_write_json

__all__ = ["DEFAULT_HEARTBEAT_INTERVAL", "DEFAULT_MAX_RETRIES", "EXIT_DRAINED",
           "ShardedSupervisor", "SupervisorDrained", "partition_shards",
           "read_heartbeat", "write_heartbeat"]

#: Crashes a single trial may cause before it is quarantined as poison.
DEFAULT_MAX_RETRIES = 3
#: Seconds between supervisor liveness polls of the shard heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 0.1
#: Worker exit code meaning "drained at a trial boundary" (not a crash).
EXIT_DRAINED = 96

_TRIALS = "trials.jsonl"  # must match the repro.results.store layout
_HEARTBEAT = "heartbeat.json"


class SupervisorDrained(RuntimeError):
    """The supervised campaign was drained (SIGTERM / ``request_drain``).

    Every record durable at drain time was yielded before this was raised;
    the un-run remainder stays un-run so a store-backed campaign resumes
    exactly the casualties.
    """


def partition_shards(specs, shards: int) -> list[list]:
    """Split a spec list into ``shards`` contiguous, balanced blocks.

    Always returns exactly ``shards`` blocks whose sizes differ by at most
    one, covering the input in order (block k gets the k-th contiguous
    slice).  Deterministic, so a resume that re-partitions the remaining
    specs is stable.
    """
    specs = list(specs)
    shards = int(shards)
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(len(specs), shards)
    blocks = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        blocks.append(specs[start:start + size])
        start += size
    return blocks


def write_heartbeat(path: str, payload: dict) -> None:
    """Atomically replace a heartbeat file (readers never see a tear)."""
    atomic_write_json(path, payload)


def read_heartbeat(path: str) -> dict | None:
    """A heartbeat payload, or ``None`` when absent/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, ValueError):
        return None


# ---------------------------------------------------------------------- #
# the worker (module level so it works under any start method)
# ---------------------------------------------------------------------- #
def _shard_worker(config, specs, shard_dir: str, provenance, retries,
                  chaos) -> None:
    """Run one shard's trials, appending each to the shard's trial file.

    Per trial: refresh the heartbeat (the supervisor's liveness/timeout
    signal), run the solve with PR 7's crash isolation, append the finished
    record as one flushed JSONL line.  SIGTERM requests a drain — the
    current trial finishes, then the worker exits :data:`EXIT_DRAINED` at
    the trial boundary.  ``chaos`` (test instrumentation) may kill this
    process, raise, delay heartbeats, or tear the trailing append.
    """
    drain = {"requested": False}

    def _on_term(signum, frame):  # noqa: ARG001 - signal handler signature
        drain["requested"] = True

    signal.signal(signal.SIGTERM, _on_term)
    campaign = config.build_campaign()
    if provenance:
        campaign.provenance.update(provenance)
    trial_path = os.path.join(shard_dir, _TRIALS)
    heartbeat_path = os.path.join(shard_dir, _HEARTBEAT)
    done = 0
    total = len(specs)
    with open(trial_path, "ab") as handle:
        for spec in specs:
            if drain["requested"]:
                sys.exit(EXIT_DRAINED)
            if chaos is not None:
                chaos.on_heartbeat(spec.index)
            # Heartbeat timestamps are infrastructure liveness, not trial
            # identity — the one legitimate wall-clock read in a worker.
            now = time.time()  # repro: allow(RPR002)
            write_heartbeat(heartbeat_path, {
                "pid": os.getpid(), "current_index": int(spec.index),
                "started_at": now, "done": done, "total": total,
                "updated_at": now,
            })
            if chaos is not None:
                chaos.on_trial_start(spec.index)
            record = campaign.stamp(campaign.run_spec_safe(spec))
            attempts = int(retries.get(spec.index, 0)) if retries else 0
            if attempts:
                record = dataclasses.replace(record, retries=attempts)
            line = (json.dumps({"index": int(spec.index), **record.to_dict()})
                    + "\n").encode("utf-8")
            if chaos is not None and chaos.should_tear(spec.index):
                # Crash mid-append: a flushed partial line with no newline —
                # the exact torn-tail signature recover()/the supervisor heal.
                handle.write(line[: max(1, (2 * len(line)) // 3)])
                handle.flush()
                os.fsync(handle.fileno())
                os.kill(os.getpid(), signal.SIGKILL)
            handle.write(line)
            handle.flush()
            done += 1
            if chaos is not None:
                chaos.on_trial_appended(spec.index)
    sys.exit(0)


class _Shard:
    """Supervisor-side bookkeeping for one worker process."""

    __slots__ = ("id", "specs", "by_index", "dir", "trial_path",
                 "heartbeat_path", "proc", "offset", "recorded", "yielded",
                 "done", "restarts", "restart_at", "timeout_kill")

    def __init__(self, shard_id: int, specs, shard_dir: str):
        self.id = shard_id
        self.specs = list(specs)
        self.by_index = {spec.index: spec for spec in self.specs}
        self.dir = shard_dir
        self.trial_path = os.path.join(shard_dir, _TRIALS)
        self.heartbeat_path = os.path.join(shard_dir, _HEARTBEAT)
        self.proc = None
        self.offset: int | None = None  # tail position in the trial file
        self.recorded: set[int] = set()  # durable indices from this session
        self.yielded: set[int] = set()
        self.done = False
        self.restarts = 0
        self.restart_at = 0.0
        self.timeout_kill: int | None = None


# ---------------------------------------------------------------------- #
# the supervisor
# ---------------------------------------------------------------------- #
class ShardedSupervisor:
    """Supervises shard worker processes for one campaign execution.

    Parameters
    ----------
    config : CampaignConfig
        The picklable campaign snapshot each worker rebuilds.
    shards : int
        Worker-process count (capped at the number of specs).
    max_retries : int, optional
        Crashes one trial may cause before poison quarantine (default
        :data:`DEFAULT_MAX_RETRIES`).
    heartbeat_interval : float, optional
        Supervisor poll cadence in seconds (default
        :data:`DEFAULT_HEARTBEAT_INTERVAL`).
    trial_timeout : float, optional
        Hard per-trial budget; defaults to ``config.trial_timeout``.  A
        worker whose heartbeat shows its current trial past the budget is
        SIGKILL-ed and the trial recorded as a hard-timeout error.
    run_dir : str, optional
        Directory for the ``shard-<k>/`` stores (a RunStore run directory,
        or an ephemeral temp dir when omitted).
    chaos : ChaosPolicy, optional
        Infrastructure fault injection (:mod:`repro.faults.chaos`).
    provenance : dict, optional
        Provenance stamps (``repro_version``/``seed``/``spec_hash``) for
        worker- and supervisor-produced records.
    on_state : callable, optional
        ``on_state({"retries": ..., "quarantined": ...})`` fired whenever
        retry/quarantine bookkeeping changes (persisted into the manifest
        by the run store).
    """

    def __init__(self, config, *, shards: int, max_retries: int | None = None,
                 heartbeat_interval: float | None = None,
                 trial_timeout: float | None = None,
                 run_dir: str | None = None, chaos=None, provenance=None,
                 on_state=None, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, drain_grace: float = 10.0):
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.config = config
        self.shards = int(shards)
        self.max_retries = (DEFAULT_MAX_RETRIES if max_retries is None
                            else int(max_retries))
        if self.max_retries <= 0:
            raise ValueError(
                f"max_retries must be positive, got {self.max_retries}")
        self.heartbeat_interval = (DEFAULT_HEARTBEAT_INTERVAL
                                   if heartbeat_interval is None
                                   else float(heartbeat_interval))
        if self.heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be positive, "
                             f"got {self.heartbeat_interval}")
        self.trial_timeout = (config.trial_timeout if trial_timeout is None
                              else trial_timeout)
        self.run_dir = run_dir
        self.chaos = chaos
        self.provenance = dict(provenance or {})
        self.on_state = on_state
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.drain_grace = float(drain_grace)
        #: Per-trial crash counts (``{trial index: crashes}``).
        self.retries: dict[int, int] = {}
        #: Indices quarantined as poison this session.
        self.quarantined: set[int] = set()
        self._drain_requested = False
        self._drain_signal = False
        try:
            # fork: workers inherit the built config cheaply; fall back to
            # the platform default where fork is unavailable.
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._mp = multiprocessing.get_context()

    # ------------------------------------------------------------------ #
    def request_drain(self) -> None:
        """Ask the supervisor to drain gracefully (programmatic SIGTERM)."""
        self._drain_requested = True

    def state(self) -> dict:
        """JSON-ready retry/quarantine bookkeeping (manifest payload)."""
        return {
            "retries": {str(index): int(count)
                        for index, count in sorted(self.retries.items())},
            "quarantined": sorted(int(i) for i in self.quarantined),
        }

    # ------------------------------------------------------------------ #
    def iter_records(self, specs):
        """Supervise the shards; yield ``(index, record)`` as trials land.

        The generator is the supervisor: consuming it drives spawning,
        heartbeat/timeout policing, restarts, and quarantine.  Raises
        :class:`SupervisorDrained` after a graceful drain.
        """
        specs = list(specs)
        if not specs:
            return
        own_dir = None
        run_dir = self.run_dir
        if run_dir is None:
            # Storeless campaign: the shard stores still need a durable
            # home (they are the crash-survival mechanism), just not a
            # permanent one.
            own_dir = tempfile.mkdtemp(prefix="repro-shards-")
            run_dir = own_dir
        chaos = (self.chaos.bound_to(run_dir)
                 if self.chaos is not None else None)
        shard_count = min(self.shards, len(specs))
        shards = []
        for shard_id, block in enumerate(partition_shards(specs, shard_count)):
            shard_dir = os.path.join(run_dir, shard_dir_name(shard_id))
            os.makedirs(shard_dir, exist_ok=True)
            shards.append(_Shard(shard_id, block, shard_dir))
        previous_handler = None
        handler_installed = False
        try:
            try:
                previous_handler = signal.signal(signal.SIGTERM,
                                                 self._on_sigterm)
                handler_installed = True
            except ValueError:
                pass  # not the main thread: request_drain() still works
            for shard in shards:
                self._spawn(shard, chaos)
            while True:
                if self._drain_requested:
                    yield from self._drain(shards)
                    raise SupervisorDrained(
                        "supervised campaign drained; durable records were "
                        "yielded, resume re-runs the remainder")
                progressed = False
                for shard in shards:
                    for item in self._poll(shard, chaos):
                        progressed = True
                        yield item
                if all(shard.done for shard in shards):
                    break
                if not progressed:
                    time.sleep(min(self.heartbeat_interval, 0.05))
        finally:
            for shard in shards:
                proc = shard.proc
                if proc is not None:
                    if proc.is_alive():
                        proc.kill()
                    proc.join()
                    shard.proc = None
            if handler_installed:
                signal.signal(signal.SIGTERM, previous_handler)
                if self._drain_signal:
                    # The drain was signal-initiated: re-deliver SIGTERM so
                    # the process reports the interruption to its parent
                    # (`timeout --signal=TERM` in CI sees exit 143) now that
                    # every checkpoint is durable.
                    os.kill(os.getpid(), signal.SIGTERM)
            if own_dir is not None:
                shutil.rmtree(own_dir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # shard lifecycle
    # ------------------------------------------------------------------ #
    def _pending(self, shard: _Shard) -> list:
        return [spec for spec in shard.specs
                if spec.index not in shard.recorded]

    def _spawn(self, shard: _Shard, chaos) -> None:
        pending = self._pending(shard)
        if not pending:
            shard.done = True
            return
        if shard.offset is None:
            # First spawn: heal any prior-session torn tail and start the
            # tail offset past prior records (a resume's already-superseded
            # error records must not be re-yielded as this session's work).
            _, valid_bytes, torn = read_trial_file(shard.trial_path)
            if torn:
                with open(shard.trial_path, "rb+") as handle:
                    handle.truncate(valid_bytes)
            shard.offset = valid_bytes
        try:
            # A stale heartbeat (from a dead worker or prior session) must
            # never feed the timeout police.
            os.unlink(shard.heartbeat_path)
        except OSError:
            pass
        retries = {index: count for index, count in self.retries.items()}
        shard.proc = self._mp.Process(
            target=_shard_worker,
            args=(self.config, pending, shard.dir, self.provenance, retries,
                  chaos),
            daemon=True,
        )
        shard.proc.start()

    def _poll(self, shard: _Shard, chaos):
        """One supervision step for one shard (a generator of records)."""
        if shard.done:
            return
        yield from self._collect(shard)
        proc = shard.proc
        if proc is None:
            if time.monotonic() >= shard.restart_at:
                self._spawn(shard, chaos)
            return
        if proc.is_alive():
            self._check_timeout(shard)
            return
        proc.join()
        exitcode = proc.exitcode
        shard.proc = None
        yield from self._collect(shard)
        self._truncate_partial(shard)
        if exitcode in (0, EXIT_DRAINED):
            if exitcode == EXIT_DRAINED or not self._pending(shard):
                # Finished its block, or drained (remainder left for resume).
                shard.done = True
            else:  # pragma: no cover - defensive: clean exit with work left
                self._schedule_restart(shard)
            return
        yield from self._handle_crash(shard)

    def _check_timeout(self, shard: _Shard) -> None:
        if self.trial_timeout is None:
            return
        heartbeat = read_heartbeat(shard.heartbeat_path)
        if heartbeat is None:
            return
        index = heartbeat.get("current_index")
        started = heartbeat.get("started_at")
        if index is None or started is None:
            return
        if int(index) in shard.recorded:
            return  # already durable: the worker is past it
        grace = max(2 * self.heartbeat_interval, 0.05)
        # Timeout policing compares against the worker's wall-clock
        # heartbeat stamp; never part of trial identity.
        if time.time() - float(started) > self.trial_timeout + grace:  # repro: allow(RPR002)
            proc = shard.proc
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join()
            # Remember whom we shot: the crash handler records the hard
            # timeout instead of charging the trial a crash retry (the
            # budget verdict is final; only an explicit resume re-runs it).
            shard.timeout_kill = int(index)

    def _handle_crash(self, shard: _Shard):
        if shard.timeout_kill is not None:
            index = shard.timeout_kill
            shard.timeout_kill = None
            if index not in shard.recorded and index in shard.by_index:
                yield from self._append_error(
                    shard, shard.by_index[index],
                    f"hard timeout: trial exceeded trial_timeout="
                    f"{self.trial_timeout:.3f}s; worker killed",
                    retries=self.retries.get(index, 0))
            self._schedule_restart(shard)
            return
        blame = None
        heartbeat = read_heartbeat(shard.heartbeat_path)
        if heartbeat is not None:
            index = heartbeat.get("current_index")
            if index is not None and int(index) not in shard.recorded:
                # Died with this trial in flight.  (If the index is already
                # durable the worker died *between* trials — e.g. killed
                # right after the append landed — and no trial is to blame.)
                blame = int(index)
        else:
            # Died before the first heartbeat: blame the first pending trial
            # (the one it was about to start).
            pending = self._pending(shard)
            if pending:
                blame = pending[0].index
        if blame is not None:
            count = self.retries.get(blame, 0) + 1
            self.retries[blame] = count
            if count >= self.max_retries and blame not in self.quarantined:
                self.quarantined.add(blame)
                if blame in shard.by_index:
                    yield from self._append_error(
                        shard, shard.by_index[blame],
                        f"poison: trial crashed its worker {count} time(s) "
                        f"(max_retries={self.max_retries}); quarantined",
                        retries=count)
            self._emit_state()
        self._schedule_restart(shard)

    def _schedule_restart(self, shard: _Shard) -> None:
        if not self._pending(shard):
            shard.done = True
            return
        shard.restarts += 1
        backoff = min(self.backoff_base * (2 ** (shard.restarts - 1)),
                      self.backoff_cap)
        shard.restart_at = time.monotonic() + backoff

    # ------------------------------------------------------------------ #
    # durable-record plumbing
    # ------------------------------------------------------------------ #
    def _collect(self, shard: _Shard):
        """Yield records appended to the shard file since the last tail."""
        from repro.faults.campaign import TrialRecord

        if shard.offset is None:
            return
        try:
            size = os.path.getsize(shard.trial_path)
        except OSError:
            return
        if size <= shard.offset:
            return
        with open(shard.trial_path, "rb") as handle:
            handle.seek(shard.offset)
            data = handle.read()
        pos = 0
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # incomplete tail: wait (or truncate once dead)
            row = json.loads(data[pos:newline].decode("utf-8"))
            pos = newline + 1
            index = int(row.pop("index"))
            record = TrialRecord.from_dict(row)
            shard.recorded.add(index)
            if index not in shard.yielded:
                shard.yielded.add(index)
                yield index, record
        shard.offset += pos

    def _truncate_partial(self, shard: _Shard) -> None:
        """Heal a torn tail (only ever called with the writer dead)."""
        if shard.offset is None:
            return
        try:
            size = os.path.getsize(shard.trial_path)
        except OSError:
            return
        if size > shard.offset:
            with open(shard.trial_path, "rb+") as handle:
                handle.truncate(shard.offset)

    def _append_error(self, shard: _Shard, spec, message: str,
                      retries: int = 0):
        """Append a supervisor-produced error record; yield it via the tail."""
        record = self._make_error_record(spec, message, retries=retries)
        row = {"index": int(spec.index), **record.to_dict()}
        with open(shard.trial_path, "ab") as handle:
            handle.write((json.dumps(row) + "\n").encode("utf-8"))
            handle.flush()
        yield from self._collect(shard)

    def _make_error_record(self, spec, message: str, retries: int = 0):
        """A sentinel ``status="error"`` record (hard timeout / poison).

        Mirrors ``FaultCampaign._error_record`` — built supervisor-side
        because the campaign object lives in the (dead) worker.
        """
        from repro.faults.campaign import TrialRecord

        model = self.config.fault_classes.get(spec.fault_class)
        record = TrialRecord(
            fault_class=spec.fault_class,
            fault_description=(model.describe() if model is not None
                               else spec.fault_class),
            aggregate_inner_iteration=int(spec.aggregate_inner_iteration),
            mgs_position=self.config.mgs_position,
            outer_iterations=-1,
            total_inner_iterations=-1,
            converged=False,
            status="error",
            residual_norm=float("nan"),
            faults_injected=0,
            faults_detected=0,
            detector_enabled=self.config.detector is not None,
            elapsed=0.0,
            error=str(message),
            retries=int(retries),
        )
        if self.provenance:
            record = dataclasses.replace(record, **self.provenance)
        return record

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #
    def _on_sigterm(self, signum, frame):  # noqa: ARG002 - handler signature
        self._drain_requested = True
        self._drain_signal = True

    def _drain(self, shards):
        """Checkpoint every shard: SIGTERM workers, collect, heal tails."""
        for shard in shards:
            proc = shard.proc
            if proc is not None and proc.is_alive():
                proc.terminate()  # workers exit EXIT_DRAINED at the boundary
        deadline = time.monotonic() + self.drain_grace
        while time.monotonic() < deadline:
            if not any(shard.proc is not None and shard.proc.is_alive()
                       for shard in shards):
                break
            time.sleep(0.02)
        for shard in shards:
            proc = shard.proc
            if proc is None:
                continue
            if proc.is_alive():
                proc.kill()  # stuck mid-trial past the grace: no mercy
            proc.join()
            shard.proc = None
        for shard in shards:
            yield from self._collect(shard)
            self._truncate_partial(shard)

    def _emit_state(self) -> None:
        if self.on_state is not None:
            self.on_state(self.state())
