"""The parallel campaign execution engine.

A fault campaign is hundreds to thousands of *independent* nested FT-GMRES
solves — one per (fault class, injection location) pair.  This module
schedules them over pluggable backends:

* ``"serial"``  — the plain loop (reference semantics, zero overhead);
* ``"thread"``  — a ``ThreadPoolExecutor`` (useful when the solves release
  the GIL in BLAS-heavy kernels, and for testing the dispatch machinery);
* ``"process"`` — a ``ProcessPoolExecutor`` (true parallelism; the paper's
  sweeps are embarrassingly parallel and CPU-bound);
* ``"batched"`` — the trial-batched lockstep engine (:mod:`repro.core.batched`):
  ``batch_size`` trials advance together through shared block kernels in
  this process, amortizing sparse index traffic and interpreter overhead
  across the batch.  Unlike process parallelism it needs no extra CPUs —
  it is the backend that wins on a single-core host.
* ``"sharded"`` — the crash-supervised engine
  (:mod:`repro.exec.supervisor`): the trial range is partitioned into
  ``shards`` contiguous blocks, each run by a dedicated worker process
  writing its own durable shard store; the supervisor watches heartbeats,
  SIGKILLs workers stuck past ``trial_timeout``, restarts crashed workers
  with bounded retries, and quarantines poison trials.  The backend that
  survives segfaults, OOM kills, and stuck kernels.

Design invariants:

* **Per-worker problem construction.**  The campaign configuration (matrix,
  detector bound, fault models) crosses the pool boundary exactly once per
  worker, through the pool initializer; each task then carries only a chunk
  of tiny :class:`~repro.exec.spec.TrialSpec` values.
* **Deterministic result ordering.**  Every spec carries its position in the
  canonical serial order and results are reassembled by that index, so a
  parallel campaign is trial-for-trial identical to a serial one regardless
  of completion order (asserted in the test suite).  The guarantee covers
  stateless detectors and deterministic fault models — the paper's
  configuration; components that accumulate state *across* trials (e.g.
  ``NormGrowthDetector``) see per-worker history under parallel backends
  and should be swept serially.
* **Chunked dispatch.**  Specs are dispatched in chunks to amortize
  inter-process messaging over many ~25 ms solves.
* **Streaming completion.**  :meth:`CampaignExecutor.iter_records` yields
  ``(index, record)`` pairs as trials complete on every backend (lazily on
  serial, per completed chunk/batch on the others) — the primitive under
  ``run()``, the ``iter_trials()`` facade, and the run store's incremental
  checkpointing.  ``progress(done, total)`` callbacks fire per completed
  trial.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.exec.spec import CampaignConfig, TrialSpec

__all__ = ["BACKENDS", "BACKEND_KNOBS", "BackendKnobError", "DEFAULT_BATCH_SIZE",
           "CampaignExecutor", "resolve_workers", "resolve_backend",
           "validate_backend_knobs"]


class BackendKnobError(ValueError):
    """An inconsistent backend/knob combination (a configuration error).

    A distinct type so callers presenting configuration errors (the CLI, the
    spec layer) can catch it without also swallowing genuine ``ValueError``
    bugs raised from inside the numerical kernels.
    """

#: Recognized execution backends.
BACKENDS = ("serial", "thread", "process", "batched", "sharded")

#: Which execution knobs each backend consumes.  Combinations outside this
#: table are rejected up front (see :func:`validate_backend_knobs`) instead
#: of being silently ignored.  Mirrored as metadata in the ``"backend"``
#: namespace of :mod:`repro.registry`.
BACKEND_KNOBS = {
    "serial": frozenset(),
    "thread": frozenset({"workers", "chunksize"}),
    "process": frozenset({"workers", "chunksize"}),
    "batched": frozenset({"batch_size"}),
    "sharded": frozenset({"shards", "max_retries", "heartbeat_interval"}),
}

#: Default lockstep batch width for the ``"batched"`` backend: wide enough to
#: amortize interpreter dispatch across the batch, narrow enough that the
#: per-batch basis blocks stay cache/memory friendly at paper scale.
DEFAULT_BATCH_SIZE = 32

#: Maximum number of chunk futures kept in flight per worker; bounds the
#: memory held by pending results while keeping every worker busy.
_IN_FLIGHT_PER_WORKER = 2


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value, ``REPRO_WORKERS``, or 1.

    ``workers=0`` (or ``REPRO_WORKERS=0``) means "one per CPU".
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is None:
            return 1
        workers = int(env)
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def resolve_backend(backend: str | None, workers: int) -> str:
    """Resolve a backend name; ``None`` picks ``process`` when ``workers > 1``.

    :class:`CampaignExecutor` additionally auto-selects ``"batched"`` when an
    explicit ``batch_size`` was given — that rule needs to know whether the
    worker count was explicit or the ``REPRO_WORKERS`` default, which only
    the executor can tell.
    """
    if backend is None:
        return "process" if workers > 1 else "serial"
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def validate_backend_knobs(backend: str | None, *, workers: int | None = None,
                           chunksize: int | None = None,
                           batch_size: int | None = None,
                           shards: int | None = None,
                           max_retries: int | None = None,
                           heartbeat_interval: float | None = None) -> None:
    """Reject knob/backend combinations that would be silently ignored.

    Only *explicitly supplied* knobs (non-``None``) are checked, so defaults
    and the ``REPRO_WORKERS`` environment variable never trip this.
    ``backend=None`` is always consistent except for ambiguous pairs — an
    explicit ``batch_size`` selects ``'batched'`` and an explicit ``shards``
    selects ``'sharded'``, so combining either with each other or with a
    parallel ``workers`` count has no single resolution (see
    :func:`resolve_backend`).
    Raises :class:`BackendKnobError` with the knob to drop or the backend to pick.
    """
    if backend is not None and backend not in BACKENDS:
        raise BackendKnobError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend is None:
        if batch_size is not None and workers is not None and workers > 1:
            raise BackendKnobError(
                f"batch_size={batch_size} and workers={workers} are mutually "
                f"exclusive without an explicit backend: batch_size selects the "
                f"single-process 'batched' engine; drop one knob or pass backend=")
        if shards is not None and batch_size is not None:
            raise BackendKnobError(
                f"shards={shards} and batch_size={batch_size} are mutually "
                f"exclusive without an explicit backend: shards selects the "
                f"'sharded' supervisor, batch_size selects the 'batched' "
                f"engine; drop one knob or pass backend=")
        if shards is not None and workers is not None and workers > 1:
            raise BackendKnobError(
                f"shards={shards} and workers={workers} are mutually exclusive "
                f"without an explicit backend: the sharded supervisor sizes "
                f"its worker fleet from shards; drop one knob or pass backend=")
        if shards is None:
            for name, value in (("max_retries", max_retries),
                                ("heartbeat_interval", heartbeat_interval)):
                if value is not None:
                    raise BackendKnobError(
                        f"{name}={value} only applies to the supervised backend "
                        f"('sharded'); set shards= or backend='sharded' to "
                        f"select it, or drop {name}.")
        return
    allowed = BACKEND_KNOBS[backend]
    if batch_size is not None and "batch_size" not in allowed:
        raise BackendKnobError(
            f"batch_size only applies to backend='batched' (it is the lockstep "
            f"batch width); backend={backend!r} would ignore batch_size="
            f"{batch_size}. Drop batch_size or use backend='batched'.")
    if chunksize is not None and "chunksize" not in allowed:
        raise BackendKnobError(
            f"chunksize only applies to the pool backends ('thread'/'process'); "
            f"backend={backend!r} would ignore chunksize={chunksize}. "
            f"Drop chunksize or use backend='thread'/'process'.")
    # workers=1 is the serial meaning of "no parallelism" and stays accepted
    # everywhere; only a parallel worker count on a non-pool backend errors.
    # The sharded supervisor also honors workers as a shards fallback, so a
    # parallel count is meaningful there too.
    if (workers is not None and workers != 1 and "workers" not in allowed
            and backend != "sharded"):
        raise BackendKnobError(
            f"workers only applies to the pool backends ('thread'/'process'); "
            f"backend={backend!r} would ignore workers={workers}. "
            f"Drop workers or use backend='thread'/'process'.")
    for name, value in (("shards", shards), ("max_retries", max_retries),
                        ("heartbeat_interval", heartbeat_interval)):
        if value is not None and name not in allowed:
            raise BackendKnobError(
                f"{name} only applies to the supervised backend ('sharded'); "
                f"backend={backend!r} would ignore {name}={value}. "
                f"Drop {name} or use backend='sharded'.")


# ---------------------------------------------------------------------- #
# worker-side plumbing (module level so it pickles under any start method)
# ---------------------------------------------------------------------- #
_PROCESS_CAMPAIGN = None
_THREAD_STATE = threading.local()


def _process_init(config: CampaignConfig) -> None:
    """Process-pool initializer: build the campaign once per worker process."""
    global _PROCESS_CAMPAIGN
    _PROCESS_CAMPAIGN = config.build_campaign()


def _process_chunk(chunk: list[TrialSpec]) -> list[tuple[int, object]]:
    """Run one chunk of trials against the worker-local campaign.

    Crash isolation (``run_spec_safe``): a trial whose solve raises comes
    back as a ``status="error"`` record instead of poisoning the future and
    killing every other trial in the chunk (and, transitively, the run).
    """
    campaign = _PROCESS_CAMPAIGN
    return [(spec.index, campaign.run_spec_safe(spec)) for spec in chunk]


def _thread_init(config: CampaignConfig) -> None:
    """Thread-pool initializer: one campaign per worker thread.

    Detectors may carry running state (e.g. ``NormGrowthDetector``), so
    threads never share a campaign instance.
    """
    _THREAD_STATE.campaign = config.build_campaign()


def _thread_chunk(chunk: list[TrialSpec]) -> list[tuple[int, object]]:
    campaign = _THREAD_STATE.campaign
    return [(spec.index, campaign.run_spec_safe(spec)) for spec in chunk]


# ---------------------------------------------------------------------- #
# the executor
# ---------------------------------------------------------------------- #
class CampaignExecutor:
    """Schedules a campaign's independent trials over a chosen backend.

    Parameters
    ----------
    config : CampaignConfig or FaultCampaign
        What each worker needs to run trials.  A campaign instance is
        snapshotted via :meth:`FaultCampaign.to_config`.
    backend : {"serial", "thread", "process", "batched", "sharded"} or None
        ``None`` auto-selects: ``process`` when ``workers > 1``.  The
        ``"batched"`` backend advances trials in lockstep through shared
        block kernels in this process (see :mod:`repro.core.batched`); the
        ``"sharded"`` backend runs crash-supervised worker processes (see
        :mod:`repro.exec.supervisor`).
    workers : int, optional
        Worker count; defaults to the ``REPRO_WORKERS`` environment variable
        and then 1.  ``0`` means one per CPU.
    chunksize : int, optional
        Trials per dispatched task.  The default splits the work into about
        four chunks per worker, which balances messaging overhead against
        load-balancing granularity.
    batch_size : int, optional
        Lockstep batch width for the ``"batched"`` backend (default
        :data:`DEFAULT_BATCH_SIZE`); ignored by the other backends.
    shards : int, optional
        Worker-process count for the ``"sharded"`` supervisor; setting it
        with ``backend=None`` selects that backend (falls back to
        ``workers`` when the backend is explicit and shards is not).
    max_retries : int, optional
        Crashes a single trial may cause before the sharded supervisor
        quarantines it as a poison error record (default
        :data:`repro.exec.supervisor.DEFAULT_MAX_RETRIES`).
    heartbeat_interval : float, optional
        Seconds between supervisor liveness polls (default
        :data:`repro.exec.supervisor.DEFAULT_HEARTBEAT_INTERVAL`).
    run_dir : str, optional
        Run directory whose ``shard-<k>/`` subdirectories hold the durable
        shard stores (sharded backend; an ephemeral temp dir is used when
        omitted, e.g. for storeless campaigns).
    chaos : ChaosPolicy, optional
        Fault-injection policy for the supervisor's *own* infrastructure
        (see :mod:`repro.faults.chaos`) — test/CI instrumentation.
    on_supervisor_state : callable, optional
        ``on_supervisor_state(state_dict)`` invoked whenever the sharded
        supervisor's retry/quarantine bookkeeping changes (the run store
        persists it into the manifest).
    """

    def __init__(self, config, *, backend: str | None = None, workers: int | None = None,
                 chunksize: int | None = None, batch_size: int | None = None,
                 shards: int | None = None, max_retries: int | None = None,
                 heartbeat_interval: float | None = None,
                 run_dir: str | None = None, chaos=None,
                 on_supervisor_state=None):
        self._local_campaign = None
        if not isinstance(config, CampaignConfig):
            to_config = getattr(config, "to_config", None)
            if to_config is None:
                raise TypeError(
                    "config must be a CampaignConfig or a FaultCampaign, "
                    f"got {type(config).__name__}"
                )
            self._local_campaign = config
            config = to_config()
        self.config = config
        if chunksize is not None and chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if shards is not None and shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if max_retries is not None and max_retries <= 0:
            raise ValueError(f"max_retries must be positive, got {max_retries}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}")
        # Explicit knobs must be consistent with the (resolved) backend —
        # silently ignoring e.g. batch_size under backend="process" hides
        # configuration mistakes (checked before workers pick up the
        # REPRO_WORKERS environment default, which never trips this).
        validate_backend_knobs(backend, workers=workers, chunksize=chunksize,
                               batch_size=batch_size, shards=shards,
                               max_retries=max_retries,
                               heartbeat_interval=heartbeat_interval)
        self.workers = resolve_workers(workers)
        if backend is None and batch_size is not None:
            # An explicit batch_size selects the batched engine.  An explicit
            # conflicting workers count was already rejected above; the
            # REPRO_WORKERS environment variable is only a default and must
            # not veto the explicit knob.
            self.backend = "batched"
        elif backend is None and shards is not None:
            # Symmetrically, an explicit shards count selects the supervisor.
            self.backend = "sharded"
        else:
            self.backend = resolve_backend(backend, self.workers)
        if backend is None:
            # Re-check the explicit knobs against the auto-selected backend
            # (workers is exempt here: it either chose the backend or came
            # from the environment default).
            validate_backend_knobs(self.backend, chunksize=chunksize,
                                   batch_size=batch_size, shards=shards,
                                   max_retries=max_retries,
                                   heartbeat_interval=heartbeat_interval)
        self.chunksize = chunksize
        self.batch_size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        self.shards = shards
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.run_dir = run_dir
        self.chaos = chaos
        self.on_supervisor_state = on_supervisor_state
        #: The live ShardedSupervisor while a supervised iteration runs
        #: (``request_drain()`` hook for graceful-shutdown callers).
        self.supervisor = None

    # ------------------------------------------------------------------ #
    def run(self, specs, progress=None) -> list:
        """Execute all trial specs; return records in canonical spec order.

        Parameters
        ----------
        specs : sequence of TrialSpec
            The work list.  ``spec.index`` values must be unique; they define
            the output order.
        progress : callable, optional
            ``progress(done, total)`` callback, fired per completed trial.

        Returns
        -------
        list of TrialRecord
            One record per spec, ordered by ``spec.index`` — identical to
            what a serial loop over the same specs would produce.
        """
        specs = list(specs)
        total = len(specs)
        records: list[tuple[int, object]] = []
        for index, record in self.iter_records(specs):
            records.append((index, record))
            if progress is not None:
                progress(len(records), total)
        records.sort(key=lambda pair: pair[0])
        return [record for _, record in records]

    def iter_records(self, specs):
        """Stream ``(index, record)`` pairs as trials complete.

        This is the executor's streaming primitive — :meth:`run`, the
        :func:`repro.api.iter_trials` facade, and the run store's
        incremental checkpointing are all built on it.  Records arrive in
        *completion* order: lazily one-by-one on the serial backend, per
        completed chunk on the pool backends (windowed submission), per
        completed batch on the lockstep batched backend.  Consuming the
        generator partially is safe on every backend (pools shut down when
        the generator is closed), which is what makes mid-campaign
        interruption recoverable.
        """
        specs = list(specs)
        total = len(specs)
        if total == 0:
            return
        indices = [spec.index for spec in specs]
        if len(set(indices)) != total:
            raise ValueError("trial spec indices must be unique")

        if self.backend == "sharded":
            shards = self.shards if self.shards is not None else self.workers
            yield from self._iter_supervised(specs, shards=shards)
        elif self.backend == "batched":
            yield from self._campaign().iter_specs_batched(
                specs, batch_size=self.batch_size)
        elif self.backend == "process" and self.config.trial_timeout is not None:
            # Hard trial_timeout enforcement: the plain process pool cannot
            # interrupt a trial stuck inside a kernel, so a timeout-carrying
            # process campaign routes through the supervisor (which SIGKILLs
            # the stuck worker and records the trial as an error).  serial/
            # thread keep the soft after-the-fact check.
            yield from self._iter_supervised(specs, shards=self.workers)
        elif self.backend == "serial" or self.workers <= 1 or total == 1:
            campaign = self._campaign()
            for spec in specs:
                yield spec.index, campaign.run_spec_safe(spec)
        else:
            yield from self._iter_pool(specs)

    # ------------------------------------------------------------------ #
    def _campaign(self):
        if self._local_campaign is None:
            self._local_campaign = self.config.build_campaign()
        return self._local_campaign

    def _iter_supervised(self, specs, *, shards: int):
        from repro.exec.supervisor import ShardedSupervisor

        provenance = (dict(self._local_campaign.provenance)
                      if self._local_campaign is not None else None)
        supervisor = ShardedSupervisor(
            self.config, shards=max(1, shards),
            max_retries=self.max_retries,
            heartbeat_interval=self.heartbeat_interval,
            run_dir=self.run_dir, chaos=self.chaos,
            provenance=provenance, on_state=self.on_supervisor_state)
        self.supervisor = supervisor
        try:
            yield from supervisor.iter_records(specs)
        finally:
            self.supervisor = None

    def _iter_pool(self, specs):
        workers = min(self.workers, len(specs))
        chunks = self._chunk(specs, workers)
        if self.backend == "process":
            pool_cls, init, run_chunk = ProcessPoolExecutor, _process_init, _process_chunk
        else:
            pool_cls, init, run_chunk = ThreadPoolExecutor, _thread_init, _thread_chunk

        pool = pool_cls(max_workers=workers, initializer=init,
                        initargs=(self.config,))
        try:
            # Windowed submission: keep every worker busy without queueing
            # the entire campaign's pending futures at once.
            window = workers * _IN_FLIGHT_PER_WORKER
            chunk_iter = iter(chunks)
            pending = {pool.submit(run_chunk, chunk)
                       for chunk in _take(chunk_iter, window)}
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    yield from future.result()
                for chunk in _take(chunk_iter, len(finished)):
                    pending.add(pool.submit(run_chunk, chunk))
        finally:
            # On early generator close (or an observer exception), drop the
            # submitted-but-unstarted chunks instead of running them out —
            # only chunks already executing finish.
            pool.shutdown(wait=True, cancel_futures=True)

    def _chunk(self, specs, workers) -> list[list[TrialSpec]]:
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(specs) // (workers * 4)))
        return [specs[i: i + chunksize] for i in range(0, len(specs), chunksize)]


def _take(iterator, n: int) -> list:
    """Up to ``n`` items from ``iterator``."""
    out = []
    for _ in range(n):
        try:
            out.append(next(iterator))
        except StopIteration:
            break
    return out
