"""Parallel execution engine for fault campaigns.

The paper's headline artifacts are sweeps of *independent* nested solves;
this package schedules them over serial/thread/process backends with
per-worker problem construction and deterministic result ordering.  See
:class:`repro.exec.executor.CampaignExecutor`.
"""

from repro.exec.executor import (
    BACKENDS,
    BACKEND_KNOBS,
    DEFAULT_BATCH_SIZE,
    CampaignExecutor,
    resolve_backend,
    resolve_workers,
    validate_backend_knobs,
)
from repro.exec.spec import CampaignConfig, ProblemFactory, TrialSpec
from repro.exec.supervisor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_RETRIES,
    EXIT_DRAINED,
    ShardedSupervisor,
    SupervisorDrained,
    partition_shards,
)

__all__ = [
    "BACKENDS",
    "BACKEND_KNOBS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_MAX_RETRIES",
    "EXIT_DRAINED",
    "CampaignExecutor",
    "CampaignConfig",
    "ProblemFactory",
    "ShardedSupervisor",
    "SupervisorDrained",
    "TrialSpec",
    "partition_shards",
    "resolve_backend",
    "resolve_workers",
    "validate_backend_knobs",
]
